"""Tests for the batched attribution engine (repro.engine)."""

import os
from fractions import Fraction

import pytest

from repro import Database, attribute_facts, parse_query
from repro.baselines.brute_force import banzhaf_all_brute_force
from repro.boolean.dnf import DNF
from repro.core.ichiban import ichiban_topk
from repro.dtree.compile import CompilationLimitReached, compile_dnf
from repro.engine import CompiledLineage, Engine, EngineConfig, canonicalize
from repro.engine.cache import LineageCache, LRUCache
from repro.experiments.runner import ExperimentConfig, run_workload_batched
from repro.workloads.suite import build_workload


def _permuted(function: DNF, mapping) -> DNF:
    return DNF([[mapping[v] for v in clause] for clause in function.clauses],
               domain=[mapping[v] for v in function.domain])


class TestCanonicalize:
    def test_isomorphic_dnfs_share_key(self):
        function = DNF([[0, 1], [0, 2], [3, 4]])
        mapping = {0: 42, 1: 7, 2: 99, 3: 5, 4: 13}
        assert (canonicalize(function).key
                == canonicalize(_permuted(function, mapping)).key)

    def test_clause_order_is_irrelevant(self):
        a = DNF([[0, 1], [2, 3], [0, 3]])
        b = DNF([[0, 3], [0, 1], [2, 3]])
        assert canonicalize(a).key == canonicalize(b).key

    def test_non_isomorphic_dnfs_differ(self):
        path = DNF([[0, 1], [1, 2], [2, 3]])
        star = DNF([[0, 1], [0, 2], [0, 3]])
        assert canonicalize(path).key != canonicalize(star).key

    def test_silent_domain_variables_count(self):
        bare = DNF([[0, 1]])
        widened = DNF([[0, 1]], domain=[0, 1, 2])
        assert canonicalize(bare).key != canonicalize(widened).key

    def test_mapping_roundtrip(self):
        function = DNF([[3, 8], [3, 9], [11]])
        canonical = canonicalize(function)
        for original, renamed in canonical.to_canonical.items():
            assert canonical.from_canonical[renamed] == original


class TestCacheReuse:
    def test_isomorphic_lineages_hit_cache_with_correct_values(self):
        function = DNF([[0, 1], [0, 2], [3]])
        mapping = {0: 20, 1: 11, 2: 12, 3: 30}
        permuted = _permuted(function, mapping)
        engine = Engine(EngineConfig(method="exact"))
        first, second = engine.attribute_lineages([function, permuted])

        assert engine.stats.cache_hits == 1
        assert engine.stats.cache_misses == 1
        assert engine.stats.compilations == 1

        expected = banzhaf_all_brute_force(function)
        assert first.values == {v: Fraction(x) for v, x in expected.items()}
        # The permuted lineage's values come from the cached canonical
        # result, mapped back through its own renaming.
        for variable, value in expected.items():
            assert second.values[mapping[variable]] == value

    def test_cache_persists_across_calls(self):
        function = DNF([[0, 1], [1, 2]])
        engine = Engine(EngineConfig(method="exact"))
        engine.attribute_lineages([function])
        engine.attribute_lineages([function])
        assert engine.stats.cache_hits == 1
        assert engine.stats.compilations == 1

    def test_repeated_query_hits_cache(self):
        database = Database()
        database.add_fact("R", (1, 2, 3))
        database.add_fact("S", (1, 2, 4))
        database.add_fact("S", (1, 2, 5))
        database.add_fact("T", (1, 6))
        query = parse_query("Q() :- R(X, Y, Z), S(X, Y, V), T(X, U)")
        engine = Engine(EngineConfig(method="exact"))
        results = list(engine.attribute_many([query, query], database))
        assert len(results) == 2
        assert engine.stats.queries == 2
        assert engine.stats.cache_hits == 1
        first, second = (r for _, r in results)
        assert [a.attributions for a in first] == [a.attributions for a in second]


class TestParallel:
    def test_parallel_matches_serial(self, monkeypatch):
        # Pretend the host has cores to give: gating is on the *effective*
        # worker count, so a 1-core CI box would otherwise stay serial.
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        workload = build_workload("academic", include_hard=False)
        lineages = [instance.lineage for instance in workload.instances][:12]
        serial = Engine(EngineConfig(method="exact"))
        parallel = Engine(EngineConfig(method="exact", max_workers=2,
                                       chunk_size=3, parallel_min_tasks=1))
        serial_values = [a.values for a in serial.attribute_lineages(lineages)]
        parallel_values = [a.values
                           for a in parallel.attribute_lineages(lineages)]
        assert serial_values == parallel_values
        assert parallel.stats.parallel_batches == 1

    def test_small_batches_stay_serial(self):
        engine = Engine(EngineConfig(method="exact", max_workers=4,
                                     parallel_min_tasks=10))
        engine.attribute_lineages([DNF([[0, 1]])])
        assert engine.stats.parallel_batches == 0

    def test_single_core_host_stays_serial(self, monkeypatch):
        # Regression: max_workers > 1 on a 1-core host used to build a
        # 1-worker pool and pay pickling/IPC for zero parallelism.
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        engine = Engine(EngineConfig(method="exact", max_workers=4,
                                     parallel_min_tasks=1))
        lineages = [DNF([[0, 1]]), DNF([[0, 1], [1, 2]]),
                    DNF([[0], [1, 2]]), DNF([[0, 1], [0, 2], [1, 2]])]
        values = [a.values for a in engine.attribute_lineages(lineages)]
        assert engine.stats.parallel_batches == 0
        for lineage, computed in zip(lineages, values):
            expected = banzhaf_all_brute_force(lineage)
            assert computed == {v: Fraction(x) for v, x in expected.items()}

    def test_unknown_cpu_count_stays_serial(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        engine = Engine(EngineConfig(method="exact", max_workers=4,
                                     parallel_min_tasks=1))
        engine.attribute_lineages([DNF([[0, 1]]), DNF([[2], [3, 4]])])
        assert engine.stats.parallel_batches == 0


class TestAutoFallback:
    # Non-hierarchical cycle: compilation must Shannon-expand, so a
    # zero-step budget forces the exact path to give up.
    CYCLE = DNF([[0, 1], [1, 2], [2, 3], [3, 4], [4, 0]])

    def test_auto_falls_back_to_approximate(self):
        engine = Engine(EngineConfig(method="auto", max_shannon_steps=0,
                                     epsilon=0.2))
        (attribution,) = engine.attribute_lineages([self.CYCLE])
        assert attribution.method_used == "approximate"
        assert engine.stats.fallbacks == 1
        exact = banzhaf_all_brute_force(self.CYCLE)
        for variable, value in exact.items():
            lower, upper = attribution.bounds[variable]
            assert lower <= value <= upper

    def test_exact_method_raises_instead_of_falling_back(self):
        engine = Engine(EngineConfig(method="exact", max_shannon_steps=0))
        with pytest.raises(CompilationLimitReached):
            engine.attribute_lineages([self.CYCLE])

    def test_auto_stays_exact_within_budget(self):
        engine = Engine(EngineConfig(method="auto"))
        (attribution,) = engine.attribute_lineages([self.CYCLE])
        assert attribution.method_used == "exact"
        assert engine.stats.fallbacks == 0
        expected = banzhaf_all_brute_force(self.CYCLE)
        assert attribution.values == {v: Fraction(x)
                                      for v, x in expected.items()}


class TestStats:
    def test_stats_report_all_stages(self):
        engine = Engine(EngineConfig(method="exact"))
        engine.attribute_lineages([DNF([[0, 1], [1, 2]])])
        report = engine.stats.as_dict()
        assert report["answers"] == 1
        assert report["compilations"] == 1
        for stage in ("canonicalize", "compute", "assemble"):
            assert stage in report["stage_seconds"]
        assert report["total_seconds"] >= 0

    def test_reset_keeps_cache(self):
        function = DNF([[0, 1]])
        engine = Engine(EngineConfig(method="exact"))
        engine.attribute_lineages([function])
        engine.reset_stats()
        assert engine.stats.answers == 0
        engine.attribute_lineages([function])
        assert engine.stats.cache_hits == 1

    def test_hit_rate(self):
        engine = Engine(EngineConfig(method="exact"))
        assert engine.stats.hit_rate() == 0.0
        engine.attribute_lineages([DNF([[0, 1]]), DNF([[5, 6]])])
        assert engine.stats.hit_rate() == 0.5


class TestResultKey:
    KEY = canonicalize(DNF([[0, 1], [1, 2]])).key

    def test_auto_keys_include_epsilon(self):
        # Regression: epsilon used to be dropped for "auto" although the
        # fallback values are epsilon-dependent.
        assert (LineageCache.result_key(self.KEY, "auto", 0.1)
                != LineageCache.result_key(self.KEY, "auto", 0.2))

    def test_exact_methods_ignore_epsilon(self):
        for method in ("exact", "shapley"):
            assert (LineageCache.result_key(self.KEY, method, 0.1)
                    == LineageCache.result_key(self.KEY, method, 0.2))

    def test_ranking_keys_include_epsilon_and_k(self):
        assert (LineageCache.result_key(self.KEY, "rank", 0.1)
                != LineageCache.result_key(self.KEY, "rank", None))
        assert (LineageCache.result_key(self.KEY, "topk", 0.1, 3)
                != LineageCache.result_key(self.KEY, "topk", 0.1, 5))

    def test_k_is_dropped_for_non_topk(self):
        assert (LineageCache.result_key(self.KEY, "exact", 0.1, 3)
                == LineageCache.result_key(self.KEY, "exact", 0.1, 5))


class TestRankingConfig:
    def test_topk_requires_k(self):
        with pytest.raises(ValueError):
            EngineConfig(method="topk", k=0)
        # k may be deferred to the per-call override, but a topk batch
        # without any k must fail fast.
        deferred = Engine(EngineConfig(method="topk"))
        with pytest.raises(ValueError):
            deferred.attribute_lineages([DNF([[0, 1]])])

    def test_k_rejected_for_other_methods(self):
        with pytest.raises(ValueError):
            EngineConfig(method="exact", k=3)

    def test_epsilon_none_only_for_ranking(self):
        with pytest.raises(ValueError):
            EngineConfig(method="approximate", epsilon=None)
        with pytest.raises(ValueError):
            EngineConfig(method="auto", epsilon=None)
        assert EngineConfig(method="rank", epsilon=None).epsilon is None
        assert EngineConfig(method="topk", epsilon=None, k=2).k == 2

    def test_rank_api_requires_ranking_method(self):
        database = Database()
        database.add_fact("R", (1,))
        query = parse_query("Q() :- R(X)")
        engine = Engine(EngineConfig(method="exact"))
        with pytest.raises(ValueError):
            engine.rank(query, database)


class TestRankingEngine:
    # Clear winner (variable 0 in every clause) plus a clear loser; no
    # exact-value ties anywhere near the boundary, so the top-k set is
    # unique and must match the per-answer path exactly.
    FUNCTION = DNF([[0, 1], [0, 2], [0, 3], [3]])
    MAPPING = {0: 40, 1: 21, 2: 22, 3: 13}

    def _permuted(self):
        return _permuted(self.FUNCTION, self.MAPPING)

    def test_isomorphic_topk_shares_one_run(self):
        engine = Engine(EngineConfig(method="topk", k=2, epsilon=0.1))
        first, second = engine.attribute_lineages(
            [self.FUNCTION, self._permuted()])
        assert engine.stats.cache_hits == 1
        assert engine.stats.cache_misses == 1
        assert engine.stats.compilations == 1
        assert engine.stats.refinement_rounds >= 1
        # The cached canonical intervals must map back through each
        # answer's own renaming.
        for variable, value in first.values.items():
            assert second.values[self.MAPPING[variable]] == value

    def test_topk_matches_per_answer_ichiban(self):
        engine = Engine(EngineConfig(method="topk", k=2, epsilon=0.1))
        (attribution,) = engine.attribute_lineages([self.FUNCTION])
        exact = banzhaf_all_brute_force(self.FUNCTION)
        per_answer = {entry.variable
                      for entry in ichiban_topk(self.FUNCTION, 2, epsilon=0.1)}
        ordered = sorted(attribution.values,
                         key=lambda v: (-attribution.values[v], v))
        assert set(ordered[:2]) == per_answer
        # Intervals must contain the exact values.
        for variable, value in exact.items():
            lower, upper = attribution.bounds[variable]
            assert lower <= value <= upper

    def test_rank_query_end_to_end(self):
        database = Database()
        r = database.add_fact("R", (1, 2, 3))
        s1 = database.add_fact("S", (1, 2, 4))
        s2 = database.add_fact("S", (1, 2, 5))
        t = database.add_fact("T", (1, 6))
        query = parse_query("Q() :- R(X, Y, Z), S(X, Y, V), T(X, U)")
        engine = Engine(EngineConfig(method="rank", epsilon=None))
        rankings = engine.rank(query, database)
        assert len(rankings) == 1
        _, entries = rankings[0]
        assert {fact for fact, _ in entries} == {r, s1, s2, t}
        assert {fact for fact, _ in entries[:2]} == {r, t}
        estimates = [entry.estimate for _, entry in entries]
        assert estimates == sorted(estimates, reverse=True)

    def test_cached_artifact_yields_exact_ranking(self):
        engine = Engine(EngineConfig(method="topk", k=2, epsilon=0.1))
        canonical = canonicalize(self.FUNCTION)
        engine.cache.artifacts.put(
            canonical.key,
            CompiledLineage.from_complete_tree(compile_dnf(canonical.dnf)))
        (attribution,) = engine.attribute_lineages([self.FUNCTION])
        assert attribution.method_used == "exact"
        assert engine.stats.refinement_rounds == 0
        assert engine.stats.artifact_hits == 1
        assert engine.stats.tree_compilations == 0
        exact = banzhaf_all_brute_force(self.FUNCTION)
        assert attribution.values == {v: Fraction(x)
                                      for v, x in exact.items()}

    def test_completed_run_caches_tree_for_other_k(self):
        # Separating the middle variable of this chain with certainty
        # requires expanding the whole d-tree; the completed tree is then
        # cached as a complete artifact and serves a different k exactly,
        # with zero further refinement rounds.
        chain = DNF([[0, 1], [1, 2]])
        engine = Engine(EngineConfig(method="topk", k=2, epsilon=None))
        engine.attribute_lineages([chain])
        canonical = canonicalize(chain)
        artifact = engine.cache.artifacts.get(canonical.key)
        assert artifact is not None and artifact.complete
        rounds_before = engine.stats.refinement_rounds
        outcomes = engine._attribute_batch([chain], k=1)
        assert outcomes[0][1].method_used == "exact"
        assert engine.stats.refinement_rounds == rounds_before

    def test_per_call_k_override(self):
        database = Database()
        database.add_fact("R", (1, 2, 3))
        database.add_fact("S", (1, 2, 4))
        database.add_fact("S", (1, 2, 5))
        database.add_fact("T", (1, 6))
        query = parse_query("Q() :- R(X, Y, Z), S(X, Y, V), T(X, U)")
        engine = Engine(EngineConfig(method="topk", k=3))
        (answer_default, entries_default), = engine.rank(query, database)
        (answer_one, entries_one), = engine.rank(query, database, k=1)
        assert len(entries_default) == 3
        assert len(entries_one) == 1

    def test_step_budget_bounds_ranking(self):
        # max_shannon_steps doubles as the IchiBan bound-evaluation budget
        # for the ranking methods: without a wall-clock budget the run must
        # still stop (degraded) instead of expanding unbounded.
        import random

        from repro.workloads.generators import random_positive_dnf

        hard = random_positive_dnf(random.Random(5), num_variables=20,
                                   num_clauses=36)
        engine = Engine(EngineConfig(method="rank", epsilon=0.001,
                                     max_shannon_steps=20))
        (attribution,) = engine.attribute_lineages([hard])
        assert attribution.method_used == "rank-partial"
        assert engine.stats.partial_results == 1

    def test_partial_result_not_cached(self):
        # A wide lineage under a zero wall-clock budget cannot converge:
        # the engine must degrade to best-so-far intervals, flag them, and
        # recompute on the next call instead of serving the partial entry.
        import random

        from repro.workloads.generators import random_positive_dnf

        hard = random_positive_dnf(random.Random(7), num_variables=24,
                                   num_clauses=40)
        engine = Engine(EngineConfig(method="topk", k=3, epsilon=0.01,
                                     timeout_seconds=0.0))
        (attribution,) = engine.attribute_lineages([hard])
        assert attribution.method_used == "topk-partial"
        assert engine.stats.partial_results == 1
        assert attribution.values  # best-so-far intervals, not data loss
        exact_like_bounds = attribution.bounds
        assert set(exact_like_bounds) == set(hard.variables)
        engine.attribute_lineages([hard])
        assert engine.stats.cache_misses == 2  # partials never cached


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" becomes the LRU entry
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestEngineAgainstSeedPath:
    def test_engine_matches_attribute_facts(self):
        database = Database()
        r = database.add_fact("R", (1, 2, 3))
        database.add_fact("S", (1, 2, 4))
        database.add_fact("S", (1, 2, 5))
        database.add_fact("T", (1, 6))
        query = parse_query("Q() :- R(X, Y, Z), S(X, Y, V), T(X, U)")

        wrapper = attribute_facts(query, database, method="exact")
        engine = Engine(EngineConfig(method="exact"))
        direct = engine.attribute(query, database)
        assert len(wrapper) == len(direct) == 1
        assert wrapper[0].attributions == direct[0].attributions
        assert direct[0].score_of(r) == 3


class TestRunnerIntegration:
    def test_run_workload_batched(self):
        workload = build_workload("academic", include_hard=False)
        config = ExperimentConfig(timeout_seconds=10.0)
        results, stats = run_workload_batched(workload, config)
        assert len(results) == len(workload.instances)
        assert all(result.success for result in results)
        assert stats["cache_hits"] > 0
        # Spot-check one instance against brute force where feasible.
        small = next(r for r in results
                     if r.instance.num_variables <= 10)
        expected = banzhaf_all_brute_force(small.instance.lineage)
        assert small.values == {v: Fraction(x) for v, x in expected.items()}

    def test_run_workload_batched_is_reproducible(self):
        workload = build_workload("academic", include_hard=False)
        config = ExperimentConfig(timeout_seconds=10.0)
        _, first = run_workload_batched(workload, config)
        _, second = run_workload_batched(workload, config)
        # A fresh engine per call: the second run must not be served from a
        # warm cache left behind by the first.
        assert second["cache_misses"] == first["cache_misses"]
        assert second["compilations"] == first["compilations"]

    def test_run_workload_batched_records_failures(self):
        from repro.workloads.generators import LineageInstance
        from repro.workloads.suite import Workload

        import random

        from repro.workloads.generators import random_positive_dnf

        easy = LineageInstance(dataset="t", query="q", answer=(1,),
                               lineage=DNF([[0, 1], [0, 2]]))
        # A wide random DNF under a zero Shannon budget and a tight
        # wall-clock: exact compilation fails immediately and the AdaBan
        # fallback times out, so this instance must be recorded as a
        # failure -- without taking the easy instance down with it.
        hard = LineageInstance(
            dataset="t", query="q", answer=(2,),
            lineage=random_positive_dnf(random.Random(99),
                                        num_variables=52, num_clauses=76))
        workload = Workload(name="t", instances=(easy, hard))
        config = ExperimentConfig(timeout_seconds=0.2, max_shannon_steps=0)
        results, _ = run_workload_batched(workload, config)
        by_answer = {r.instance.answer: r for r in results}
        assert by_answer[(1,)].success
        assert not by_answer[(2,)].success
        assert "Timeout" in by_answer[(2,)].failure_reason
