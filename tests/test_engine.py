"""Tests for the batched attribution engine (repro.engine)."""

from fractions import Fraction

import pytest

from repro import Database, attribute_facts, parse_query
from repro.baselines.brute_force import banzhaf_all_brute_force
from repro.boolean.dnf import DNF
from repro.dtree.compile import CompilationLimitReached
from repro.engine import Engine, EngineConfig, canonicalize
from repro.engine.cache import LRUCache
from repro.experiments.runner import ExperimentConfig, run_workload_batched
from repro.workloads.suite import build_workload


def _permuted(function: DNF, mapping) -> DNF:
    return DNF([[mapping[v] for v in clause] for clause in function.clauses],
               domain=[mapping[v] for v in function.domain])


class TestCanonicalize:
    def test_isomorphic_dnfs_share_key(self):
        function = DNF([[0, 1], [0, 2], [3, 4]])
        mapping = {0: 42, 1: 7, 2: 99, 3: 5, 4: 13}
        assert (canonicalize(function).key
                == canonicalize(_permuted(function, mapping)).key)

    def test_clause_order_is_irrelevant(self):
        a = DNF([[0, 1], [2, 3], [0, 3]])
        b = DNF([[0, 3], [0, 1], [2, 3]])
        assert canonicalize(a).key == canonicalize(b).key

    def test_non_isomorphic_dnfs_differ(self):
        path = DNF([[0, 1], [1, 2], [2, 3]])
        star = DNF([[0, 1], [0, 2], [0, 3]])
        assert canonicalize(path).key != canonicalize(star).key

    def test_silent_domain_variables_count(self):
        bare = DNF([[0, 1]])
        widened = DNF([[0, 1]], domain=[0, 1, 2])
        assert canonicalize(bare).key != canonicalize(widened).key

    def test_mapping_roundtrip(self):
        function = DNF([[3, 8], [3, 9], [11]])
        canonical = canonicalize(function)
        for original, renamed in canonical.to_canonical.items():
            assert canonical.from_canonical[renamed] == original


class TestCacheReuse:
    def test_isomorphic_lineages_hit_cache_with_correct_values(self):
        function = DNF([[0, 1], [0, 2], [3]])
        mapping = {0: 20, 1: 11, 2: 12, 3: 30}
        permuted = _permuted(function, mapping)
        engine = Engine(EngineConfig(method="exact"))
        first, second = engine.attribute_lineages([function, permuted])

        assert engine.stats.cache_hits == 1
        assert engine.stats.cache_misses == 1
        assert engine.stats.compilations == 1

        expected = banzhaf_all_brute_force(function)
        assert first.values == {v: Fraction(x) for v, x in expected.items()}
        # The permuted lineage's values come from the cached canonical
        # result, mapped back through its own renaming.
        for variable, value in expected.items():
            assert second.values[mapping[variable]] == value

    def test_cache_persists_across_calls(self):
        function = DNF([[0, 1], [1, 2]])
        engine = Engine(EngineConfig(method="exact"))
        engine.attribute_lineages([function])
        engine.attribute_lineages([function])
        assert engine.stats.cache_hits == 1
        assert engine.stats.compilations == 1

    def test_repeated_query_hits_cache(self):
        database = Database()
        database.add_fact("R", (1, 2, 3))
        database.add_fact("S", (1, 2, 4))
        database.add_fact("S", (1, 2, 5))
        database.add_fact("T", (1, 6))
        query = parse_query("Q() :- R(X, Y, Z), S(X, Y, V), T(X, U)")
        engine = Engine(EngineConfig(method="exact"))
        results = list(engine.attribute_many([query, query], database))
        assert len(results) == 2
        assert engine.stats.queries == 2
        assert engine.stats.cache_hits == 1
        first, second = (r for _, r in results)
        assert [a.attributions for a in first] == [a.attributions for a in second]


class TestParallel:
    def test_parallel_matches_serial(self):
        workload = build_workload("academic", include_hard=False)
        lineages = [instance.lineage for instance in workload.instances][:12]
        serial = Engine(EngineConfig(method="exact"))
        parallel = Engine(EngineConfig(method="exact", max_workers=2,
                                       chunk_size=3, parallel_min_tasks=1))
        serial_values = [a.values for a in serial.attribute_lineages(lineages)]
        parallel_values = [a.values
                           for a in parallel.attribute_lineages(lineages)]
        assert serial_values == parallel_values
        assert parallel.stats.parallel_batches == 1

    def test_small_batches_stay_serial(self):
        engine = Engine(EngineConfig(method="exact", max_workers=4,
                                     parallel_min_tasks=10))
        engine.attribute_lineages([DNF([[0, 1]])])
        assert engine.stats.parallel_batches == 0


class TestAutoFallback:
    # Non-hierarchical cycle: compilation must Shannon-expand, so a
    # zero-step budget forces the exact path to give up.
    CYCLE = DNF([[0, 1], [1, 2], [2, 3], [3, 4], [4, 0]])

    def test_auto_falls_back_to_approximate(self):
        engine = Engine(EngineConfig(method="auto", max_shannon_steps=0,
                                     epsilon=0.2))
        (attribution,) = engine.attribute_lineages([self.CYCLE])
        assert attribution.method_used == "approximate"
        assert engine.stats.fallbacks == 1
        exact = banzhaf_all_brute_force(self.CYCLE)
        for variable, value in exact.items():
            lower, upper = attribution.bounds[variable]
            assert lower <= value <= upper

    def test_exact_method_raises_instead_of_falling_back(self):
        engine = Engine(EngineConfig(method="exact", max_shannon_steps=0))
        with pytest.raises(CompilationLimitReached):
            engine.attribute_lineages([self.CYCLE])

    def test_auto_stays_exact_within_budget(self):
        engine = Engine(EngineConfig(method="auto"))
        (attribution,) = engine.attribute_lineages([self.CYCLE])
        assert attribution.method_used == "exact"
        assert engine.stats.fallbacks == 0
        expected = banzhaf_all_brute_force(self.CYCLE)
        assert attribution.values == {v: Fraction(x)
                                      for v, x in expected.items()}


class TestStats:
    def test_stats_report_all_stages(self):
        engine = Engine(EngineConfig(method="exact"))
        engine.attribute_lineages([DNF([[0, 1], [1, 2]])])
        report = engine.stats.as_dict()
        assert report["answers"] == 1
        assert report["compilations"] == 1
        for stage in ("canonicalize", "compute", "assemble"):
            assert stage in report["stage_seconds"]
        assert report["total_seconds"] >= 0

    def test_reset_keeps_cache(self):
        function = DNF([[0, 1]])
        engine = Engine(EngineConfig(method="exact"))
        engine.attribute_lineages([function])
        engine.reset_stats()
        assert engine.stats.answers == 0
        engine.attribute_lineages([function])
        assert engine.stats.cache_hits == 1

    def test_hit_rate(self):
        engine = Engine(EngineConfig(method="exact"))
        assert engine.stats.hit_rate() == 0.0
        engine.attribute_lineages([DNF([[0, 1]]), DNF([[5, 6]])])
        assert engine.stats.hit_rate() == 0.5


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" becomes the LRU entry
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestEngineAgainstSeedPath:
    def test_engine_matches_attribute_facts(self):
        database = Database()
        r = database.add_fact("R", (1, 2, 3))
        database.add_fact("S", (1, 2, 4))
        database.add_fact("S", (1, 2, 5))
        database.add_fact("T", (1, 6))
        query = parse_query("Q() :- R(X, Y, Z), S(X, Y, V), T(X, U)")

        wrapper = attribute_facts(query, database, method="exact")
        engine = Engine(EngineConfig(method="exact"))
        direct = engine.attribute(query, database)
        assert len(wrapper) == len(direct) == 1
        assert wrapper[0].attributions == direct[0].attributions
        assert direct[0].score_of(r) == 3


class TestRunnerIntegration:
    def test_run_workload_batched(self):
        workload = build_workload("academic", include_hard=False)
        config = ExperimentConfig(timeout_seconds=10.0)
        results, stats = run_workload_batched(workload, config)
        assert len(results) == len(workload.instances)
        assert all(result.success for result in results)
        assert stats["cache_hits"] > 0
        # Spot-check one instance against brute force where feasible.
        small = next(r for r in results
                     if r.instance.num_variables <= 10)
        expected = banzhaf_all_brute_force(small.instance.lineage)
        assert small.values == {v: Fraction(x) for v, x in expected.items()}

    def test_run_workload_batched_is_reproducible(self):
        workload = build_workload("academic", include_hard=False)
        config = ExperimentConfig(timeout_seconds=10.0)
        _, first = run_workload_batched(workload, config)
        _, second = run_workload_batched(workload, config)
        # A fresh engine per call: the second run must not be served from a
        # warm cache left behind by the first.
        assert second["cache_misses"] == first["cache_misses"]
        assert second["compilations"] == first["compilations"]

    def test_run_workload_batched_records_failures(self):
        from repro.workloads.generators import LineageInstance
        from repro.workloads.suite import Workload

        import random

        from repro.workloads.generators import random_positive_dnf

        easy = LineageInstance(dataset="t", query="q", answer=(1,),
                               lineage=DNF([[0, 1], [0, 2]]))
        # A wide random DNF under a zero Shannon budget and a tight
        # wall-clock: exact compilation fails immediately and the AdaBan
        # fallback times out, so this instance must be recorded as a
        # failure -- without taking the easy instance down with it.
        hard = LineageInstance(
            dataset="t", query="q", answer=(2,),
            lineage=random_positive_dnf(random.Random(99),
                                        num_variables=52, num_clauses=76))
        workload = Workload(name="t", instances=(easy, hard))
        config = ExperimentConfig(timeout_seconds=0.2, max_shannon_steps=0)
        results, _ = run_workload_batched(workload, config)
        by_answer = {r.instance.answer: r for r in results}
        assert by_answer[(1,)].success
        assert not by_answer[(2,)].success
        assert "Timeout" in by_answer[(2,)].failure_reason
