"""Tests for the persistent cache store tier (repro.engine.store)."""

import json
import os
from fractions import Fraction

import pytest

from repro.boolean.dnf import DNF
from repro.engine import Engine, EngineConfig
from repro.engine.cache import CachedAttribution, LineageCache
from repro.engine.store import (
    STORE_FORMAT_VERSION,
    DiskStore,
    MemoryStore,
    decode_entry,
    decode_key,
    encode_entry,
    encode_key,
    load_results,
    save_results,
)


def _key(num_variables=3, clauses=((0, 1), (1, 2)), method="exact",
         epsilon=None, k=None):
    return ((num_variables, tuple(tuple(c) for c in clauses)),
            method, epsilon, k)


def _entry(converged=True):
    return CachedAttribution(
        method_used="exact",
        values={0: Fraction(3, 7), 1: Fraction(12345678901234567890, 3),
                2: Fraction(-1, 2)},
        bounds={0: (1, 5), 1: (2, 2)},
        converged=converged,
    )


class TestCodec:
    def test_key_roundtrip(self):
        key = _key(method="topk", epsilon=0.1, k=5)
        assert decode_key(encode_key(key)) == key

    def test_key_roundtrip_none_fields(self):
        key = _key(method="rank", epsilon=None, k=None)
        assert decode_key(encode_key(key)) == key

    def test_key_roundtrip_preserves_float_epsilon_exactly(self):
        key = _key(method="approximate", epsilon=0.30000000000000004)
        assert decode_key(encode_key(key))[2] == 0.30000000000000004

    def test_entry_roundtrip_is_exact(self):
        entry = _entry()
        decoded = decode_entry(encode_entry(entry))
        assert decoded == entry
        for variable, value in decoded.values.items():
            assert isinstance(value, Fraction)
            assert value == entry.values[variable]
        for variable, (lower, upper) in decoded.bounds.items():
            assert isinstance(lower, int) and isinstance(upper, int)

    def test_entry_roundtrip_keeps_converged_flag(self):
        decoded = decode_entry(encode_entry(_entry(converged=False)))
        assert decoded.converged is False

    def test_malformed_key_raises_value_error(self):
        with pytest.raises(ValueError):
            decode_key("not json at all {{{")
        with pytest.raises(ValueError):
            decode_key(json.dumps([1, [[0]], 42, None, None]))  # bad method


class TestMemoryStore:
    def test_roundtrip_and_items(self):
        store = MemoryStore()
        key, entry = _key(), _entry()
        assert store.get(key) is None
        store.put(key, entry)
        store.flush()
        assert store.get(key) == entry
        assert dict(store.items()) == {key: entry}
        assert store.stats()["entries"] == 1


class TestDiskStore:
    def test_roundtrip_across_handles(self, tmp_path):
        key, entry = _key(), _entry()
        writer = DiskStore(str(tmp_path), shards=4)
        writer.put(key, entry)
        writer.flush()
        reader = DiskStore(str(tmp_path), shards=4)
        loaded = reader.get(key)
        assert loaded == entry
        assert all(isinstance(v, Fraction) for v in loaded.values.values())

    def test_unflushed_puts_are_not_durable(self, tmp_path):
        writer = DiskStore(str(tmp_path))
        writer.put(_key(), _entry())
        assert DiskStore(str(tmp_path)).get(_key()) is None
        writer.flush()
        assert DiskStore(str(tmp_path)).get(_key()) == _entry()

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = DiskStore(str(tmp_path), shards=2)
        for index in range(10):
            store.put(_key(clauses=((0, 1), (1, 2), (index % 3, 2))),
                      _entry())
        store.flush()
        leftovers = [name for name in os.listdir(tmp_path)
                     if name.startswith(".tmp-")]
        assert leftovers == []

    def test_corrupted_shard_is_ignored(self, tmp_path):
        key, entry = _key(), _entry()
        store = DiskStore(str(tmp_path), shards=1)
        store.put(key, entry)
        store.flush()
        shard_path = tmp_path / "shard-0000.json"
        shard_path.write_text("{ this is not json", encoding="utf-8")
        reader = DiskStore(str(tmp_path), shards=1)
        assert reader.get(key) is None  # treated as empty, no crash
        assert reader.stats()["corrupt_shards"] == 1
        # The store remains usable: a new put/flush overwrites the damage.
        reader.put(key, entry)
        reader.flush()
        assert DiskStore(str(tmp_path), shards=1).get(key) == entry

    def test_structurally_invalid_shard_is_ignored(self, tmp_path):
        store = DiskStore(str(tmp_path), shards=1)
        (tmp_path / "shard-0000.json").write_text(
            json.dumps({"version": STORE_FORMAT_VERSION,
                        "entries": {"[not-a-key]": {"stamp": 1,
                                                    "entry": {}}}}),
            encoding="utf-8")
        assert store.get(_key()) is None
        assert store.corrupt_shards == 1

    def test_old_format_version_is_ignored(self, tmp_path):
        key, entry = _key(), _entry()
        store = DiskStore(str(tmp_path), shards=1)
        store.put(key, entry)
        store.flush()
        shard_path = tmp_path / "shard-0000.json"
        document = json.loads(shard_path.read_text(encoding="utf-8"))
        document["version"] = STORE_FORMAT_VERSION - 1
        shard_path.write_text(json.dumps(document), encoding="utf-8")
        reader = DiskStore(str(tmp_path), shards=1)
        assert reader.get(key) is None
        assert reader.stats()["corrupt_shards"] == 1

    def test_eviction_honors_size_bound(self, tmp_path):
        store = DiskStore(str(tmp_path), max_entries=5, shards=1)
        keys = [_key(clauses=((0, index % 2), (1, 2), (0, 2))[:2 + index % 2],
                     epsilon=float(index), method="approximate")
                for index in range(12)]
        for key in keys:
            store.put(key, _entry())
        store.flush()
        assert len(store) == 5
        reader = DiskStore(str(tmp_path), max_entries=5, shards=1)
        assert len(reader) == 5
        # Oldest-first: the survivors are exactly the newest five.
        for key in keys[-5:]:
            assert reader.get(key) is not None
        for key in keys[:-5]:
            assert reader.get(key) is None

    def test_lost_meta_does_not_invert_eviction(self, tmp_path):
        """Without meta.json, new entries must still outrank old ones.

        If the insertion counter restarted at 0, oldest-first eviction
        would evict the *fresh* results and keep the stale ones forever.
        """
        store = DiskStore(str(tmp_path), max_entries=3, shards=1)
        old_keys = [_key(epsilon=float(i), method="approximate")
                    for i in range(3)]
        for key in old_keys:
            store.put(key, _entry())
        store.flush()
        os.unlink(tmp_path / "meta.json")

        reopened = DiskStore(str(tmp_path), max_entries=3, shards=1)
        new_key = _key(epsilon=99.0, method="approximate")
        reopened.put(new_key, _entry())
        reopened.flush()
        assert reopened.get(new_key) is not None
        # The oldest of the original entries was evicted, not the new one.
        assert reopened.get(old_keys[0]) is None
        assert reopened.get(old_keys[-1]) is not None

    def test_eviction_bound_respected_across_shards(self, tmp_path):
        store = DiskStore(str(tmp_path), max_entries=8, shards=4)
        for index in range(50):
            store.put(_key(epsilon=float(index), method="approximate"),
                      _entry())
        store.flush()
        assert len(store) <= 8

    def test_tiny_capacity_clamps_shard_count(self, tmp_path):
        """max_entries < shards must not over-retain one entry per shard."""
        store = DiskStore(str(tmp_path), max_entries=3, shards=16)
        assert store.shards == 3
        for index in range(10):
            store.put(_key(epsilon=float(index), method="approximate"),
                      _entry())
        store.flush()
        assert len(store) <= 3

    def test_stats_report(self, tmp_path):
        store = DiskStore(str(tmp_path), max_entries=100, shards=4)
        store.put(_key(), _entry())
        store.flush()
        stats = store.stats()
        assert stats["backend"] == "disk"
        assert stats["entries"] == 1
        assert stats["format_version"] == STORE_FORMAT_VERSION
        assert stats["disk_bytes"] > 0

    def test_invalid_capacity_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DiskStore(str(tmp_path), max_entries=0)
        with pytest.raises(ValueError):
            DiskStore(str(tmp_path), shards=0)


class TestSaveLoadHelpers:
    def test_save_skips_unconverged(self):
        store = MemoryStore()
        written = save_results(
            [(_key(), _entry()),
             (_key(method="rank", epsilon=0.1), _entry(converged=False))],
            store)
        assert written == 1
        assert len(store) == 1

    def test_load_into_lru(self):
        store = MemoryStore()
        store.put(_key(), _entry())
        cache = LineageCache(16)
        assert load_results(store, cache.results) == 1
        assert cache.results.get(_key()) == _entry()


class TestEngineStoreTier:
    def _lineages(self):
        return [DNF([(0, 1), (1, 2)], domain=range(3)),
                DNF([(0, 1), (0, 2), (1, 2)], domain=range(3))]

    def test_warm_engine_bit_identical_to_cold(self, tmp_path):
        lineages = self._lineages()
        cold = Engine(EngineConfig(method="exact",
                                   store=DiskStore(str(tmp_path))))
        cold_values = [a.values for a in cold.attribute_lineages(lineages)]
        # A brand new engine and store handle over the same directory --
        # the restart scenario.
        warm = Engine(EngineConfig(method="exact",
                                   store=DiskStore(str(tmp_path))))
        warm_values = [a.values for a in warm.attribute_lineages(lineages)]
        assert warm_values == cold_values
        for values in warm_values:
            for value in values.values():
                assert isinstance(value, Fraction)
        assert warm.stats.store_hits > 0
        assert warm.stats.cache_misses == 0
        assert warm.stats.compilations == 0

    def test_store_hit_promotes_to_memory(self, tmp_path):
        lineages = self._lineages()
        Engine(EngineConfig(method="exact", store=DiskStore(str(tmp_path)))
               ).attribute_lineages(lineages)
        warm = Engine(EngineConfig(method="exact",
                                   store=DiskStore(str(tmp_path))))
        warm.attribute_lineages(lineages)
        first_store_hits = warm.stats.store_hits
        warm.attribute_lineages(lineages)
        # The second pass is pure memory: no further store lookups hit.
        assert warm.stats.store_hits == first_store_hits
        assert warm.stats.cache_hits >= len(lineages)

    def test_corrupted_store_recomputes_without_crash(self, tmp_path):
        lineages = self._lineages()
        cold = Engine(EngineConfig(method="exact",
                                   store=DiskStore(str(tmp_path))))
        expected = [a.values for a in cold.attribute_lineages(lineages)]
        for name in os.listdir(tmp_path):
            if name.startswith("shard-"):
                (tmp_path / name).write_text("garbage", encoding="utf-8")
        warm = Engine(EngineConfig(method="exact",
                                   store=DiskStore(str(tmp_path))))
        values = [a.values for a in warm.attribute_lineages(lineages)]
        assert values == expected
        assert warm.stats.store_hits == 0
        assert warm.stats.compilations > 0

    def test_save_and_load_cache_roundtrip(self, tmp_path):
        lineages = self._lineages()
        engine = Engine(EngineConfig(method="exact"))
        expected = [a.values for a in engine.attribute_lineages(lineages)]
        store = DiskStore(str(tmp_path))
        written = engine.save_cache(store)
        assert written == len(engine.cache.results.snapshot())

        fresh = Engine(EngineConfig(method="exact"))
        loaded = fresh.load_cache(store)
        assert loaded == written
        values = [a.values for a in fresh.attribute_lineages(lineages)]
        assert values == expected
        assert fresh.stats.compilations == 0

    def test_save_cache_without_store_raises(self):
        with pytest.raises(ValueError):
            Engine(EngineConfig()).save_cache()
        with pytest.raises(ValueError):
            Engine(EngineConfig()).load_cache()

    def test_ranking_results_persist_per_epsilon_and_k(self, tmp_path):
        lineage = DNF([(0, 1), (1, 2), (0, 2)], domain=range(3))
        cold = Engine(EngineConfig(method="topk", k=2, epsilon=0.1,
                                   store=DiskStore(str(tmp_path))))
        cold.attribute_lineages([lineage])
        warm = Engine(EngineConfig(method="topk", k=2, epsilon=0.1,
                                   store=DiskStore(str(tmp_path))))
        warm.attribute_lineages([lineage])
        assert warm.stats.store_hits == 1
        # A different k is a different key: no false sharing.
        other_k = Engine(EngineConfig(method="topk", k=1, epsilon=0.1,
                                      store=DiskStore(str(tmp_path))))
        other_k.attribute_lineages([lineage])
        assert other_k.stats.store_hits == 0


def _canonical_key(num_variables=3, clauses=((0, 1), (1, 2))):
    return (num_variables, tuple(tuple(c) for c in clauses))


def _artifact(complete=True, function=None):
    from repro.dtree.compile import compile_dnf
    from repro.dtree.incremental import IncrementalCompiler
    from repro.engine.artifact import CompiledLineage

    if function is None:
        function = DNF([(0, 1), (1, 2)], domain=range(3))
    if complete:
        return CompiledLineage.from_complete_tree(compile_dnf(function))
    compiler = IncrementalCompiler(function)
    compiler.expand_step()
    return CompiledLineage.from_compiler(compiler)


class TestEpsilonCanonicalization:
    """ResultKey epsilon is one exact canonical encoding everywhere."""

    def test_float_and_fraction_epsilon_share_one_key(self):
        from repro.engine.cache import LineageCache, canonical_epsilon

        key = _canonical_key()
        via_float = LineageCache.result_key(key, "approximate", 0.1)
        via_fraction = LineageCache.result_key(key, "approximate",
                                               Fraction(0.1))
        assert via_float == via_fraction
        assert hash(via_float) == hash(via_fraction)
        assert encode_key(via_float) == encode_key(via_fraction)
        assert canonical_epsilon(None) is None

    def test_distinct_floats_stay_distinct(self):
        # 0.1 + 0.2 != 0.3 in binary: the canonical encoding is exact,
        # so it must not conflate genuinely different epsilons either.
        a = encode_key(_key(method="approximate", epsilon=0.1 + 0.2))
        b = encode_key(_key(method="approximate", epsilon=0.3))
        assert a != b

    def test_disk_encoding_carries_no_float(self):
        encoded = encode_key(_key(method="approximate", epsilon=0.1))
        raw = json.loads(encoded)
        assert isinstance(raw[3], str) and "/" in raw[3]
        decoded = decode_key(encoded)
        assert decoded[2] == Fraction(0.1) == 0.1

    def test_legacy_float_keyed_shards_stay_readable(self, tmp_path):
        """A shard written with raw-float epsilons must keep serving."""
        import zlib

        key, entry = _key(method="approximate", epsilon=0.1), _entry()
        # Forge the pre-canonical on-disk form: epsilon as a JSON float,
        # routed by the CRC of that legacy encoding.
        (num_variables, clauses), method, epsilon, k = key
        legacy = json.dumps(
            [num_variables, [list(c) for c in clauses], method, 0.1, k],
            separators=(",", ":"))
        shards = 4
        index = zlib.crc32(legacy.encode("utf-8")) % shards
        from repro.engine.store import encode_entry as _encode_entry
        (tmp_path / f"shard-{index:04d}.json").write_text(
            json.dumps({"version": STORE_FORMAT_VERSION,
                        "entries": {legacy: {"stamp": 1,
                                             "entry": _encode_entry(entry)}}}),
            encoding="utf-8")

        store = DiskStore(str(tmp_path), shards=shards)
        assert store.get(key) == entry          # legacy fallback lookup
        store.flush()                           # migration persisted
        migrated = DiskStore(str(tmp_path), shards=shards)
        assert migrated.get(key) == entry
        # After migration the canonical encoding serves directly.
        canonical = encode_key(key)
        canonical_index = zlib.crc32(canonical.encode("utf-8")) % shards
        document = json.loads(
            (tmp_path / f"shard-{canonical_index:04d}.json").read_text())
        assert canonical in document["entries"]

    def test_items_normalize_legacy_keys(self, tmp_path):
        key, entry = _key(method="approximate", epsilon=0.25), _entry()
        store = DiskStore(str(tmp_path), shards=1)
        store.put(key, entry)
        store.flush()
        for decoded_key, _value in DiskStore(str(tmp_path), shards=1).items():
            assert isinstance(decoded_key[2], Fraction)


class TestArtifactTier:
    def test_memory_store_artifact_roundtrip(self):
        store = MemoryStore()
        key, artifact = _canonical_key(), _artifact()
        assert store.get_artifact(key) is None
        store.put_artifact(key, artifact)
        assert store.get_artifact(key) is artifact
        assert dict(store.artifact_items()) == {key: artifact}
        assert store.stats()["artifacts"] == 1

    def test_disk_store_artifact_roundtrip_across_handles(self, tmp_path):
        from repro.dtree.serialize import trees_equal

        key = _canonical_key()
        for artifact in (_artifact(complete=True),
                         _artifact(complete=False)):
            writer = DiskStore(str(tmp_path / str(artifact.complete)))
            writer.put_artifact(key, artifact)
            writer.flush()
            reader = DiskStore(str(tmp_path / str(artifact.complete)))
            loaded = reader.get_artifact(key)
            assert loaded is not None
            assert loaded.complete == artifact.complete
            assert trees_equal(loaded.root, artifact.root)

    def test_legacy_v1_tree_shard_reads_losslessly(self, tmp_path):
        # A shard written by a pre-arena deployment: format version 1,
        # trees in the legacy nested-list encoding.  The store must read
        # it losslessly (ARTIFACT_COMPAT_VERSIONS), serve the artifact,
        # and rewrite the shard in the current format on the next flush.
        from repro.dtree.compile import compile_dnf
        from repro.dtree.serialize import encode_tree_v1, trees_equal
        from repro.engine.store import encode_canonical_key

        function = DNF([(0, 1), (1, 2)], domain=range(3))
        tree = compile_dnf(function)
        key = _canonical_key()
        document = {
            "version": 1,
            "entries": {
                encode_canonical_key(key): {
                    "stamp": 1,
                    "entry": {
                        "complete": True,
                        "shannon_steps": 0,
                        "expansion_steps": 0,
                        "tree": encode_tree_v1(tree),
                    },
                },
            },
        }
        os.makedirs(tmp_path, exist_ok=True)
        (tmp_path / "trees-0000.json").write_text(json.dumps(document),
                                                  encoding="utf-8")

        reader = DiskStore(str(tmp_path), tree_shards=1)
        loaded = reader.get_artifact(key)
        assert loaded is not None and loaded.complete
        assert trees_equal(loaded.root, tree)
        assert reader.corrupt_shards == 0
        # Touch the shard and flush: it is rewritten at the current
        # version and stays readable (now through the v2 decoder).
        reader.put_artifact(_canonical_key(clauses=((0,), (1, 2))),
                            _artifact())
        reader.flush()
        from repro.engine.artifact import ARTIFACT_FORMAT_VERSION
        rewritten = json.loads(
            (tmp_path / "trees-0000.json").read_text(encoding="utf-8"))
        assert rewritten["version"] == ARTIFACT_FORMAT_VERSION
        reloaded = DiskStore(str(tmp_path), tree_shards=1).get_artifact(key)
        assert reloaded is not None and trees_equal(reloaded.root, tree)

    def test_corrupted_tree_shard_is_ignored(self, tmp_path):
        key, artifact = _canonical_key(), _artifact()
        store = DiskStore(str(tmp_path), tree_shards=1)
        store.put_artifact(key, artifact)
        store.flush()
        (tmp_path / "trees-0000.json").write_text("{ nope", encoding="utf-8")
        reader = DiskStore(str(tmp_path), tree_shards=1)
        assert reader.get_artifact(key) is None
        assert reader.corrupt_shards == 1
        # Result shards are unaffected by tree-shard damage.
        reader.put(_key(), _entry())
        reader.flush()
        assert DiskStore(str(tmp_path), tree_shards=1).get(_key()) == _entry()

    def test_tampered_tree_is_rejected_not_crashing(self, tmp_path):
        key, artifact = _canonical_key(), _artifact()
        store = DiskStore(str(tmp_path), tree_shards=1)
        store.put_artifact(key, artifact)
        store.flush()
        path = tmp_path / "trees-0000.json"
        document = json.loads(path.read_text(encoding="utf-8"))
        record = next(iter(document["entries"].values()))
        record["entry"]["complete"] = not record["entry"]["complete"]
        path.write_text(json.dumps(document), encoding="utf-8")
        reader = DiskStore(str(tmp_path), tree_shards=1)
        assert reader.get_artifact(key) is None
        assert reader.corrupt_shards == 1

    def test_artifact_eviction_honors_bound(self, tmp_path):
        store = DiskStore(str(tmp_path), max_artifacts=3, tree_shards=1)
        keys = [_canonical_key(clauses=((0, 1), (1, 2), (0, index % 3)))
                for index in range(3)]
        keys += [_canonical_key(clauses=((0, index),))
                 for index in range(1, 4)]
        for index, key in enumerate(keys):
            store.put_artifact(key, _artifact(
                function=DNF([(0, 1), (1, 2)], domain=range(3 + index))))
        store.flush()
        assert store.artifact_count() <= 3
        reader = DiskStore(str(tmp_path), max_artifacts=3, tree_shards=1)
        assert reader.artifact_count() <= 3

    def test_stats_report_per_kind(self, tmp_path):
        store = DiskStore(str(tmp_path))
        store.put(_key(), _entry())
        store.put_artifact(_canonical_key(), _artifact())
        store.flush()
        stats = store.stats()
        kinds = stats["kinds"]
        assert kinds["results"]["entries"] == 1
        assert kinds["compiled_trees"]["entries"] == 1
        assert kinds["results"]["disk_bytes"] > 0
        assert kinds["compiled_trees"]["disk_bytes"] > 0
        assert stats["disk_bytes"] == (kinds["results"]["disk_bytes"]
                                       + kinds["compiled_trees"]["disk_bytes"])

    def test_save_load_helpers_skip_trivial_partials(self):
        from repro.engine.artifact import CompiledLineage
        from repro.engine.store import load_artifacts, save_artifacts
        from repro.dtree.incremental import node_for

        store = MemoryStore()
        trivial = CompiledLineage(
            root=node_for(DNF([(0, 1), (1, 2)], domain=range(3))),
            complete=False)
        written = save_artifacts(
            [(_canonical_key(), _artifact()),
             (_canonical_key(clauses=((0, 1),)), trivial)], store)
        assert written == 1
        cache = LineageCache(16).artifacts
        assert load_artifacts(store, cache) == 1

    def test_engine_resumes_persisted_partial_across_processes(self, tmp_path):
        # A budget-starved certain ranking persists its partial tree; a
        # fresh process over the same directory resumes it rather than
        # restarting the refinement.
        lineage = DNF([[i, (i + 1) % 8] for i in range(8)])
        # 8 variables: the first round alone costs 8 bound evaluations,
        # so a 20-step budget allows a couple of expansions (a
        # non-trivial, persistable frontier) but not convergence.
        starved = Engine(EngineConfig(method="rank", epsilon=None,
                                      max_shannon_steps=20,
                                      store=DiskStore(str(tmp_path))))
        (partial,) = starved.attribute_lineages([lineage])
        assert starved.stats.partial_results == 1

        warm = Engine(EngineConfig(method="rank", epsilon=None,
                                   store=DiskStore(str(tmp_path))))
        (full,) = warm.attribute_lineages([lineage])
        assert warm.stats.artifact_store_hits == 1
        assert warm.stats.artifact_resumes == 1
        assert warm.stats.tree_compilations == 0
        # The resumed run converges; its interval evidence contains the
        # exact values.
        from repro.baselines.brute_force import banzhaf_all_brute_force

        exact = banzhaf_all_brute_force(lineage)
        for variable, (lo, hi) in full.bounds.items():
            assert lo <= exact[variable] <= hi


class TestDiskStoreWriteAmplification:
    """Regression tests pinning DiskStore's flush/eviction write costs.

    The log backend exists because rewriting whole shards per flush does
    not scale; these pin the DiskStore fixes that shrink the damage for
    deployments that stay on it: one dirty entry rewrites exactly one
    shard, identical re-puts write nothing, and sizing a reopened store
    reads meta.json instead of parsing every shard file.
    """

    def _fill(self, store, count, method="approximate"):
        for i in range(count):
            store.put(_key(method=method, epsilon=Fraction(i + 1, 997)),
                      _entry())
        store.flush()

    def test_single_new_entry_rewrites_exactly_one_shard(self, tmp_path):
        store = DiskStore(str(tmp_path), shards=8)
        self._fill(store, 64)
        baseline_writes = store.flush_writes
        store.put(_key(method="approximate", epsilon=Fraction(1, 99991)),
                  _entry())
        store.flush()
        assert store.flush_writes == baseline_writes + 1

    def test_identical_reput_is_a_noop_flush(self, tmp_path):
        store = DiskStore(str(tmp_path), shards=8)
        key, entry = _key(), _entry()
        store.put(key, entry)
        store.flush()
        baseline_writes = store.flush_writes
        baseline_bytes = store.bytes_flushed
        # Re-putting byte-identical content must not dirty any shard:
        # the flush rewrites nothing.
        store.put(key, CachedAttribution(
            method_used=entry.method_used, values=dict(entry.values),
            bounds=dict(entry.bounds), converged=entry.converged))
        store.flush()
        assert store.flush_writes == baseline_writes
        assert store.bytes_flushed == baseline_bytes
        # A genuinely different value still flushes.
        store.put(key, _entry(converged=False))
        store.flush()
        assert store.flush_writes == baseline_writes + 1

    def test_reopened_store_sizes_without_loading_shards(self, tmp_path):
        writer = DiskStore(str(tmp_path), shards=8)
        self._fill(writer, 64)
        writer.put_artifact(_canonical_key(), _artifact())
        writer.flush()

        reader = DiskStore(str(tmp_path), shards=8)
        assert len(reader) == 64
        assert reader.artifact_count() == 1
        assert reader.stats()["entries"] == 64
        # meta.json's per-shard counts answered all of that; no shard
        # file was parsed.
        assert reader.shard_loads == 0

    def test_legacy_meta_without_counts_still_sizes_correctly(self, tmp_path):
        writer = DiskStore(str(tmp_path), shards=8)
        self._fill(writer, 32)
        meta_path = os.path.join(str(tmp_path), "meta.json")
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        del meta["shard_counts"]
        del meta["tree_shard_counts"]
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)

        reader = DiskStore(str(tmp_path), shards=8)
        assert len(reader) == 32          # falls back to loading
        assert reader.shard_loads > 0

    def test_stale_meta_count_self_heals_on_load(self, tmp_path):
        writer = DiskStore(str(tmp_path), shards=1)
        self._fill(writer, 4)
        meta_path = os.path.join(str(tmp_path), "meta.json")
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        meta["shard_counts"]["0"] = 9999  # crash-torn meta
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)

        reader = DiskStore(str(tmp_path), shards=1)
        assert len(reader) == 9999        # advisory count, knowingly stale
        reader.get(_key(method="approximate", epsilon=Fraction(1, 997)))
        assert len(reader) == 4           # corrected by the actual load
