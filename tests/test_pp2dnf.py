"""Tests for PP2DNF functions, #BIS / #NSat, and the hardness constructions."""

import pytest

from repro.boolean.pp2dnf import (
    BipartiteGraph,
    PP2DNF,
    count_independent_sets_nx,
    graph_to_pp2dnf,
    hat_and,
    lemma24_gadget,
    matching_function,
)


class TestBipartiteGraph:
    def test_from_edges(self):
        graph = BipartiteGraph.from_edges([(1, 10), (2, 11)])
        assert graph.left == frozenset({1, 2})
        assert graph.right == frozenset({10, 11})

    def test_parts_must_be_disjoint(self):
        with pytest.raises(ValueError):
            BipartiteGraph(frozenset({1}), frozenset({1}), frozenset())

    def test_edges_must_cross(self):
        with pytest.raises(ValueError):
            BipartiteGraph(frozenset({1}), frozenset({2}),
                           frozenset({(2, 1)}))

    def test_count_independent_sets_path(self):
        # A single edge: independent sets are {}, {u}, {w} -> 3.
        graph = BipartiteGraph.from_edges([(1, 2)])
        assert graph.count_independent_sets() == 3

    def test_count_independent_sets_with_isolated_node(self):
        graph = BipartiteGraph.from_edges([(1, 2)], left=[3])
        assert graph.count_independent_sets() == 6

    def test_two_counting_implementations_agree(self):
        graph = BipartiteGraph.from_edges(
            [(1, 10), (1, 11), (2, 11), (3, 12)], left=[4])
        assert (graph.count_independent_sets()
                == count_independent_sets_nx(graph))


class TestPP2DNF:
    def test_construction(self):
        function = PP2DNF([1, 2], [10], [(1, 10)])
        assert function.domain() == frozenset({1, 2, 10})
        assert function.clauses == frozenset({(1, 10)})

    def test_parts_disjoint(self):
        with pytest.raises(ValueError):
            PP2DNF([1], [1], [])

    def test_clause_must_span(self):
        with pytest.raises(ValueError):
            PP2DNF([1], [2], [(2, 1)])

    def test_to_dnf(self):
        function = PP2DNF([1], [2], [(1, 2)])
        dnf = function.to_dnf()
        assert dnf.clauses == frozenset({frozenset({1, 2})})

    def test_count_non_satisfying(self):
        function = PP2DNF([1], [2], [(1, 2)])
        assert function.count_non_satisfying() == 3


class TestReductions:
    def test_parsimonious_reduction(self):
        graph = BipartiteGraph.from_edges([(1, 10), (2, 10), (2, 11)], left=[3])
        function = graph_to_pp2dnf(graph)
        assert graph.count_independent_sets() == function.count_non_satisfying()

    def test_hat_and_adds_clauses(self):
        function = PP2DNF([1], [10, 11], [(1, 10)])
        extended = hat_and(99, function)
        assert (99, 10) in extended.clauses
        assert (99, 11) in extended.clauses
        with pytest.raises(ValueError):
            hat_and(1, function)

    def test_matching_function_counts(self):
        # psi_m for m = 2: non-satisfying assignments = 3^2 = 9.
        psi = matching_function([(1, 2), (3, 4)])
        assert psi.count_non_satisfying() == 9
        with pytest.raises(ValueError):
            matching_function([(1, 2), (1, 4)])

    def test_lemma24_gadget_structure(self):
        phi = PP2DNF([1], [2], [(1, 2)])
        psi = matching_function([(10, 11)])
        gadget = lemma24_gadget(phi, psi, x_var=100, y_var=101)
        assert 100 in gadget.left and 101 in gadget.left
        # The hat clauses connect the fresh variables to the right parts.
        assert (100, 2) in gadget.clauses
        assert (101, 11) in gadget.clauses

    def test_lemma24_gadget_validation(self):
        phi = PP2DNF([1], [2], [(1, 2)])
        psi = matching_function([(10, 11)])
        with pytest.raises(ValueError):
            lemma24_gadget(phi, psi, x_var=1, y_var=101)
        with pytest.raises(ValueError):
            lemma24_gadget(phi, phi, x_var=100, y_var=101)
