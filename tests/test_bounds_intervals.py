"""Tests for the bounds procedure (Fig. 2) and the interval algebra."""

from fractions import Fraction

import pytest

from repro.baselines.brute_force import banzhaf_all_brute_force
from repro.boolean.assignments import count_models
from repro.boolean.dnf import DNF
from repro.core.bounds import (
    BanzhafBounds,
    bounds_for_variable,
    cofactor_count_bounds,
    count_bounds,
)
from repro.core.intervals import Interval
from repro.dtree.compile import compile_dnf
from repro.dtree.incremental import IncrementalCompiler
from repro.workloads.generators import random_positive_dnf


class TestBanzhafBounds:
    def test_validation(self):
        with pytest.raises(ValueError):
            BanzhafBounds(2, 0, 1, 5)
        with pytest.raises(ValueError):
            BanzhafBounds(0, 5, 1, 2)

    def test_is_exact(self):
        assert BanzhafBounds(3, 7, 3, 7).is_exact()
        assert not BanzhafBounds(2, 7, 3, 7).is_exact()


class TestCountBounds:
    def test_exact_on_complete_trees(self, rng):
        for _ in range(20):
            function = random_positive_dnf(rng, rng.randint(1, 6),
                                           rng.randint(1, 5), (1, 3))
            tree = compile_dnf(function)
            lower, upper = count_bounds(tree)
            assert lower == upper == count_models(function)

    def test_sandwich_on_partial_trees(self, rng):
        for _ in range(30):
            function = random_positive_dnf(rng, rng.randint(2, 7),
                                           rng.randint(2, 7), (1, 3))
            compiler = IncrementalCompiler(function)
            exact = count_models(function)
            while True:
                lower, upper = count_bounds(compiler.root)
                assert lower <= exact <= upper
                if compiler.is_complete():
                    break
                compiler.expand_step(lazy=False)

    def test_bounds_tighten_monotonically(self, rng):
        function = random_positive_dnf(rng, 7, 8, (2, 3))
        compiler = IncrementalCompiler(function)
        previous_width = None
        while not compiler.is_complete():
            lower, upper = count_bounds(compiler.root)
            width = upper - lower
            if previous_width is not None:
                assert width <= previous_width
            previous_width = width
            compiler.expand_step(lazy=False)


class TestBanzhafBoundsOnTrees:
    def test_contains_exact_value_during_expansion(self, rng):
        for _ in range(25):
            function = random_positive_dnf(rng, rng.randint(2, 6),
                                           rng.randint(2, 6), (1, 3))
            exact = banzhaf_all_brute_force(function)
            compiler = IncrementalCompiler(function)
            while True:
                for variable in sorted(function.variables):
                    bounds = bounds_for_variable(compiler.root, variable)
                    assert bounds.banzhaf_lower <= exact[variable]
                    assert exact[variable] <= bounds.banzhaf_upper
                if compiler.is_complete():
                    break
                compiler.expand_step(lazy=False)

    def test_exact_on_complete_trees(self, rng):
        for _ in range(20):
            function = random_positive_dnf(rng, rng.randint(1, 6),
                                           rng.randint(1, 5), (1, 3))
            exact = banzhaf_all_brute_force(function)
            tree = compile_dnf(function)
            for variable in sorted(function.variables):
                bounds = bounds_for_variable(tree, variable)
                assert bounds.banzhaf_lower == bounds.banzhaf_upper == exact[variable]

    def test_variable_not_in_function(self):
        function = DNF([[0]], domain=[0, 1])
        compiler = IncrementalCompiler(function)
        bounds = bounds_for_variable(compiler.root, 1)
        assert bounds.banzhaf_lower == bounds.banzhaf_upper == 0

    def test_cofactor_count_bounds_contain_truth(self, rng):
        for _ in range(20):
            function = random_positive_dnf(rng, rng.randint(2, 6),
                                           rng.randint(2, 6), (1, 3))
            compiler = IncrementalCompiler(function)
            compiler.expand_step(lazy=True)
            for variable in sorted(function.variables):
                exact = count_models(function.cofactor(variable, False))
                lower, upper = cofactor_count_bounds(compiler.root, variable)
                assert lower <= exact <= upper


class TestInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            Interval(3, 2)

    def test_intersection(self):
        assert Interval(0, 10).intersect(Interval(5, 20)) == Interval(5, 10)
        with pytest.raises(ValueError):
            Interval(0, 1).intersect(Interval(5, 6))

    def test_point_and_width(self):
        assert Interval.point(4).is_point()
        assert Interval(2, 6).width() == 4
        assert Interval(2, 6).contains(5)
        assert not Interval(2, 6).contains(7)

    def test_relative_error_condition(self):
        # Example 14: with [Lb, Ub] = [43, 136] the error 0.5 cannot be
        # certified ((1-0.5)*136 = 68 > (1+0.5)*43 = 64.5) but 0.6 can.
        interval = Interval(43, 136)
        assert not interval.satisfies_relative_error(0.5)
        assert interval.satisfies_relative_error(0.6)
        low, high = interval.epsilon_interval(0.6)
        assert float(low) == pytest.approx(0.4 * 136)
        assert float(high) == pytest.approx(1.6 * 43)
        assert low <= high

    def test_epsilon_interval_rejects_unsatisfied(self):
        with pytest.raises(ValueError):
            Interval(43, 136).epsilon_interval(0.5)

    def test_approximation_within_relative_error(self):
        interval = Interval(90, 100)
        estimate = interval.approximation(0.1)
        for value in range(90, 101):
            # estimate must be an eps-approximation of any possible exact value
            assert (1 - Fraction(1, 10)) * value <= estimate
            assert estimate <= (1 + Fraction(1, 10)) * value

    def test_relative_gap(self):
        assert Interval.point(5).relative_gap() == 0
        assert Interval(0, 5).relative_gap() == 1
        assert Interval(5, 10).relative_gap() == Fraction(1, 3)

    def test_ordering_helpers(self):
        assert Interval(10, 12).strictly_above(Interval(1, 9))
        assert Interval(1, 9).strictly_below(Interval(10, 12))
        assert Interval(1, 9).overlaps(Interval(9, 12))
        assert Interval(4, 8).midpoint() == 6
