"""Multi-process tests for the log store: one writer, many readers.

The concurrency contract: readers opened in ``ro`` mode (no lock) see a
*consistent prefix* of the writer's acked flushes at every instant --
never a hole, never a torn or partially applied batch, never a value
other than the one written -- while the advisory writer lock excludes a
second writer cross-process with a clear error.  Compactions happening
mid-stream are invisible to readers beyond a full rescan: the log file
is atomically replaced and ``refresh()`` follows the new inode.

Runs in the ``concurrency`` CI lane (real subprocesses).
"""

import os
import subprocess
import sys
from fractions import Fraction

import pytest

from repro.engine.logstore import LogStore, StoreLockedError

pytestmark = pytest.mark.concurrency

_REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")

# Writer: `per` entries per batch in strictly increasing index order,
# one flush (= ack) per batch, a compaction every 10 batches, "ACK n"
# per flush.  Sleeps when done so the parent controls teardown.
_WRITER = r"""
import sys, time
from fractions import Fraction
from repro.engine.logstore import LogStore
from repro.engine.cache import CachedAttribution

path, batches, per = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
store = LogStore(path, auto_compact=False)
for b in range(batches):
    for j in range(per):
        i = b * per + j
        key = ((3, ((0, 1), (1, 2))), "approximate",
               Fraction(i + 1, 999983), None)
        value = CachedAttribution(
            method_used="approximate",
            values={0: Fraction(12345678901234567890 + i, 7)},
            bounds={0: (i, i + 1)}, converged=True)
        store.put(key, value)
    store.flush()
    if b and b % 10 == 0:
        store.compact()
    print(f"ACK {b}", flush=True)
store.close()
print("DONE", flush=True)
time.sleep(120)
"""

# Reader: loop over read-only snapshots until every index is visible,
# asserting the prefix property and exact values on each snapshot.
_READER = r"""
import sys, time
from fractions import Fraction
from repro.engine.logstore import LogStore

path, target = sys.argv[1], int(sys.argv[2])
store = LogStore(path, mode="ro")
deadline = time.time() + 90
top = -1
snapshots = 0
while time.time() < deadline and top < target - 1:
    indexes = []
    for key, value in store.items():
        i = key[2].numerator - 1
        expected = Fraction(12345678901234567890 + i, 7)
        if value.values[0] != expected:
            print(f"READER_FAIL wrong value at {i}", flush=True)
            sys.exit(1)
        indexes.append(i)
    indexes.sort()
    if indexes != list(range(len(indexes))):
        print(f"READER_FAIL non-prefix {indexes[:10]}...", flush=True)
        sys.exit(1)
    if indexes:
        top = indexes[-1]
    snapshots += 1
if top < target - 1:
    print(f"READER_FAIL timeout at {top}", flush=True)
    sys.exit(1)
print(f"READER_OK {top} {snapshots}", flush=True)
"""

# Second-writer probe: report which role the lock allows.
_SECOND_WRITER = r"""
import sys
from repro.engine.logstore import LogStore, StoreLockedError

path = sys.argv[1]
try:
    store = LogStore(path)
    print("ACQUIRED", flush=True)
except StoreLockedError as error:
    assert "writer lock" in str(error)
    print("LOCKED", flush=True)
follower = LogStore(path, mode="auto")
print(f"AUTO {follower.mode}", flush=True)
"""


def _spawn(script, *args):
    env = dict(os.environ)
    env["PYTHONPATH"] = _REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", script, *[str(a) for a in args]],
        stdout=subprocess.PIPE, env=env, text=True)


def _read_until(process, prefix, limit=1000):
    lines = []
    for _ in range(limit):
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line.strip())
        if line.startswith(prefix):
            return lines
    raise AssertionError(f"child never printed {prefix!r}; got "
                         f"{lines[-5:]!r}")


class TestWriterReaderConcurrency:
    def test_readers_see_consistent_prefix_under_live_writes(self, tmp_path):
        batches, per, readers = 30, 10, 3
        writer = _spawn(_WRITER, tmp_path, batches, per)
        try:
            _read_until(writer, "ACK 0")
            reader_processes = [
                _spawn(_READER, tmp_path, batches * per)
                for _ in range(readers)
            ]
            _read_until(writer, "DONE")
            for reader in reader_processes:
                output, _ = reader.communicate(timeout=90)
                assert reader.returncode == 0, output
                assert "READER_OK" in output, output
                # Each reader converged on the full stream, through
                # however many mid-stream compactions it raced.
                assert f"READER_OK {batches * per - 1}" in output, output
        finally:
            writer.kill()
            writer.wait(timeout=30)

    def test_second_writer_is_excluded_cross_process(self, tmp_path):
        with LogStore(str(tmp_path)) as _holder:
            probe = _spawn(_SECOND_WRITER, tmp_path)
            output, _ = probe.communicate(timeout=60)
            assert probe.returncode == 0, output
            assert "LOCKED" in output        # rw open failed loudly
            assert "AUTO ro" in output       # auto degraded to reader
        # Lock released with the handle: now the probe acquires it.
        probe = _spawn(_SECOND_WRITER, tmp_path)
        output, _ = probe.communicate(timeout=60)
        assert probe.returncode == 0, output
        assert "ACQUIRED" in output

    def test_in_process_second_writer_also_excluded(self, tmp_path):
        # flock conflicts apply between file descriptors, so even two
        # handles in one process exclude each other -- a config bug
        # (two engines opening the same root) fails fast, not silently.
        with LogStore(str(tmp_path)):
            with pytest.raises(StoreLockedError):
                LogStore(str(tmp_path))
