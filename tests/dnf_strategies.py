"""Hypothesis strategies shared by the property-based tests.

Lives in its own module (not ``conftest.py``) so test modules can import it
by name: ``conftest`` is ambiguous on ``sys.path`` when several test roots
(``tests/``, ``benchmarks/``) are collected in one pytest run.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.boolean.dnf import DNF


def small_dnfs(max_variables: int = 7, max_clauses: int = 6) -> st.SearchStrategy[DNF]:
    """Hypothesis strategy for small positive DNFs (brute-force checkable)."""

    @st.composite
    def build(draw) -> DNF:
        num_variables = draw(st.integers(min_value=1, max_value=max_variables))
        num_clauses = draw(st.integers(min_value=1, max_value=max_clauses))
        variables = list(range(num_variables))
        clauses = []
        for _ in range(num_clauses):
            width = draw(st.integers(min_value=1,
                                     max_value=min(3, num_variables)))
            clause = draw(st.permutations(variables))[:width]
            clauses.append(tuple(clause))
        extra_domain = draw(st.integers(min_value=0, max_value=2))
        domain = list(range(num_variables + extra_domain))
        return DNF(clauses, domain=domain)

    return build()
