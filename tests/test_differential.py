"""Differential fuzzing: every algorithm against brute force and each other.

Random positive DNFs are attributed by every path in the library -- brute
force, ExaBan over compiled d-trees, AdaBan intervals, IchiBan rankings and
top-k, and the batched engine under all of its methods (including the
engine-native ``rank``/``topk`` path) -- and the results are cross-checked:
exact paths must agree bit-for-bit, anytime paths must produce intervals
containing the exact value, and reported top-k sets must be legitimate
under the exact values (every reported variable's value at least the k-th
largest, which handles ties).

This promotes the ad-hoc fuzz loops historically run by hand into the
tier-1 suite; seeds are fixed so failures reproduce.
"""

import random

from fractions import Fraction

import pytest

from repro.baselines.brute_force import banzhaf_all_brute_force
from repro.boolean.dnf import DNF
from repro.core.adaban import adaban_all
from repro.core.exaban import exaban_all
from repro.core.ichiban import ichiban_rank, ichiban_topk, ichiban_topk_certain
from repro.dtree.compile import compile_dnf
from repro.engine import Engine, EngineConfig
from repro.experiments.metrics import ground_truth_topk
from repro.workloads.generators import random_positive_dnf

#: Number of random instances per differential test.  Instances are small
#: (<= 7 variables) so brute force stays instant and the whole module adds
#: only a few seconds to the tier-1 suite.
_INSTANCES = 25


def _instances(seed: int, count: int = _INSTANCES):
    rng = random.Random(seed)
    for _ in range(count):
        yield random_positive_dnf(rng, rng.randint(3, 7),
                                  rng.randint(2, 7), (1, 3))


def _legitimate_topk(reported, exact, k):
    """The reported set lies within the tie-extended ground-truth top-k."""
    return set(reported) <= ground_truth_topk(exact, k)


class TestExactPaths:
    def test_exaban_matches_brute_force(self):
        for function in _instances(seed=11):
            exact = banzhaf_all_brute_force(function)
            assert exaban_all(compile_dnf(function)) == exact

    def test_engine_exact_and_auto_match_brute_force(self):
        exact_engine = Engine(EngineConfig(method="exact"))
        auto_engine = Engine(EngineConfig(method="auto"))
        for function in _instances(seed=12):
            expected = {v: Fraction(x)
                        for v, x in banzhaf_all_brute_force(function).items()}
            (via_exact,) = exact_engine.attribute_lineages([function])
            (via_auto,) = auto_engine.attribute_lineages([function])
            assert via_exact.values == expected
            assert via_auto.values == expected


class TestIntervalPaths:
    def test_adaban_intervals_contain_exact(self):
        for function in _instances(seed=13):
            exact = banzhaf_all_brute_force(function)
            for variable, result in adaban_all(function,
                                               epsilon=0.2).items():
                assert result.lower <= exact[variable] <= result.upper

    def test_engine_approximate_bounds_contain_exact(self):
        engine = Engine(EngineConfig(method="approximate", epsilon=0.2))
        for function in _instances(seed=14):
            exact = banzhaf_all_brute_force(function)
            (attribution,) = engine.attribute_lineages([function])
            for variable, (lower, upper) in attribution.bounds.items():
                assert lower <= exact[variable] <= upper


class TestRankingPaths:
    def test_ichiban_certain_topk_is_legitimate(self):
        for function in _instances(seed=15):
            exact = banzhaf_all_brute_force(function)
            for k in (1, 2, 3):
                reported = [entry.variable
                            for entry in ichiban_topk_certain(function, k)]
                assert len(reported) == min(k, len(function.variables))
                assert _legitimate_topk(reported, exact, k)

    def test_ichiban_approximate_topk_intervals_contain_exact(self):
        for function in _instances(seed=16):
            exact = banzhaf_all_brute_force(function)
            for entry in ichiban_topk(function, 3, epsilon=0.1):
                assert entry.lower <= exact[entry.variable] <= entry.upper

    def test_ichiban_certain_rank_matches_exact_order(self):
        for function in _instances(seed=17):
            exact = banzhaf_all_brute_force(function)
            ranking = ichiban_rank(function, epsilon=None)
            values = [exact[entry.variable] for entry in ranking]
            assert values == sorted(values, reverse=True)

    def test_engine_topk_is_legitimate_and_contains_exact(self):
        engine = Engine(EngineConfig(method="topk", k=3, epsilon=None))
        for function in _instances(seed=18):
            exact = banzhaf_all_brute_force(function)
            outcomes = engine._attribute_batch([function])
            canonical, cached = outcomes[0]
            for variable, (lower, upper) in cached.bounds.items():
                original = canonical.from_canonical[variable]
                assert lower <= exact[original] <= upper
            (attribution,) = engine.attribute_lineages([function])
            # Certain mode: the engine's reported set must be legitimate.
            from repro.core.ichiban import ranked_from_bounds

            reported = [entry.variable
                        for entry in ranked_from_bounds(attribution.bounds, 3)]
            assert _legitimate_topk(reported, exact, 3)

    def test_engine_rank_matches_exact_order(self):
        engine = Engine(EngineConfig(method="rank", epsilon=None))
        for function in _instances(seed=19):
            exact = banzhaf_all_brute_force(function)
            (attribution,) = engine.attribute_lineages([function])
            ordered = sorted(attribution.values,
                             key=lambda v: (-attribution.values[v], v))
            values = [exact[variable] for variable in ordered]
            assert values == sorted(values, reverse=True)

    def test_engine_topk_agrees_with_per_answer_ichiban(self):
        # Certain mode on tie-free boundaries: both paths must report the
        # same set; with ties, both must be legitimate (checked above), so
        # here we only compare instances whose k-th value is unique.
        engine = Engine(EngineConfig(method="topk", k=2, epsilon=None))
        compared = 0
        for function in _instances(seed=20):
            exact = banzhaf_all_brute_force(function)
            order = sorted(exact.values(), reverse=True)
            if len(order) < 3 or order[1] == order[2]:
                continue  # tie at the boundary: the set is not unique
            per_answer = {entry.variable
                          for entry in ichiban_topk_certain(function, 2)}
            (attribution,) = engine.attribute_lineages([function])
            from repro.core.ichiban import ranked_from_bounds

            via_engine = {entry.variable
                          for entry in ranked_from_bounds(attribution.bounds, 2)}
            assert via_engine == per_answer
            compared += 1
        assert compared > 0  # the fuzz must actually compare something


class TestShapleyPath:
    def test_engine_shapley_efficiency(self):
        engine = Engine(EngineConfig(method="shapley"))
        for function in _instances(seed=21, count=10):
            (attribution,) = engine.attribute_lineages([function])
            assert sum(attribution.values.values()) == 1
            assert all(value >= 0 for value in attribution.values.values())
