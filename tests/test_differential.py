"""Differential fuzzing: every algorithm against brute force and each other.

Random positive DNFs are attributed by every path in the library -- brute
force, ExaBan over compiled d-trees, AdaBan intervals, IchiBan rankings and
top-k, and the batched engine under all of its methods (including the
engine-native ``rank``/``topk`` path) -- and the results are cross-checked:
exact paths must agree bit-for-bit, anytime paths must produce intervals
containing the exact value, and reported top-k sets must be legitimate
under the exact values (every reported variable's value at least the k-th
largest, which handles ties).

This promotes the ad-hoc fuzz loops historically run by hand into the
tier-1 suite; seeds are fixed so failures reproduce.
"""

import random

from fractions import Fraction

import pytest

from repro.baselines.brute_force import banzhaf_all_brute_force
from repro.boolean.dnf import DNF
from repro.core.adaban import adaban_all
from repro.core.exaban import exaban_all
from repro.core.ichiban import ichiban_rank, ichiban_topk, ichiban_topk_certain
from repro.dtree.compile import compile_dnf
from repro.engine import Engine, EngineConfig
from repro.experiments.metrics import ground_truth_topk
from repro.workloads.generators import random_positive_dnf

#: Number of random instances per differential test.  Instances are small
#: (<= 7 variables) so brute force stays instant and the whole module adds
#: only a few seconds to the tier-1 suite.
_INSTANCES = 25


def _instances(seed: int, count: int = _INSTANCES):
    rng = random.Random(seed)
    for _ in range(count):
        yield random_positive_dnf(rng, rng.randint(3, 7),
                                  rng.randint(2, 7), (1, 3))


def _legitimate_topk(reported, exact, k):
    """The reported set lies within the tie-extended ground-truth top-k."""
    return set(reported) <= ground_truth_topk(exact, k)


class TestExactPaths:
    def test_exaban_matches_brute_force(self):
        for function in _instances(seed=11):
            exact = banzhaf_all_brute_force(function)
            assert exaban_all(compile_dnf(function)) == exact

    def test_engine_exact_and_auto_match_brute_force(self):
        exact_engine = Engine(EngineConfig(method="exact"))
        auto_engine = Engine(EngineConfig(method="auto"))
        for function in _instances(seed=12):
            expected = {v: Fraction(x)
                        for v, x in banzhaf_all_brute_force(function).items()}
            (via_exact,) = exact_engine.attribute_lineages([function])
            (via_auto,) = auto_engine.attribute_lineages([function])
            assert via_exact.values == expected
            assert via_auto.values == expected


class TestIntervalPaths:
    def test_adaban_intervals_contain_exact(self):
        for function in _instances(seed=13):
            exact = banzhaf_all_brute_force(function)
            for variable, result in adaban_all(function,
                                               epsilon=0.2).items():
                assert result.lower <= exact[variable] <= result.upper

    def test_engine_approximate_bounds_contain_exact(self):
        engine = Engine(EngineConfig(method="approximate", epsilon=0.2))
        for function in _instances(seed=14):
            exact = banzhaf_all_brute_force(function)
            (attribution,) = engine.attribute_lineages([function])
            for variable, (lower, upper) in attribution.bounds.items():
                assert lower <= exact[variable] <= upper


class TestRankingPaths:
    def test_ichiban_certain_topk_is_legitimate(self):
        for function in _instances(seed=15):
            exact = banzhaf_all_brute_force(function)
            for k in (1, 2, 3):
                reported = [entry.variable
                            for entry in ichiban_topk_certain(function, k)]
                assert len(reported) == min(k, len(function.variables))
                assert _legitimate_topk(reported, exact, k)

    def test_ichiban_approximate_topk_intervals_contain_exact(self):
        for function in _instances(seed=16):
            exact = banzhaf_all_brute_force(function)
            for entry in ichiban_topk(function, 3, epsilon=0.1):
                assert entry.lower <= exact[entry.variable] <= entry.upper

    def test_ichiban_certain_rank_matches_exact_order(self):
        for function in _instances(seed=17):
            exact = banzhaf_all_brute_force(function)
            ranking = ichiban_rank(function, epsilon=None)
            values = [exact[entry.variable] for entry in ranking]
            assert values == sorted(values, reverse=True)

    def test_engine_topk_is_legitimate_and_contains_exact(self):
        engine = Engine(EngineConfig(method="topk", k=3, epsilon=None))
        for function in _instances(seed=18):
            exact = banzhaf_all_brute_force(function)
            outcomes = engine._attribute_batch([function])
            canonical, cached = outcomes[0]
            for variable, (lower, upper) in cached.bounds.items():
                original = canonical.from_canonical[variable]
                assert lower <= exact[original] <= upper
            (attribution,) = engine.attribute_lineages([function])
            # Certain mode: the engine's reported set must be legitimate.
            from repro.core.ichiban import ranked_from_bounds

            reported = [entry.variable
                        for entry in ranked_from_bounds(attribution.bounds, 3)]
            assert _legitimate_topk(reported, exact, 3)

    def test_engine_rank_matches_exact_order(self):
        engine = Engine(EngineConfig(method="rank", epsilon=None))
        for function in _instances(seed=19):
            exact = banzhaf_all_brute_force(function)
            (attribution,) = engine.attribute_lineages([function])
            ordered = sorted(attribution.values,
                             key=lambda v: (-attribution.values[v], v))
            values = [exact[variable] for variable in ordered]
            assert values == sorted(values, reverse=True)

    def test_engine_topk_agrees_with_per_answer_ichiban(self):
        # Certain mode on tie-free boundaries: both paths must report the
        # same set; with ties, both must be legitimate (checked above), so
        # here we only compare instances whose k-th value is unique.
        engine = Engine(EngineConfig(method="topk", k=2, epsilon=None))
        compared = 0
        for function in _instances(seed=20):
            exact = banzhaf_all_brute_force(function)
            order = sorted(exact.values(), reverse=True)
            if len(order) < 3 or order[1] == order[2]:
                continue  # tie at the boundary: the set is not unique
            per_answer = {entry.variable
                          for entry in ichiban_topk_certain(function, 2)}
            (attribution,) = engine.attribute_lineages([function])
            from repro.core.ichiban import ranked_from_bounds

            via_engine = {entry.variable
                          for entry in ranked_from_bounds(attribution.bounds, 2)}
            assert via_engine == per_answer
            compared += 1
        assert compared > 0  # the fuzz must actually compare something


class TestShapleyPath:
    def test_engine_shapley_efficiency(self):
        engine = Engine(EngineConfig(method="shapley"))
        for function in _instances(seed=21, count=10):
            (attribution,) = engine.attribute_lineages([function])
            assert sum(attribution.values.values()) == 1
            assert all(value >= 0 for value in attribution.values.values())


class TestSharedArtifact:
    """One compilation, every evaluator: the compiled-lineage tier.

    A canonical lineage is compiled exactly once (by the exact method);
    exact, shapley, rank and topk then all evaluate off the shared
    artifact — the engine must never recompile, and every value must be
    bit-identical (``Fraction`` equality, type included) to a fresh
    per-method engine that pays its own compilation.
    """

    def _shared_engines(self, store):
        from dataclasses import replace

        base = EngineConfig(method="exact", store=store)
        engines = {}
        cache = None
        for method in ("exact", "shapley", "rank", "topk"):
            config = replace(base, method=method,
                             epsilon=None if method in ("rank", "topk")
                             else base.epsilon,
                             k=3 if method == "topk" else None)
            engine = Engine(config)
            if cache is None:
                cache = engine.cache
            engine.cache = cache
            engines[method] = engine
        return engines

    def test_every_method_off_one_compilation_is_bit_identical(self):
        from repro.engine import MemoryStore

        shared = self._shared_engines(MemoryStore())
        for function in _instances(seed=22, count=10):
            results = {}
            for method, engine in shared.items():
                (results[method],) = engine.attribute_lineages([function])
            # The artifact tier did its job: exactly one tree was built
            # across all four methods (per distinct canonical lineage).
            for method in ("shapley", "rank", "topk"):
                fresh = Engine(EngineConfig(
                    method=method,
                    epsilon=None if method in ("rank", "topk") else 0.1,
                    k=3 if method == "topk" else None))
                (expected,) = fresh.attribute_lineages([function])
                if method == "shapley":
                    assert results[method].values == expected.values
                    for variable, value in results[method].values.items():
                        assert isinstance(value, Fraction)
                        assert value == expected.values[variable]
                else:
                    # Off a complete artifact the ranking methods are
                    # exact; the fresh anytime run certifies intervals
                    # that must contain those exact values.
                    assert results[method].method_used == "exact"
                    exact = banzhaf_all_brute_force(function)
                    for variable, value in results[method].values.items():
                        assert isinstance(value, Fraction)
                        assert value == exact[variable]
                    for variable, (lo, hi) in expected.bounds.items():
                        assert lo <= exact[variable] <= hi
        total = sum(e.stats.tree_compilations for e in shared.values())
        distinct = shared["exact"].stats.compilations
        assert total == distinct, (
            "methods sharing the artifact tier must compile once per "
            f"distinct lineage ({distinct}), not {total} times"
        )
        for method in ("shapley", "rank", "topk"):
            assert shared[method].stats.tree_compilations == 0
            assert shared[method].stats.artifact_hits == \
                shared[method].stats.compilations

    def test_resumed_partial_artifact_converges_to_identical_values(self):
        # A budget-starved certain ranking leaves a partial artifact; a
        # second engine resumes it and must converge to interval evidence
        # consistent with the exact values — and, because the resumed run
        # finishes the tree or separates exactly, the reported top-k set
        # must be legitimate.
        from repro.core.ichiban import ranked_from_bounds
        from repro.experiments.metrics import ground_truth_topk

        resumes = 0
        for function in _instances(seed=23, count=10):
            starved = Engine(EngineConfig(method="rank", epsilon=None,
                                          max_shannon_steps=1))
            starved.attribute_lineages([function])
            resumed = Engine(EngineConfig(method="rank", epsilon=None))
            resumed.cache = starved.cache
            (full,) = resumed.attribute_lineages([function])
            resumes += resumed.stats.artifact_resumes
            exact = banzhaf_all_brute_force(function)
            for variable, (lo, hi) in full.bounds.items():
                assert lo <= exact[variable] <= hi
            reported = [entry.variable
                        for entry in ranked_from_bounds(full.bounds, 2)]
            assert set(reported) <= ground_truth_topk(exact, 2)
        assert resumes >= 1
