"""Tests for the baselines: brute force, Sig22, Monte Carlo, CNF proxy."""

import random

import pytest

from repro.baselines.brute_force import banzhaf_all_brute_force
from repro.baselines.cnf_proxy import cnf_proxy_ranking, cnf_proxy_scores, cnf_proxy_topk
from repro.baselines.monte_carlo import (
    default_sample_count,
    monte_carlo_banzhaf,
    monte_carlo_banzhaf_all,
    monte_carlo_trace,
)
from repro.baselines.sig22 import (
    Sig22Failure,
    sig22_banzhaf,
    sig22_banzhaf_all,
    sig22_model_count,
)
from repro.boolean.assignments import count_models
from repro.boolean.dnf import DNF
from repro.workloads.generators import random_positive_dnf


class TestBruteForce:
    def test_default_covers_domain(self):
        # Over the domain {0, 1} the silent variable doubles the count of
        # critical sets for x0 and itself has no influence.
        function = DNF([[0]], domain=[0, 1])
        values = banzhaf_all_brute_force(function)
        assert values == {0: 2, 1: 0}

    def test_explicit_variables(self, example9_dnf):
        assert banzhaf_all_brute_force(example9_dnf, [0]) == {0: 3}


class TestSig22:
    def test_matches_brute_force(self, rng):
        for _ in range(30):
            function = random_positive_dnf(rng, rng.randint(2, 6),
                                           rng.randint(1, 6), (1, 3))
            assert sig22_banzhaf_all(function) == banzhaf_all_brute_force(
                function, sorted(function.variables))

    def test_single_variable(self, example9_dnf):
        assert sig22_banzhaf(example9_dnf, 0) == 3

    def test_model_count(self, rng):
        for _ in range(15):
            function = random_positive_dnf(rng, rng.randint(2, 6),
                                           rng.randint(1, 5), (1, 3))
            assert sig22_model_count(function) == count_models(function)

    def test_silent_variables(self):
        function = DNF([[0]], domain=[0, 1])
        assert sig22_banzhaf_all(function, [0, 1]) == {0: 2, 1: 0}

    def test_failure_on_cnf_blowup(self):
        clauses = [(2 * i, 2 * i + 1) for i in range(8)]
        function = DNF(clauses)
        with pytest.raises(Sig22Failure):
            sig22_banzhaf_all(function, max_cnf_clauses=10)

    def test_false_function(self):
        assert sig22_banzhaf_all(DNF.false([0, 1]), [0, 1]) == {0: 0, 1: 0}

    def test_example13(self, example13_dnf):
        values = sig22_banzhaf_all(example13_dnf)
        assert values[0] == 3


class TestMonteCarlo:
    def test_default_sample_count(self, example9_dnf):
        assert default_sample_count(example9_dnf) == 150

    def test_exact_on_deterministic_structure(self):
        # For phi = x0 the estimator is exact regardless of sampling.
        function = DNF([[0]])
        estimate = monte_carlo_banzhaf(function, 0, num_samples=10,
                                       rng=random.Random(0))
        assert estimate.estimate == 1

    def test_estimates_close_with_many_samples(self, example9_dnf):
        estimates = monte_carlo_banzhaf_all(example9_dnf, num_samples=4000,
                                            rng=random.Random(7))
        assert abs(float(estimates[0].estimate) - 3) < 0.6
        assert abs(float(estimates[1].estimate) - 1) < 0.6

    def test_shared_samples_cover_all_variables(self, rng):
        function = random_positive_dnf(rng, 5, 5, (1, 3))
        estimates = monte_carlo_banzhaf_all(function, num_samples=50,
                                            rng=random.Random(1))
        assert set(estimates) == function.variables

    def test_unknown_variable_rejected(self):
        with pytest.raises(ValueError):
            monte_carlo_banzhaf(DNF([[0]]), 9, num_samples=5)

    def test_timeout(self):
        function = DNF([[0, 1], [1, 2], [2, 3]])
        with pytest.raises(TimeoutError):
            monte_carlo_banzhaf_all(function, num_samples=10_000_000,
                                    timeout_seconds=0.0)

    def test_trace_yields_running_estimates(self, example9_dnf):
        points = list(monte_carlo_trace(example9_dnf, 0, num_samples=100,
                                        rng=random.Random(3),
                                        report_every=25))
        assert len(points) == 4
        assert all(estimate >= 0 for _, estimate in points)

    def test_reproducible_with_seeded_rng(self, example9_dnf):
        first = monte_carlo_banzhaf(example9_dnf, 0, num_samples=200,
                                    rng=random.Random(5))
        second = monte_carlo_banzhaf(example9_dnf, 0, num_samples=200,
                                     rng=random.Random(5))
        assert first.estimate == second.estimate


class TestCnfProxy:
    def test_scores_cover_occurring_variables(self, example13_dnf):
        scores = cnf_proxy_scores(example13_dnf)
        assert set(scores) == example13_dnf.variables

    def test_ranking_is_descending(self, rng):
        function = random_positive_dnf(rng, 6, 6, (1, 3))
        ranking = cnf_proxy_ranking(function)
        values = [score for _, score in ranking]
        assert values == sorted(values, reverse=True)

    def test_star_function_hub_ranks_first(self):
        # x0 appears in every clause; any sensible proxy ranks it first.
        function = DNF([[0, 1], [0, 2], [0, 3]])
        assert cnf_proxy_topk(function, 1) == [0]

    def test_topk_validation(self, example9_dnf):
        with pytest.raises(ValueError):
            cnf_proxy_topk(example9_dnf, 0)

    def test_failure_on_cnf_blowup(self):
        clauses = [(2 * i, 2 * i + 1) for i in range(8)]
        with pytest.raises(Sig22Failure):
            cnf_proxy_scores(DNF(clauses), max_cnf_clauses=10)

    def test_restriction_to_variables(self, example13_dnf):
        ranking = cnf_proxy_ranking(example13_dnf, variables=[0, 3])
        assert {v for v, _ in ranking} == {0, 3}
