"""Hypothesis model-based tests for the log store tier.

A :class:`~hypothesis.stateful.RuleBasedStateMachine` drives random
interleavings of ``put`` / ``flush`` / ``evict`` (via a tiny capacity) /
``compact`` / clean-``reopen`` / crash-``reopen`` against a
:class:`LogStore`, checking after every step that it agrees with a
trivial in-memory model (the dict a :class:`MemoryStore` is) about
every key's value -- with the exact-``Fraction`` round-trip preserved
bit for bit.  A second machine drives a :class:`ShardedStore` against
the same model, so routing can never lose or duplicate a key.

Runs in the ``concurrency`` CI lane alongside the crash/multiproc
harnesses (shared pytest-timeout guard; Hypothesis is slow-ish).
"""

import shutil
import tempfile
from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
    run_state_machine_as_test,
)

from repro.engine.cache import CachedAttribution
from repro.engine.logstore import LogStore, ShardedStore
from repro.engine.store import MemoryStore, decode_entry, decode_key, \
    encode_entry, encode_key

pytestmark = pytest.mark.concurrency

#: A small fixed key pool: few enough that overwrites, evictions and
#: collisions happen constantly, keyed apart by clauses *and* epsilon
#: so they spread across shards.
KEY_POOL = [
    ((3, ((0, 1), (1, 2))), "exact", None, None),
    ((3, ((0, 1), (1, 2))), "approximate", Fraction(1, 10), None),
    ((3, ((0, 2),)), "approximate", Fraction(1, 7), None),
    ((4, ((0, 1), (2, 3))), "topk", Fraction(3, 10), 2),
    ((2, ((0,), (1,))), "rank", None, None),
    ((5, ((0, 4), (1, 3), (2,))), "shapley", None, None),
]

_fractions = st.fractions(
    min_value=-1000, max_value=1000, max_denominator=997
) | st.sampled_from([
    Fraction(12345678901234567890, 7),
    Fraction(-1, 2 ** 80),
    Fraction(0),
])

_entries = st.builds(
    lambda value, lower, upper, converged: CachedAttribution(
        method_used="property",
        values={0: value, 1: value + 1},
        bounds={0: (min(lower, upper), max(lower, upper))},
        converged=converged),
    value=_fractions,
    lower=st.integers(-2 ** 70, 2 ** 70),
    upper=st.integers(-2 ** 70, 2 ** 70),
    converged=st.booleans(),
)

_keys = st.sampled_from(KEY_POOL)

_MACHINE_SETTINGS = settings(
    max_examples=25, stateful_step_count=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class LogStoreMachine(RuleBasedStateMachine):
    """LogStore vs a dict model mirroring its documented semantics.

    The model tracks ``(value, stamp)`` per key in two tiers --
    ``pending`` (buffered, lost on crash) and ``durable`` (acked) --
    plus the monotone stamp counter, which is exactly what oldest-first
    eviction keys on.
    """

    MAX_ENTRIES = 4

    def __init__(self):
        super().__init__()
        self.path = tempfile.mkdtemp(prefix="logstore-prop-")
        self.store = LogStore(self.path, max_entries=self.MAX_ENTRIES,
                              auto_compact=False)
        self.stamp = 0
        self.durable = {}
        self.pending = {}

    # -- model mirror of flush (ack + evict) ---------------------------- #

    def _model_flush(self):
        for key, (value, stamp) in self.pending.items():
            self.durable[key] = (value, stamp)
        self.pending.clear()
        excess = len(self.durable) - self.MAX_ENTRIES
        if excess > 0:
            oldest = sorted(self.durable.items(),
                            key=lambda item: item[1][1])[:excess]
            for key, _record in oldest:
                del self.durable[key]
                self.stamp += 1  # the tombstone's stamp

    # -- rules ----------------------------------------------------------- #

    @rule(key=_keys, value=_entries)
    def put(self, key, value):
        self.store.put(key, value)
        self.stamp += 1
        self.pending[key] = (value, self.stamp)

    @rule()
    def flush(self):
        self.store.flush()
        self._model_flush()

    @rule()
    def compact(self):
        # compact() flushes buffered writes first, then rewrites.
        self.store.compact()
        self._model_flush()

    @rule()
    def reopen_clean(self):
        # close() is an orderly shutdown: it flushes, so nothing is lost.
        self.store.close()
        self._model_flush()
        self.store = LogStore(self.path, max_entries=self.MAX_ENTRIES,
                              auto_compact=False)

    @rule()
    def reopen_crash(self):
        # A crash loses exactly the unflushed buffer, nothing else.
        self.store._pending.clear()
        self.store._tree_pending.clear()
        self.store.close()
        self.pending.clear()
        self.store = LogStore(self.path, max_entries=self.MAX_ENTRIES,
                              auto_compact=False)

    # -- the oracle ------------------------------------------------------ #

    @invariant()
    def agrees_with_model_exactly(self):
        for key in KEY_POOL:
            expected = self.pending.get(key) or self.durable.get(key)
            loaded = self.store.get(key)
            if expected is None:
                assert loaded is None, f"phantom entry for {key}"
            else:
                assert loaded == expected[0], f"wrong value for {key}"
                for variable, value in loaded.values.items():
                    assert isinstance(value, Fraction)
                    assert value == expected[0].values[variable]
        assert len(self.store) == \
            len(set(self.pending) | set(self.durable))

    def teardown(self):
        self.store.close()
        shutil.rmtree(self.path, ignore_errors=True)


class ShardedStoreMachine(RuleBasedStateMachine):
    """ShardedStore routing vs the flat dict it must be equivalent to."""

    def __init__(self):
        super().__init__()
        self.store = ShardedStore([MemoryStore() for _ in range(3)])
        self.model = {}

    @rule(key=_keys, value=_entries)
    def put(self, key, value):
        self.store.put(key, value)
        self.model[key] = value

    @rule()
    def flush(self):
        self.store.flush()

    @invariant()
    def routing_never_loses_or_duplicates(self):
        for key in KEY_POOL:
            assert self.store.get(key) == self.model.get(key)
        assert len(self.store) == len(self.model)
        snapshot = dict(self.store.items())
        assert snapshot == self.model


def test_logstore_against_model():
    run_state_machine_as_test(LogStoreMachine, settings=_MACHINE_SETTINGS)


def test_sharded_store_against_model():
    run_state_machine_as_test(ShardedStoreMachine,
                              settings=_MACHINE_SETTINGS)


@settings(max_examples=50, deadline=None)
@given(value=_fractions, converged=st.booleans())
def test_fraction_roundtrip_is_bit_identical(value, converged):
    entry = CachedAttribution("property", {0: value},
                              {0: (-(2 ** 90), 2 ** 90)}, converged)
    decoded = decode_entry(encode_entry(entry))
    assert decoded == entry
    assert isinstance(decoded.values[0], Fraction)
    assert decoded.values[0].numerator == value.numerator
    assert decoded.values[0].denominator == value.denominator


@settings(max_examples=25, deadline=None)
@given(
    num_variables=st.integers(1, 6),
    clauses=st.lists(
        st.frozensets(st.integers(0, 5), min_size=1, max_size=3),
        min_size=1, max_size=4),
    epsilon=st.none() | _fractions.filter(lambda f: f > 0),
)
def test_key_roundtrip_through_log_encoding(num_variables, clauses, epsilon):
    key = ((num_variables,
            tuple(tuple(sorted(clause)) for clause in clauses)),
           "approximate" if epsilon is not None else "rank",
           epsilon, None)
    assert decode_key(encode_key(key)) == key


@settings(max_examples=25, deadline=None)
@given(shards=st.integers(1, 8), extra=st.integers(1, 3),
       seeds=st.lists(st.integers(0, 10 ** 9), min_size=1, max_size=50,
                      unique=True))
def test_consistent_hash_growth_is_monotone(shards, extra, seeds):
    """Adding shards only ever moves keys onto the *new* shards."""
    small = ShardedStore([MemoryStore() for _ in range(shards)])
    grown = ShardedStore([MemoryStore() for _ in range(shards + extra)])
    for seed in seeds:
        encoded = encode_key(
            ((3, ((0, 1), (1, 2))), "approximate",
             Fraction(seed + 1, 999_983), None))
        before = small.shard_of(encoded)
        after = grown.shard_of(encoded)
        assert before == after or after >= shards
