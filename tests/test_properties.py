"""Property-based tests (hypothesis) for the core invariants of the paper."""

from hypothesis import given, settings

from repro.baselines.brute_force import banzhaf_all_brute_force
from repro.baselines.sig22 import sig22_banzhaf_all
from repro.boolean.assignments import (
    banzhaf_brute_force,
    count_models,
    enumerate_assignments,
)
from repro.boolean.dnf import DNF
from repro.boolean.idnf import idnf_model_count, lower_idnf, upper_idnf
from repro.core.adaban import adaban_all
from repro.core.bounds import bounds_for_variable, count_bounds
from repro.core.exaban import exaban_all, model_count
from repro.core.ichiban import ichiban_rank
from repro.core.shapley import shapley_all
from repro.dtree.compile import compile_dnf
from repro.dtree.incremental import IncrementalCompiler

from dnf_strategies import small_dnfs

_SETTINGS = settings(max_examples=60, deadline=None)


@_SETTINGS
@given(function=small_dnfs())
def test_dtree_compilation_preserves_semantics(function: DNF):
    tree = compile_dnf(function)
    tree.validate()
    for assignment in enumerate_assignments(function.domain):
        assert tree.evaluate(assignment) == function.evaluate(assignment)


@_SETTINGS
@given(function=small_dnfs())
def test_model_count_matches_brute_force(function: DNF):
    assert model_count(compile_dnf(function)) == count_models(function)


@_SETTINGS
@given(function=small_dnfs())
def test_exaban_matches_definition(function: DNF):
    assert exaban_all(compile_dnf(function)) == banzhaf_all_brute_force(function)


@_SETTINGS
@given(function=small_dnfs())
def test_banzhaf_equals_cofactor_count_difference(function: DNF):
    # Proposition 3: Banzhaf(phi, x) = #phi[x:=1] - #phi[x:=0].
    from repro.boolean.dnf import ConstantTrue

    for variable in sorted(function.variables):
        try:
            positive = count_models(function.cofactor(variable, True))
        except ConstantTrue as constant:
            positive = 1 << len(constant.domain)
        negative = count_models(function.cofactor(variable, False))
        assert banzhaf_brute_force(function, variable) == positive - negative


@_SETTINGS
@given(function=small_dnfs())
def test_idnf_bounds_sandwich_model_count(function: DNF):
    exact = count_models(function)
    assert idnf_model_count(lower_idnf(function)) <= exact
    assert exact <= idnf_model_count(upper_idnf(function))


@_SETTINGS
@given(function=small_dnfs())
def test_partial_tree_bounds_contain_exact_values(function: DNF):
    exact_counts = count_models(function)
    exact_banzhaf = banzhaf_all_brute_force(function)
    compiler = IncrementalCompiler(function)
    for _ in range(4):
        lower, upper = count_bounds(compiler.root)
        assert lower <= exact_counts <= upper
        for variable in sorted(function.variables):
            bounds = bounds_for_variable(compiler.root, variable)
            assert bounds.banzhaf_lower <= exact_banzhaf[variable] <= bounds.banzhaf_upper
        if compiler.is_complete():
            break
        compiler.expand_step(lazy=False)


@_SETTINGS
@given(function=small_dnfs())
def test_adaban_intervals_contain_exact_value(function: DNF):
    exact = banzhaf_all_brute_force(function)
    results = adaban_all(function, epsilon=0.25)
    for variable, result in results.items():
        assert result.lower <= exact[variable] <= result.upper
        if result.converged and exact[variable] > 0:
            assert 0.75 * exact[variable] <= result.estimate <= 1.25 * exact[variable]


@_SETTINGS
@given(function=small_dnfs())
def test_sig22_agrees_with_exaban(function: DNF):
    expected = banzhaf_all_brute_force(function, sorted(function.variables))
    assert sig22_banzhaf_all(function) == expected


@_SETTINGS
@given(function=small_dnfs())
def test_ichiban_certain_ranking_is_consistent(function: DNF):
    exact = banzhaf_all_brute_force(function, sorted(function.variables))
    if not exact:
        return
    ranking = ichiban_rank(function, epsilon=None)
    values = [exact[entry.variable] for entry in ranking]
    assert values == sorted(values, reverse=True)


@_SETTINGS
@given(function=small_dnfs())
def test_shapley_efficiency_axiom(function: DNF):
    # Efficiency: Shapley values sum to 1 for satisfiable positive functions
    # with at least one clause (phi(empty) = 0, phi(all) = 1).
    shapley = shapley_all(function)
    assert sum(shapley.values()) == 1
    assert all(value >= 0 for value in shapley.values())
