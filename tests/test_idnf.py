"""Tests for iDNF functions and the L/U bound synthesis (Proposition 12)."""

import random

import pytest

from repro.boolean.assignments import count_models
from repro.boolean.dnf import DNF
from repro.boolean.idnf import (
    IDNF,
    idnf_model_count,
    is_idnf,
    lower_idnf,
    upper_idnf,
)
from repro.workloads.generators import random_positive_dnf


class TestIsIdnf:
    def test_detects_idnf(self):
        assert is_idnf(DNF([[0, 1], [2]]))
        assert is_idnf(DNF([[0]]))
        assert is_idnf(DNF.false([0, 1]))

    def test_detects_repetition(self):
        assert not is_idnf(DNF([[0, 1], [0, 2]]))


class TestIdnfModelCount:
    def test_single_clause(self):
        assert idnf_model_count(DNF([[0, 1]])) == 1

    def test_disjoint_clauses(self):
        # (x & y) | z over 3 vars: non-models = 3 * 1 = 3 -> 5 models.
        assert idnf_model_count(DNF([[0, 1], [2]])) == 5

    def test_silent_variables(self):
        assert idnf_model_count(DNF([[0]], domain=[0, 1])) == 2

    def test_false(self):
        assert idnf_model_count(DNF.false([0, 1])) == 0

    def test_matches_brute_force(self, rng):
        for _ in range(25):
            width = rng.randint(1, 3)
            clauses = []
            variable = 0
            for _ in range(rng.randint(1, 4)):
                clause = list(range(variable, variable + rng.randint(1, width)))
                variable = clause[-1] + 1
                clauses.append(clause)
            function = DNF(clauses, domain=range(variable + rng.randint(0, 2)))
            assert idnf_model_count(function) == count_models(function)

    def test_rejects_non_idnf(self):
        with pytest.raises(ValueError):
            idnf_model_count(DNF([[0, 1], [0, 2]]))

    def test_idnf_wrapper_class(self):
        wrapped = IDNF(DNF([[0], [1, 2]]))
        assert wrapped.model_count() == count_models(wrapped.dnf)
        with pytest.raises(ValueError):
            IDNF(DNF([[0, 1], [0, 2]]))


class TestSynthesis:
    def test_example13_bounds(self):
        # phi = (x & y) | (x & z) | u : #phi = 11.
        function = DNF([[0, 1], [0, 2], [3]])
        lower = lower_idnf(function)
        upper = upper_idnf(function)
        assert is_idnf(lower)
        assert is_idnf(upper)
        assert idnf_model_count(lower) <= 11 <= idnf_model_count(upper)

    def test_lower_is_subset_of_clauses(self):
        function = DNF([[0, 1], [0, 2], [3]])
        assert lower_idnf(function).clauses <= function.clauses

    def test_upper_preserves_domain(self):
        function = DNF([[0, 1], [0, 2]], domain=[0, 1, 2, 5])
        assert upper_idnf(function).domain == function.domain
        assert lower_idnf(function).domain == function.domain

    def test_bounds_sandwich_random(self, rng):
        for _ in range(40):
            function = random_positive_dnf(rng, rng.randint(2, 7),
                                           rng.randint(1, 6), (1, 3))
            exact = count_models(function)
            assert idnf_model_count(lower_idnf(function)) <= exact
            assert exact <= idnf_model_count(upper_idnf(function))

    def test_idnf_is_its_own_bound(self):
        function = DNF([[0, 1], [2]])
        assert idnf_model_count(lower_idnf(function)) == count_models(function)
        assert idnf_model_count(upper_idnf(function)) == count_models(function)

    def test_upper_handles_fully_covered_clause(self):
        # The clause (y & z) shares all variables with previously kept clauses.
        function = DNF([[0, 1], [0, 2], [1, 2]])
        upper = upper_idnf(function)
        assert is_idnf(upper)
        assert idnf_model_count(upper) >= count_models(function)
