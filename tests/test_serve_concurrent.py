"""Concurrency tests for the serving front-end (repro.engine.frontend).

The load-bearing claims, each pinned here:

* **Correctness under concurrency**: N client threads hammering one
  front-end get bit-identical ``Fraction`` values to serial execution --
  coalescing and micro-batching are pure compute-sharing, never
  approximations.
* **Exactly-once computation**: overlapping isomorphic workloads compile
  each distinct canonical lineage once; the sharing shows up in the
  ``coalesced_requests`` counter.
* **No lost or duplicated responses**: every submitted request produces
  exactly one response, routed back via its ``id``.

The workloads mix *textually different but WL-isomorphic* queries
(same lineage shape over differently-named relations) to prove that the
coalescing key is canonical, not textual.
"""

import io
import itertools
import json
import threading
import time
from fractions import Fraction

import pytest

import repro.engine.serve as serve_module
from repro import Database
from repro.engine.engine import Engine
from repro.engine.frontend import (
    FrontendConfig,
    ServingFrontend,
    serve_jsonl_concurrent,
)
from repro.engine.serve import AttributionService

pytestmark = pytest.mark.concurrency


@pytest.fixture
def database():
    """Two isomorphism classes: R-S joins (shape A) and three-way joins
    (shape B), each duplicated over twin relations so textually different
    queries share canonical lineages."""
    db = Database()
    for value in ("a", "b", "c"):
        db.add_fact("R", (value,))
        db.add_fact("R2", (value,))
    for row in (("a", 1), ("b", 1), ("c", 2)):
        db.add_fact("S", row)
        db.add_fact("S2", row)
        db.add_fact("T", row)
    return db


#: Shape A: textually different, WL-isomorphic (same lineage over twins).
QUERY_A = "Q(X) :- R(X), S(X, Y)"
QUERY_A_ISO = "Q(X) :- R2(X), S2(X, Y)"
#: Shape B: a different isomorphism class (three atoms per clause).
QUERY_B = "Q(X) :- R(X), S(X, Y), T(X, Z)"


def _run_concurrent(service, requests, workers=4, **config_kwargs):
    """Fan the requests out from one client thread each; returns the
    responses indexed by request id."""
    frontend = ServingFrontend(
        service, FrontendConfig(workers=workers, max_queue=len(requests),
                                **config_kwargs))
    responses = {}
    lock = threading.Lock()

    def client(request):
        response = frontend.submit(request)
        with lock:
            assert response["id"] not in responses, "duplicated response id"
            responses[response["id"]] = response

    threads = [threading.Thread(target=client, args=(request,))
               for request in requests]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    frontend.close()
    return frontend, responses


def _fractions(response):
    """The exact per-answer Fractions of an attribute response, keyed so
    responses of the same query compare positionally."""
    return [
        [(entry["fact"], Fraction(entry["value"]))
         for entry in answer["attributions"]]
        for answer in response["answers"]
    ]


class TestBitIdenticalResults:
    def test_concurrent_equals_serial(self, database):
        queries = [QUERY_A, QUERY_A_ISO, QUERY_B]
        serial = AttributionService(database)
        expected = {query: serial.submit({"op": "attribute", "query": query})
                    for query in queries}

        requests = [{"op": "attribute", "query": queries[i % 3], "id": i}
                    for i in range(24)]
        _, responses = _run_concurrent(AttributionService(database),
                                       requests, workers=6)
        assert len(responses) == 24
        for request in requests:
            response = responses[request["id"]]
            assert response["ok"] is True
            assert _fractions(response) == _fractions(
                expected[request["query"]])

    def test_rank_and_topk_concurrent_equal_serial(self, database):
        serial = AttributionService(database)
        expected_rank = serial.submit({"op": "rank", "query": QUERY_B})
        expected_topk = serial.submit({"op": "topk", "query": QUERY_B,
                                       "k": 2})
        requests = []
        for i in range(16):
            if i % 2:
                requests.append({"op": "rank", "query": QUERY_B, "id": i})
            else:
                requests.append({"op": "topk", "query": QUERY_B, "k": 2,
                                 "id": i})
        _, responses = _run_concurrent(AttributionService(database),
                                       requests)
        for request in requests:
            response = responses[request["id"]]
            assert response["ok"] is True
            expected = expected_rank if request["op"] == "rank" \
                else expected_topk
            assert response["answers"] == expected["answers"]


class TestExactlyOnceComputation:
    def test_isomorphic_traffic_compiles_once_per_class(self, database):
        # Serial ground truth: how many fresh computations the workload
        # needs at all (one per canonical lineage per method config).
        serial = AttributionService(database)
        for query in (QUERY_A, QUERY_A_ISO, QUERY_B):
            serial.submit({"op": "attribute", "query": query})
        required = serial.stats_counters.compilations

        service = AttributionService(database)
        requests = [
            {"op": "attribute",
             "query": (QUERY_A, QUERY_A_ISO, QUERY_B)[i % 3], "id": i}
            for i in range(30)
        ]
        frontend, responses = _run_concurrent(service, requests, workers=6)
        assert all(r["ok"] for r in responses.values())
        # 10x the traffic, identical compute: every duplicate was served
        # by the cache, a single-flight leader, or an in-batch dedup.
        assert service.stats_counters.compilations == required
        report = frontend.stats()
        assert report["completed"] == 30
        assert report["shed"] == {"queue_full": 0, "client_budget": 0,
                                  "deadline": 0}

    def test_coalesce_counter_reports_sharing(self, database):
        service = AttributionService(database)
        # Identical requests racing through many workers: whoever is not
        # the leader (or a pure cache hit after the first completion)
        # must be accounted as coalesced or batched.
        requests = [{"op": "attribute", "query": QUERY_B, "id": i}
                    for i in range(12)]
        frontend, responses = _run_concurrent(service, requests, workers=6,
                                              batch_max=1)
        assert all(r["ok"] for r in responses.values())
        assert service.stats_counters.compilations == 1
        # The counter only covers requests that *waited* on the leader
        # (late arrivals hit the warm cache without coalescing), so it
        # is workload-dependent -- but the shared counter and the
        # front-end's own view must agree.
        assert (service.stats_counters.coalesced_requests
                == frontend.stats()["coalesced"])

    def test_no_coalesce_recomputes(self, database):
        service = AttributionService(database)
        barrier = threading.Barrier(4)
        frontend = ServingFrontend(
            service, FrontendConfig(workers=4, coalesce=False, batch_max=1))
        responses = []
        lock = threading.Lock()

        def client():
            barrier.wait()
            response = frontend.submit({"op": "attribute",
                                        "query": QUERY_B})
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        frontend.close()
        assert all(r["ok"] for r in responses)
        assert service.stats_counters.coalesced_requests == 0
        # Without coalescing, racing identical requests may (and with 4
        # workers virtually always do) compute redundantly -- the
        # baseline the coalescing path exists to beat.  Results stay
        # identical either way.
        assert service.stats_counters.compilations >= 1
        first = _fractions(responses[0])
        assert all(_fractions(r) == first for r in responses[1:])


class TestResponseDelivery:
    def test_every_request_gets_exactly_one_response(self, database):
        service = AttributionService(database)
        requests = []
        for i in range(40):
            kind = i % 4
            if kind == 0:
                requests.append({"op": "attribute", "query": QUERY_A,
                                 "id": i})
            elif kind == 1:
                requests.append({"op": "rank", "query": QUERY_A, "id": i})
            elif kind == 2:
                requests.append({"op": "topk", "query": QUERY_B, "k": 1,
                                 "id": i})
            else:
                requests.append({"op": "attribute", "query": QUERY_A_ISO,
                                 "id": i})
        _, responses = _run_concurrent(service, requests, workers=8)
        assert sorted(responses) == list(range(40))
        assert all(r["ok"] for r in responses.values())
        assert all(responses[i]["id"] == i for i in responses)

    def test_jsonl_concurrent_preserves_input_order(self, database):
        service = AttributionService(database)
        lines = [json.dumps({"op": "attribute",
                             "query": (QUERY_A, QUERY_A_ISO)[i % 2],
                             "id": i})
                 for i in range(12)]
        import io
        output = io.StringIO()
        assert serve_jsonl_concurrent(service, lines, output,
                                      FrontendConfig(workers=4)) is True
        rows = [json.loads(line) for line in output.getvalue().splitlines()]
        assert [row["id"] for row in rows] == list(range(12))

    def test_batching_disabled_still_serves_everything(self, database):
        service = AttributionService(database)
        requests = [{"op": "attribute", "query": QUERY_A, "id": i}
                    for i in range(10)]
        frontend, responses = _run_concurrent(service, requests,
                                              workers=2, batch_max=1)
        assert len(responses) == 10
        assert frontend.stats()["batches"] == 0

    def test_jsonl_streams_responses_before_eof(self, database):
        """Responses must be emitted as they finish, not buffered until
        the input is exhausted -- an interactive client sends its next
        line only after seeing the previous answer."""
        service = AttributionService(database)
        output = io.StringIO()

        def interactive_lines():
            yield json.dumps({"op": "attribute", "query": QUERY_A,
                              "id": 0}) + "\n"
            deadline = time.monotonic() + 20
            while "\n" not in output.getvalue():
                assert time.monotonic() < deadline, (
                    "no response streamed before the next input line")
                time.sleep(0.01)
            yield json.dumps({"op": "attribute", "query": QUERY_B,
                              "id": 1}) + "\n"

        assert serve_jsonl_concurrent(service, interactive_lines(), output,
                                      FrontendConfig(workers=2)) is True
        rows = [json.loads(line) for line in output.getvalue().splitlines()]
        assert [row["id"] for row in rows] == [0, 1]
        assert all(row["ok"] for row in rows)

    def test_close_is_idempotent_and_flushes(self, database):
        service = AttributionService(database)
        frontend = ServingFrontend(service, FrontendConfig(workers=2))
        assert frontend.submit({"op": "attribute", "query": QUERY_A})["ok"]
        frontend.close()
        frontend.close()
        with pytest.raises(RuntimeError):
            frontend.submit({"op": "attribute", "query": QUERY_A})


class TestLeftoverServing:
    def test_crossed_leftovers_do_not_deadlock(self, database, monkeypatch):
        """Two leaders whose batch-drained leftovers follow *each other's*
        coalesce keys must both complete.

        Regression: leftovers used to be served before the leader's
        single-flight key was released, so two workers whose leftovers
        waited on each other's still-held keys hung forever.  The
        orchestration pins exactly that interleaving: both leaders are
        held at a barrier inside their computations, guaranteeing both
        keys are registered before either leftover is served.
        """
        service = AttributionService(database)
        original_rank = Engine.rank
        original_attribute = Engine.attribute
        rank_count = itertools.count()
        rank_started = [threading.Event(), threading.Event()]
        rank_release = [threading.Event(), threading.Event()]
        attribute_started = threading.Semaphore(0)
        compute_barrier = threading.Barrier(2, timeout=30)

        def gated_rank(engine, query, db, **kwargs):
            index = next(rank_count)
            rank_started[index].set()
            assert rank_release[index].wait(timeout=30)
            return original_rank(engine, query, db, **kwargs)

        def synced_attribute(engine, query, db, **kwargs):
            attribute_started.release()
            compute_barrier.wait()
            return original_attribute(engine, query, db, **kwargs)

        monkeypatch.setattr(Engine, "rank", gated_rank)
        monkeypatch.setattr(Engine, "attribute", synced_attribute)
        frontend = ServingFrontend(
            service, FrontendConfig(workers=2, max_queue=8, coalesce=True,
                                    batch_max=8))
        try:
            # Occupy both workers with gated rank computations so the
            # four attribute tickets below are queued, not picked up.
            warmup_a = frontend.submit_nowait({"op": "rank",
                                               "query": QUERY_A})
            assert rank_started[0].wait(timeout=30)
            warmup_b = frontend.submit_nowait({"op": "rank",
                                               "query": QUERY_B})
            assert rank_started[1].wait(timeout=30)

            # Queue order: leader 1 (exact A) drains leftover (approx B);
            # leader 2 (approx B) drains leftover (exact A).  Each
            # leftover coalesces with the *other* worker's leader key.
            tickets = [frontend.submit_nowait(request) for request in (
                {"op": "attribute", "query": QUERY_A, "method": "exact",
                 "id": "leader-1"},
                {"op": "attribute", "query": QUERY_B,
                 "method": "approximate", "id": "leftover-1"},
                {"op": "attribute", "query": QUERY_B,
                 "method": "approximate", "id": "leader-2"},
                {"op": "attribute", "query": QUERY_A, "method": "exact",
                 "id": "leftover-2"},
            )]

            # Release worker 1 alone: it takes leader-1 and drains
            # leftover-1 before worker 2 can steal it, then blocks at the
            # barrier inside its computation (key registered, held).
            rank_release[0].set()
            assert warmup_a.result(timeout=30)["ok"] is True
            assert attribute_started.acquire(timeout=30)
            # Release worker 2: it takes leader-2, drains leftover-2, and
            # joins the barrier -- both keys held, both leftovers pending.
            rank_release[1].set()
            assert warmup_b.result(timeout=30)["ok"] is True

            responses = [ticket.result(timeout=30) for ticket in tickets]
            assert all(response["ok"] is True for response in responses)
            assert sorted(response["id"] for response in responses) == [
                "leader-1", "leader-2", "leftover-1", "leftover-2"]
        finally:
            rank_release[0].set()
            rank_release[1].set()
            frontend.close()


class TestBatchEvaluationSharing:
    def test_batch_accounting_does_not_reevaluate_queries(
            self, database, monkeypatch):
        """Micro-batch coalesce accounting must not run query evaluation
        per member: the engine evaluates each batched query exactly once
        in attribute_many, and the front-end's duplicate counting rides
        on request identity instead of a second ``lineage_of_answers``
        pass per batchmate."""
        service = AttributionService(database)
        evaluations = []
        original_evaluate = serve_module.lineage_of_answers

        def counting_evaluate(query, db, **kwargs):
            evaluations.append(query)
            return original_evaluate(query, db, **kwargs)

        monkeypatch.setattr(serve_module, "lineage_of_answers",
                            counting_evaluate)

        release = threading.Event()
        started = threading.Event()
        original_attribute = Engine.attribute

        def gated_attribute(engine, query, db, **kwargs):
            started.set()
            assert release.wait(timeout=30)
            return original_attribute(engine, query, db, **kwargs)

        monkeypatch.setattr(Engine, "attribute", gated_attribute)
        frontend = ServingFrontend(
            service, FrontendConfig(workers=1, max_queue=8, coalesce=True,
                                    batch_max=8))
        try:
            blocker = frontend.submit_nowait({"op": "attribute",
                                              "query": QUERY_B})
            assert started.wait(timeout=30)
            batched = [frontend.submit_nowait(
                {"op": "attribute", "query": QUERY_A, "id": i})
                for i in range(3)]
            release.set()
            assert blocker.result(timeout=30)["ok"] is True
            responses = [ticket.result(timeout=30) for ticket in batched]
            assert all(response["ok"] is True for response in responses)
            report = frontend.stats()
            assert report["batches"] == 1
            assert report["batched_requests"] == 3
            # Textually identical batchmates are counted as coalesced.
            assert report["coalesced"] == 2
            # Exactly two front-end evaluations happened: the blocker's
            # coalesce key and the batch leader's -- none for accounting.
            assert len(evaluations) == 2
        finally:
            release.set()
            frontend.close()
