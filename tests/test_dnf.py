"""Tests for the positive DNF representation."""

import pytest

from repro.boolean.dnf import DNF, ConstantTrue, make_clause


class TestConstruction:
    def test_basic_construction(self):
        function = DNF([[0, 1], [2]])
        assert function.num_clauses() == 2
        assert function.variables == frozenset({0, 1, 2})
        assert function.domain == frozenset({0, 1, 2})

    def test_domain_superset(self):
        function = DNF([[0]], domain=[0, 1, 2])
        assert function.domain == frozenset({0, 1, 2})
        assert function.variables == frozenset({0})
        assert function.num_variables() == 3

    def test_domain_must_cover_clauses(self):
        with pytest.raises(ValueError):
            DNF([[0, 1]], domain=[0])

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            DNF([[]])
        with pytest.raises(ValueError):
            make_clause([])

    def test_false_function(self):
        false = DNF.false([0, 1])
        assert false.is_false()
        assert false.num_variables() == 2
        assert false.num_clauses() == 0

    def test_literal_constructor(self):
        lit = DNF.literal(3)
        assert lit.is_single_literal()
        assert lit.single_literal() == 3
        wide = DNF.literal(3, domain=[3, 4])
        assert wide.domain == frozenset({3, 4})

    def test_single_literal_detection(self):
        assert DNF([[5]]).is_single_literal()
        assert not DNF([[5, 6]]).is_single_literal()
        assert not DNF([[5], [6]]).is_single_literal()
        with pytest.raises(ValueError):
            DNF([[5, 6]]).single_literal()

    def test_duplicate_clauses_collapse(self):
        function = DNF([[0, 1], [1, 0]])
        assert function.num_clauses() == 1


class TestEqualityAndDisplay:
    def test_equality_includes_domain(self):
        assert DNF([[0]]) == DNF([[0]])
        assert DNF([[0]]) != DNF([[0]], domain=[0, 1])

    def test_hashable(self):
        functions = {DNF([[0]]), DNF([[0]]), DNF([[1]])}
        assert len(functions) == 2

    def test_repr_mentions_silent_variables(self):
        assert "silent" in repr(DNF([[0]], domain=[0, 1]))

    def test_len_and_iter(self):
        function = DNF([[0, 1], [2]])
        assert len(function) == 2
        assert set(function) == {frozenset({0, 1}), frozenset({2})}


class TestSemantics:
    def test_evaluate(self):
        function = DNF([[0, 1], [2]])
        assert function.evaluate({0, 1})
        assert function.evaluate({2})
        assert not function.evaluate({0})
        assert not function.evaluate(set())

    def test_evaluate_false(self):
        assert not DNF.false([0]).evaluate({0})

    def test_cofactor_true_removes_variable(self):
        function = DNF([[0, 1], [0, 2]])
        positive = function.cofactor(0, True)
        assert positive == DNF([[1], [2]])
        assert 0 not in positive.domain

    def test_cofactor_false_drops_clauses(self):
        function = DNF([[0, 1], [2]])
        negative = function.cofactor(0, False)
        assert negative == DNF([[2]], domain=[1, 2])

    def test_cofactor_true_constant(self):
        function = DNF([[0], [1, 2]])
        with pytest.raises(ConstantTrue) as info:
            function.cofactor(0, True)
        assert info.value.domain == frozenset({1, 2})

    def test_cofactor_preserves_silent_domain(self):
        # Example 13: phi[x := 0] = u is still over three variables.
        function = DNF([[0, 1], [0, 2], [3]])
        negative = function.cofactor(0, False)
        assert negative.domain == frozenset({1, 2, 3})
        assert negative.variables == frozenset({3})


class TestStructureHelpers:
    def test_absorb(self):
        function = DNF([[0], [0, 1], [1, 2]])
        absorbed = function.absorb()
        assert absorbed.clauses == frozenset({frozenset({0}), frozenset({1, 2})})
        assert absorbed.domain == function.domain

    def test_absorb_noop_returns_same_object(self):
        function = DNF([[0, 1], [2]])
        assert function.absorb() is function

    def test_common_variables(self):
        assert DNF([[0, 1], [0, 2]]).common_variables() == frozenset({0})
        assert DNF([[0, 1], [2]]).common_variables() == frozenset()

    def test_variable_frequencies(self):
        function = DNF([[0, 1], [0, 2], [0, 1, 3]])
        assert function.variable_frequencies() == {0: 3, 1: 2, 2: 1, 3: 1}

    def test_union_and_conjoin(self):
        left = DNF([[0]])
        right = DNF([[1]])
        assert left.union(right) == DNF([[0], [1]])
        assert left.conjoin(right) == DNF([[0, 1]])

    def test_conjoin_with_false(self):
        left = DNF([[0]])
        false = DNF.false([1])
        assert left.conjoin(false).is_false()
        assert left.conjoin(false).domain == frozenset({0, 1})

    def test_size_counts_literal_occurrences(self):
        assert DNF([[0, 1], [0, 2, 3]]).size() == 5

    def test_sorted_clauses_deterministic(self):
        function = DNF([[2, 1], [0]])
        assert function.sorted_clauses() == ((0,), (1, 2))

    def test_with_domain_and_restricted_domain(self):
        function = DNF([[0]], domain=[0, 1])
        assert function.restricted_domain().domain == frozenset({0})
        assert function.with_domain([0, 1, 2]).domain == frozenset({0, 1, 2})

    def test_contains_variable(self):
        function = DNF([[0]], domain=[0, 1])
        assert function.contains_variable(0)
        assert not function.contains_variable(1)
