"""Execute the Python code blocks of README.md and docs/*.md.

Documentation that cannot run is documentation that rots: every fenced
``python`` block in the README and in ``docs/API.md`` is executed here,
doctest-style.  Blocks within one file run sequentially in a single
shared namespace, so later snippets may build on names (``db``,
``query``, ``engine``) introduced by earlier ones -- exactly how a
reader would paste them into one session.  ``bash`` blocks and other
languages are ignored.

The CI docs job runs this module on its own; it is also part of the
regular test suite so documentation breaks fail locally first.
"""

import os
import re

import pytest

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Documentation files whose ``python`` blocks must execute.
DOCUMENTS = ("README.md", os.path.join("docs", "API.md"))

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return _FENCE.findall(text)


@pytest.mark.parametrize("document", DOCUMENTS)
def test_document_snippets_execute(document):
    path = os.path.join(_ROOT, document)
    blocks = _python_blocks(path)
    assert blocks, f"{document} has no ```python blocks -- wrong path?"
    namespace = {"__name__": f"docs_snippet::{document}"}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"{document}[block {index}]", "exec"),
                 namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{document} code block {index} failed "
                f"({type(error).__name__}: {error}):\n{block}"
            )


def test_readme_mentions_all_examples():
    """Every example script is linked from the README's examples section."""
    with open(os.path.join(_ROOT, "README.md"), encoding="utf-8") as handle:
        readme = handle.read()
    examples_dir = os.path.join(_ROOT, "examples")
    for name in sorted(os.listdir(examples_dir)):
        if name.endswith(".py"):
            assert f"examples/{name}" in readme, (
                f"examples/{name} is not mentioned in README.md"
            )


def test_docs_cross_links_resolve():
    """Relative markdown links between the docs actually exist."""
    link = re.compile(r"\]\((?!https?://|#)([^)]+?)(?:#[^)]*)?\)")
    for document in ("README.md", os.path.join("docs", "API.md"),
                     os.path.join("docs", "ARCHITECTURE.md"),
                     os.path.join("docs", "PAPER_MAP.md")):
        path = os.path.join(_ROOT, document)
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        base = os.path.dirname(path)
        for target in link.findall(text):
            resolved = os.path.normpath(os.path.join(base, target))
            assert os.path.exists(resolved), (
                f"{document} links to missing file {target}"
            )
