"""Tests for CNF conversion (the Sig22 pipeline's detour)."""

import pytest

from repro.boolean.assignments import count_models, enumerate_assignments
from repro.boolean.cnf import CNF, CNFTooLarge, cnf_to_dnf, dnf_to_cnf
from repro.boolean.dnf import DNF
from repro.workloads.generators import random_positive_dnf


class TestCNF:
    def test_construction_and_accessors(self):
        cnf = CNF([[0, 1], [2]])
        assert cnf.num_clauses() == 2
        assert cnf.size() == 3
        assert cnf.domain == frozenset({0, 1, 2})

    def test_empty_clause_rejected(self):
        with pytest.raises(ValueError):
            CNF([[]])

    def test_domain_must_cover(self):
        with pytest.raises(ValueError):
            CNF([[0, 1]], domain=[0])

    def test_evaluate(self):
        cnf = CNF([[0, 1], [2]])
        assert cnf.evaluate([0, 2])
        assert not cnf.evaluate([0])


class TestConversion:
    def test_simple_conversion(self):
        function = DNF([[0, 1]])
        cnf = dnf_to_cnf(function)
        assert cnf.clauses == frozenset({frozenset({0}), frozenset({1})})

    def test_or_of_literals(self):
        function = DNF([[0], [1]])
        cnf = dnf_to_cnf(function)
        assert cnf.clauses == frozenset({frozenset({0, 1})})

    def test_equivalence_on_random_functions(self, rng):
        for _ in range(25):
            function = random_positive_dnf(rng, rng.randint(2, 6),
                                           rng.randint(1, 5), (1, 3))
            cnf = dnf_to_cnf(function)
            for assignment in enumerate_assignments(function.domain):
                assert function.evaluate(assignment) == cnf.evaluate(assignment)

    def test_preserves_domain(self):
        function = DNF([[0]], domain=[0, 1])
        assert dnf_to_cnf(function).domain == frozenset({0, 1})

    def test_false_rejected(self):
        with pytest.raises(ValueError):
            dnf_to_cnf(DNF.false([0]))

    def test_size_cap(self):
        # An iDNF of 5 disjoint two-variable clauses distributes into 2^5
        # CNF clauses, none of which subsume each other.
        clauses = [(2 * i, 2 * i + 1) for i in range(5)]
        function = DNF(clauses)
        with pytest.raises(CNFTooLarge):
            dnf_to_cnf(function, max_clauses=20)
        assert dnf_to_cnf(function, max_clauses=100).num_clauses() == 32

    def test_roundtrip_model_count(self, rng):
        for _ in range(10):
            function = random_positive_dnf(rng, rng.randint(2, 5),
                                           rng.randint(1, 4), (1, 3))
            cnf = dnf_to_cnf(function)
            back = cnf_to_dnf(cnf)
            assert count_models(back) == count_models(function)
