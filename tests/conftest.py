"""Shared pytest fixtures and hypothesis strategies."""

from __future__ import annotations

import os
import random
import sys

# Allow running the tests from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest

from repro.boolean.dnf import DNF


@pytest.fixture(autouse=True)
def _no_ambient_fault_plan():
    """Keep fault plans test-local.

    ``Engine(EngineConfig(fault_plan=...))`` installs the plan as
    process-ambient state (so forked pool workers inherit it); without
    this guard one test's plan would keep firing in every later test.
    """
    from repro.reliability import faults

    faults.clear()
    yield
    faults.clear()


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random generator for tests."""
    return random.Random(12345)


@pytest.fixture
def example9_dnf() -> DNF:
    """The function of Example 9/11: (x0 & x1) | (x0 & x2)."""
    return DNF([[0, 1], [0, 2]])


@pytest.fixture
def example13_dnf() -> DNF:
    """The function of Example 13: (x0 & x1) | (x0 & x2) | x3."""
    return DNF([[0, 1], [0, 2], [3]])


