"""Shared pytest fixtures and hypothesis strategies."""

from __future__ import annotations

import os
import random
import sys

# Allow running the tests from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest
from hypothesis import strategies as st

from repro.boolean.dnf import DNF


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random generator for tests."""
    return random.Random(12345)


@pytest.fixture
def example9_dnf() -> DNF:
    """The function of Example 9/11: (x0 & x1) | (x0 & x2)."""
    return DNF([[0, 1], [0, 2]])


@pytest.fixture
def example13_dnf() -> DNF:
    """The function of Example 13: (x0 & x1) | (x0 & x2) | x3."""
    return DNF([[0, 1], [0, 2], [3]])


def small_dnfs(max_variables: int = 7, max_clauses: int = 6) -> st.SearchStrategy[DNF]:
    """Hypothesis strategy for small positive DNFs (brute-force checkable)."""

    @st.composite
    def build(draw) -> DNF:
        num_variables = draw(st.integers(min_value=1, max_value=max_variables))
        num_clauses = draw(st.integers(min_value=1, max_value=max_clauses))
        variables = list(range(num_variables))
        clauses = []
        for _ in range(num_clauses):
            width = draw(st.integers(min_value=1,
                                     max_value=min(3, num_variables)))
            clause = draw(st.permutations(variables))[:width]
            clauses.append(tuple(clause))
        extra_domain = draw(st.integers(min_value=0, max_value=2))
        domain = list(range(num_variables + extra_domain))
        return DNF(clauses, domain=domain)

    return build()
