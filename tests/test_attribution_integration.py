"""End-to-end tests: query + database -> attribution, ranking, top-k."""

from fractions import Fraction

import pytest

from repro import (
    Database,
    attribute_facts,
    parse_query,
    rank_facts,
    topk_facts,
)
from repro.core.attribution import AttributionResult
from repro.db.reductions import appendix_d_database, appendix_d_query
from repro.workloads import imdb


def _example6_setup():
    database = Database()
    r = database.add_fact("R", (1, 2, 3))
    s1 = database.add_fact("S", (1, 2, 4))
    s2 = database.add_fact("S", (1, 2, 5))
    t = database.add_fact("T", (1, 6))
    query = parse_query("Q() :- R(X, Y, Z), S(X, Y, V), T(X, U)")
    return database, query, r, s1, s2, t


class TestAttributeFacts:
    def test_exact_attribution_example6(self):
        database, query, r, s1, s2, t = _example6_setup()
        results = attribute_facts(query, database, method="exact")
        assert len(results) == 1
        result = results[0]
        assert isinstance(result, AttributionResult)
        assert result.score_of(r) == result.score_of(t)
        assert result.score_of(s1) == result.score_of(s2) == 1
        assert result.score_of(r) > result.score_of(s1)
        # Top facts come first.
        assert result.attributions[0].fact in (r, t)

    def test_approximate_attribution_contains_bounds(self):
        database, query, *_ = _example6_setup()
        results = attribute_facts(query, database, method="approximate",
                                  epsilon=0.1)
        for attribution in results[0].attributions:
            assert attribution.lower is not None
            assert attribution.lower <= attribution.value <= attribution.upper

    def test_shapley_attribution(self):
        database, query, r, s1, *_ = _example6_setup()
        results = attribute_facts(query, database, method="shapley")
        values = results[0]
        assert values.score_of(r) > values.score_of(s1)
        total = sum(a.value for a in values.attributions)
        assert total == 1

    def test_unknown_method(self):
        database, query, *_ = _example6_setup()
        with pytest.raises(ValueError):
            attribute_facts(query, database, method="banzhaf-ish")

    def test_non_boolean_query_per_answer_attribution(self):
        database = Database()
        database.add_fact("Cast", ("p1", "m1"))
        database.add_fact("Cast", ("p2", "m1"))
        database.add_fact("Cast", ("p1", "m2"))
        database.add_fact("Movie", ("m1", 2000))
        database.add_fact("Movie", ("m2", 2010))
        query = parse_query("Q(M) :- Movie(M, Y), Cast(P, M)")
        results = attribute_facts(query, database)
        assert {r.answer for r in results} == {("m1",), ("m2",)}
        m1 = [r for r in results if r.answer == ("m1",)][0]
        movie_fact = [a for a in m1.attributions
                      if a.fact.relation == "Movie"][0]
        cast_scores = [a.value for a in m1.attributions
                       if a.fact.relation == "Cast"]
        assert movie_fact.value >= max(cast_scores)

    def test_appendix_d_shapley_vs_banzhaf_disagree(self):
        database, r_a1, r_a2 = appendix_d_database()
        query = appendix_d_query()
        banzhaf = attribute_facts(query, database, method="exact")[0]
        shapley = attribute_facts(query, database, method="shapley")[0]
        assert banzhaf.score_of(r_a1) > banzhaf.score_of(r_a2)
        assert shapley.score_of(r_a1) < shapley.score_of(r_a2)


class TestRankingAndTopK:
    def test_rank_facts(self):
        database, query, r, s1, s2, t = _example6_setup()
        rankings = rank_facts(query, database, epsilon=None)
        assert len(rankings) == 1
        _, ranked = rankings[0]
        facts_in_order = [fact for fact, _ in ranked]
        assert set(facts_in_order[:2]) == {r, t}

    def test_topk_facts(self):
        database, query, r, s1, s2, t = _example6_setup()
        results = topk_facts(query, database, k=2, epsilon=0.05)
        _, top = results[0]
        assert len(top) == 2
        assert {fact for fact, _ in top} == {r, t}

    def test_quickstart_snippet_runs(self):
        # The snippet from the package docstring / README quickstart.
        db = Database()
        db.add_fact("R", ("a",))
        db.add_fact("S", ("a", "b"))
        db.add_fact("T", ("b",))
        query = parse_query("Q() :- R(X), S(X, Y), T(Y)")
        results = attribute_facts(query, db)
        assert len(results) == 1
        assert all(a.value == 1 for a in results[0].attributions)


class TestWorkloadIntegration:
    def test_imdb_pipeline_end_to_end(self):
        database = imdb.generate_database(seed=1, scale=0.5)
        name, query = imdb.queries()[1]
        results = attribute_facts(query, database, method="approximate",
                                  epsilon=0.2)
        assert results
        for result in results:
            assert result.attributions
            values = [a.value for a in result.attributions]
            assert values == sorted(values, reverse=True)
            assert all(value >= 0 for value in values)
