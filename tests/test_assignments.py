"""Tests for assignments, brute-force counting and critical sets."""

from repro.boolean.assignments import (
    banzhaf_brute_force,
    count_models,
    count_non_models,
    critical_set_counts,
    enumerate_assignments,
    enumerate_models,
    evaluate_dnf,
)
from repro.boolean.dnf import DNF

import pytest


class TestEnumeration:
    def test_enumerate_assignments_count(self):
        assert len(list(enumerate_assignments([0, 1, 2]))) == 8
        assert list(enumerate_assignments([])) == [frozenset()]

    def test_enumerate_models(self):
        function = DNF([[0, 1]])
        assert set(enumerate_models(function)) == {frozenset({0, 1})}

    def test_enumerate_models_with_silent_variable(self):
        function = DNF([[0]], domain=[0, 1])
        assert set(enumerate_models(function)) == {
            frozenset({0}), frozenset({0, 1})
        }


class TestCounting:
    def test_count_models_or(self):
        assert count_models(DNF([[0], [1]])) == 3

    def test_count_models_and(self):
        assert count_models(DNF([[0, 1]])) == 1

    def test_count_models_false(self):
        assert count_models(DNF.false([0, 1])) == 0

    def test_count_non_models(self):
        function = DNF([[0], [1]])
        assert count_non_models(function) == 1

    def test_example13_counts(self):
        # phi = (x & y) | (x & z) | u has 11 models over four variables.
        function = DNF([[0, 1], [0, 2], [3]])
        assert count_models(function) == 11

    def test_silent_variables_double_counts(self):
        narrow = DNF([[0]])
        wide = DNF([[0]], domain=[0, 1])
        assert count_models(wide) == 2 * count_models(narrow)


class TestEvaluation:
    def test_evaluate_dnf(self):
        function = DNF([[0, 1], [2]])
        assert evaluate_dnf(function, [0, 1])
        assert evaluate_dnf(function, [2, 0])
        assert not evaluate_dnf(function, [1])


class TestBanzhafBruteForce:
    def test_example7_values(self):
        # Lineage of Example 6: two clauses sharing the R and T facts.
        # Note: the paper's Example 7 reports Banzhaf(R(1,2,3)) = 2, but by
        # Definition 1 the count of models of phi[v(R):=1] over the three
        # remaining variables is 3 ({S1,T}, {S2,T}, {S1,S2,T}), so the value
        # is 3; the S facts indeed have value 1 as reported.
        function = DNF([[0, 1, 3], [0, 2, 3]])
        assert banzhaf_brute_force(function, 0) == 3
        assert banzhaf_brute_force(function, 1) == 1
        assert banzhaf_brute_force(function, 2) == 1
        assert banzhaf_brute_force(function, 3) == 3

    def test_example9_value(self):
        function = DNF([[0, 1], [0, 2]])
        assert banzhaf_brute_force(function, 0) == 3
        assert banzhaf_brute_force(function, 1) == 1

    def test_silent_variable_has_zero_banzhaf(self):
        function = DNF([[0]], domain=[0, 1])
        assert banzhaf_brute_force(function, 1) == 0

    def test_unknown_variable_raises(self):
        with pytest.raises(ValueError):
            banzhaf_brute_force(DNF([[0]]), 5)

    def test_single_literal(self):
        assert banzhaf_brute_force(DNF([[0]]), 0) == 1


class TestCriticalSets:
    def test_counts_sum_to_banzhaf(self):
        function = DNF([[0, 1], [0, 2], [3]])
        for variable in function.variables:
            counts = critical_set_counts(function, variable)
            assert sum(counts) == banzhaf_brute_force(function, variable)

    def test_counts_for_or_of_two(self):
        function = DNF([[0], [1]])
        # x0 is critical exactly for the empty set.
        assert critical_set_counts(function, 0) == [1, 0]

    def test_unknown_variable_raises(self):
        with pytest.raises(ValueError):
            critical_set_counts(DNF([[0]]), 7)
