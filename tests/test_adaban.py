"""Tests for AdaBan (anytime deterministic approximation)."""

import pytest

from repro.baselines.brute_force import banzhaf_all_brute_force
from repro.boolean.assignments import banzhaf_brute_force
from repro.boolean.dnf import DNF
from repro.core.adaban import (
    ApproximationTimeout,
    adaban,
    adaban_all,
    adaban_trace,
)
from repro.workloads.generators import bipartite_lineage, random_positive_dnf


class TestSingleVariable:
    def test_result_contains_exact_value(self, rng):
        for _ in range(25):
            function = random_positive_dnf(rng, rng.randint(2, 7),
                                           rng.randint(2, 7), (1, 3))
            variable = sorted(function.variables)[0]
            exact = banzhaf_brute_force(function, variable)
            result = adaban(function, variable, epsilon=0.2)
            assert result.lower <= exact <= result.upper

    def test_epsilon_zero_gives_exact_value(self, rng):
        for _ in range(15):
            function = random_positive_dnf(rng, rng.randint(2, 6),
                                           rng.randint(2, 6), (1, 3))
            variable = sorted(function.variables)[-1]
            result = adaban(function, variable, epsilon=0.0)
            assert result.interval.is_point()
            assert result.lower == banzhaf_brute_force(function, variable)

    def test_estimate_is_relative_approximation(self, rng):
        for epsilon in (0.5, 0.1):
            function = random_positive_dnf(rng, 8, 10, (2, 3))
            variable = sorted(function.variables)[0]
            exact = banzhaf_brute_force(function, variable)
            result = adaban(function, variable, epsilon=epsilon)
            assert result.converged
            assert (1 - epsilon) * exact <= result.estimate <= (1 + epsilon) * exact

    def test_variable_not_occurring(self):
        function = DNF([[0]], domain=[0, 1])
        result = adaban(function, 1, epsilon=0.1)
        assert result.interval.is_point()
        assert result.lower == 0

    def test_max_steps_timeout(self):
        function = bipartite_lineage(__import__("random").Random(3), 6, 6, 0.5)
        with pytest.raises(ApproximationTimeout):
            adaban(function, sorted(function.variables)[0], epsilon=0.0,
                   max_steps=1)

    def test_larger_epsilon_needs_no_more_steps(self, rng):
        function = random_positive_dnf(rng, 9, 11, (2, 3))
        variable = sorted(function.variables)[0]
        loose = adaban(function, variable, epsilon=0.5)
        tight = adaban(function, variable, epsilon=0.05)
        assert loose.refinement_steps <= tight.refinement_steps


class TestAllVariables:
    def test_all_intervals_contain_truth(self, rng):
        for _ in range(15):
            function = random_positive_dnf(rng, rng.randint(2, 6),
                                           rng.randint(2, 6), (1, 3))
            exact = banzhaf_all_brute_force(function)
            results = adaban_all(function, epsilon=0.3)
            assert set(results) == function.variables
            for variable, result in results.items():
                assert result.lower <= exact[variable] <= result.upper

    def test_explicit_variable_subset(self, rng):
        function = random_positive_dnf(rng, 6, 6, (2, 3))
        subset = sorted(function.variables)[:2]
        results = adaban_all(function, epsilon=0.2, variables=subset)
        assert sorted(results) == subset

    def test_shared_tree_makes_later_variables_cheap(self, rng):
        function = random_positive_dnf(rng, 9, 12, (2, 3))
        results = adaban_all(function, epsilon=0.1)
        ordered = [results[v].refinement_steps for v in sorted(function.variables)]
        # The first variable does (almost) all the expansion work.
        assert ordered[0] >= max(ordered[1:])

    def test_timeout_raises(self):
        import random as _random
        function = bipartite_lineage(_random.Random(1), 10, 10, 0.5)
        with pytest.raises(ApproximationTimeout):
            adaban_all(function, epsilon=0.0, timeout_seconds=0.0)


class TestTrace:
    def test_trace_intervals_shrink(self, rng):
        function = random_positive_dnf(rng, 8, 10, (2, 3))
        variable = sorted(function.variables)[0]
        previous = None
        for _, interval in adaban_trace(function, variable):
            if previous is not None:
                assert interval.lower >= previous.lower
                assert interval.upper <= previous.upper
            previous = interval
        assert previous is not None and previous.is_point()
        assert previous.lower == banzhaf_brute_force(function, variable)

    def test_trace_respects_max_steps(self, rng):
        function = random_positive_dnf(rng, 8, 10, (2, 3))
        variable = sorted(function.variables)[0]
        points = list(adaban_trace(function, variable, max_steps=3))
        assert 1 <= len(points) <= 3
