"""Tests for the experiment harness: metrics, runner, tables and figures."""

import random

import pytest

from repro.experiments.figures import (
    adaban_error_is_monotone,
    figure4_size_breakdown,
    figure5_convergence,
)
from repro.experiments.metrics import (
    ground_truth_topk,
    kendall_tau_distance,
    l1_normalized_error,
    percentile,
    precision_at_k,
    summarize_times,
)
from repro.experiments.report import format_value, render_mapping_table, render_series, render_table
from repro.experiments.runner import (
    ALGORITHMS,
    ExperimentConfig,
    exact_ground_truth,
    run_algorithm,
    run_workloads,
    topk_from_values,
    topk_with_cnf_proxy,
    topk_with_ichiban,
)
from repro.experiments import tables
from repro.workloads.generators import LineageInstance, random_positive_dnf
from repro.workloads.suite import Workload


@pytest.fixture(scope="module")
def tiny_workloads():
    rng = random.Random(77)
    instances = []
    for index in range(4):
        lineage = random_positive_dnf(rng, 5 + index, 5 + index, (2, 3))
        instances.append(LineageInstance("tiny", f"q{index % 2}", (index,), lineage))
    return [Workload(name="tiny", instances=tuple(instances))]


@pytest.fixture(scope="module")
def tiny_results(tiny_workloads):
    config = ExperimentConfig(timeout_seconds=5.0)
    return run_workloads(tiny_workloads, ["exaban", "sig22", "adaban", "mc"],
                         config)


class TestMetrics:
    def test_percentile(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == 2.5
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile(values, 2.0)

    def test_summarize_times(self):
        summary = summarize_times([1.0, 2.0, 3.0])
        assert summary["mean"] == 2.0
        assert summary["max"] == 3.0
        empty = summarize_times([])
        assert empty["mean"] != empty["mean"]  # NaN

    def test_l1_error_zero_for_identical(self):
        assert l1_normalized_error({0: 3, 1: 1}, {0: 3, 1: 1}) == 0.0

    def test_l1_error_scale_invariant(self):
        assert l1_normalized_error({0: 6, 1: 2}, {0: 3, 1: 1}) == 0.0

    def test_l1_error_missing_keys(self):
        assert l1_normalized_error({0: 1}, {0: 1, 1: 1}) == pytest.approx(1.0)

    def test_precision_at_k(self):
        exact = {0: 10, 1: 5, 2: 1}
        assert precision_at_k([0, 1], exact, 2) == 1.0
        assert precision_at_k([0, 2], exact, 2) == 0.5
        assert precision_at_k([], exact, 2) == 0.0

    def test_precision_counts_ties_generously(self):
        exact = {0: 5, 1: 5, 2: 5}
        assert precision_at_k([2], exact, 1) == 1.0

    def test_ground_truth_topk_with_ties(self):
        assert ground_truth_topk({0: 5, 1: 5, 2: 1}, 1) == {0, 1}
        with pytest.raises(ValueError):
            ground_truth_topk({0: 1}, 0)

    def test_kendall_tau(self):
        assert kendall_tau_distance([1, 2, 3], [1, 2, 3]) == 0.0
        assert kendall_tau_distance([1, 2, 3], [3, 2, 1]) == 1.0
        with pytest.raises(ValueError):
            kendall_tau_distance([1], [2])


class TestReport:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.000012) == "1.20e-05"
        assert format_value(float("nan")) == "-"
        assert format_value("text") == "text"

    def test_render_table(self):
        text = render_table(["a", "b"], [[1, 2.5], [3, 4.0]], title="T")
        assert "T" in text and "2.5" in text

    def test_render_mapping_table(self):
        text = render_mapping_table([{"a": 1, "b": 2}], ["a", "b"])
        assert "1" in text and "2" in text

    def test_render_series(self):
        text = render_series("s", [(0.1, 1.0), (0.2, 0.5)])
        assert "s" in text and "0.5" in text


class TestRunner:
    def test_algorithm_registry(self):
        assert set(ALGORITHMS) == {"adaban", "engine", "exaban", "mc",
                                   "sig22", "topk"}
        with pytest.raises(ValueError):
            run_algorithm("nope", None, ExperimentConfig())

    def test_all_algorithms_succeed_on_small_instance(self, rng):
        instance = LineageInstance("t", "q", (0,),
                                   random_positive_dnf(rng, 5, 4, (2, 3)))
        config = ExperimentConfig(timeout_seconds=5.0)
        exact = None
        for algorithm in ALGORITHMS:
            result = run_algorithm(algorithm, instance, config)
            assert result.success, result.failure_reason
            if algorithm == "exaban":
                exact = result.values
        assert exact is not None

    def test_failure_is_recorded_not_raised(self):
        rng = random.Random(0)
        instance = LineageInstance(
            "t", "q", (0,), random_positive_dnf(rng, 40, 60, (4, 6)))
        config = ExperimentConfig(timeout_seconds=0.05, max_shannon_steps=5)
        result = run_algorithm("exaban", instance, config)
        assert not result.success
        assert result.failure_reason

    def test_exact_ground_truth(self, rng):
        instance = LineageInstance("t", "q", (0,),
                                   random_positive_dnf(rng, 5, 4, (2, 3)))
        truth = exact_ground_truth(instance)
        assert truth is not None and set(truth) == instance.lineage.domain

    def test_topk_helpers(self, rng):
        instance = LineageInstance("t", "q", (0,),
                                   random_positive_dnf(rng, 6, 6, (2, 3)))
        config = ExperimentConfig(timeout_seconds=5.0)
        assert len(topk_with_ichiban(instance, 3, config)) == 3
        assert len(topk_with_cnf_proxy(instance, 3, config)) == 3
        assert topk_from_values({0: 5, 1: 9}, 1) == [1]

    def test_topk_with_ichiban_degrades_to_partial(self, rng):
        # A wide instance under a zero wall-clock budget cannot converge.
        # With allow_partial the intervals carried by IchiBanTimeout still
        # yield a best-effort top-k (before the fix the data was lost);
        # by default the failure stays None so the Table 8 precision
        # metric keeps aggregating converged runs only.
        instance = LineageInstance("t", "q", (0,),
                                   random_positive_dnf(rng, 24, 40, (3, 5)))
        config = ExperimentConfig(timeout_seconds=0.0)
        reported = topk_with_ichiban(instance, 3, config, allow_partial=True)
        assert reported is not None
        assert len(reported) == 3
        assert topk_with_ichiban(instance, 3, config) is None

    def test_topk_algorithm_entry(self, rng):
        from repro.experiments.runner import clear_engine_pool

        clear_engine_pool()
        instance = LineageInstance("t", "q", (0,),
                                   random_positive_dnf(rng, 6, 6, (2, 3)))
        config = ExperimentConfig(timeout_seconds=5.0)
        result = run_algorithm("topk", instance, config)
        assert result.success, result.failure_reason
        # Interval midpoints for every occurring variable, each interval
        # containing the exact value.
        assert set(result.values) == instance.lineage.variables
        exact = run_algorithm("exaban", instance, config).values
        from repro.experiments.runner import engine_for_config

        engine = engine_for_config(config, method="topk")
        (attribution,) = engine.attribute_lineages([instance.lineage])
        for variable, value in exact.items():
            lower, upper = attribution.bounds[variable]
            assert lower <= value <= upper
        clear_engine_pool()

    def test_run_workloads_shape(self, tiny_workloads, tiny_results):
        assert set(tiny_results) == {("tiny", a) for a in
                                     ("exaban", "sig22", "adaban", "mc")}
        for results in tiny_results.values():
            assert len(results) == len(tiny_workloads[0].instances)


class TestTables:
    def test_table1(self, tiny_workloads):
        rows = tables.table1_dataset_statistics(tiny_workloads)
        assert rows[0]["dataset"] == "tiny"
        assert rows[0]["queries"] == 2
        assert rows[0]["lineages"] == 4

    def test_table2(self, tiny_results):
        rows = tables.table2_success_rates(tiny_results,
                                           ["exaban", "sig22", "adaban", "mc"])
        assert len(rows) == 4
        exaban_row = [r for r in rows if r["algorithm"] == "exaban"][0]
        assert exaban_row["lineage_success_rate"] == 1.0
        assert exaban_row["query_success_rate"] == 1.0

    def test_table3_and_5_have_runtime_columns(self, tiny_results):
        for rows in (tables.table3_exact_runtime(tiny_results),
                     tables.table5_approx_runtime(tiny_results)):
            assert rows
            assert {"mean", "p50", "p95", "max"} <= set(rows[0])

    def test_table4_and_6_handle_no_failures(self, tiny_results):
        rows4 = tables.table4_exaban_when_sig22_fails(tiny_results)
        rows6 = tables.table6_adaban_when_exaban_fails(tiny_results)
        assert rows4[0]["sig22_failures"] == 0
        assert rows6[0]["exaban_failures"] == 0

    def test_table7_accuracy(self, tiny_results):
        rows = tables.table7_accuracy(tiny_results)
        adaban_rows = [r for r in rows if r["algorithm"] == "adaban"
                       and r["dataset"] == "tiny"]
        mc_rows = [r for r in rows if r["algorithm"] == "mc"
                   and r["dataset"] == "tiny"]
        # AdaBan's certified 0.1-error estimates are far more accurate than MC.
        assert adaban_rows[0]["mean"] <= mc_rows[0]["mean"]

    def test_table8_topk_precision(self, tiny_workloads):
        config = ExperimentConfig(timeout_seconds=5.0)
        rows = tables.table8_topk_precision(tiny_workloads, config,
                                            k_values=(3,))
        ichiban_row = [r for r in rows if r["algorithm"] == "ichiban"][0]
        assert ichiban_row["precision@3_mean"] == pytest.approx(1.0)

    def test_table9_topk_certain(self, tiny_workloads):
        config = ExperimentConfig(timeout_seconds=5.0)
        rows = tables.table9_topk_certain(tiny_workloads, config, k_values=(1,))
        assert rows[0]["success_rate"] == 1.0

    def test_appendix_d_rows(self):
        rows, summary = tables.appendix_d_rows()
        assert summary["banzhaf_prefers"] == "R(a1)"
        assert summary["shapley_prefers"] == "R(a2)"
        assert rows[2]["critical_R_a1"] == 9

    def test_instances_of(self, tiny_workloads):
        assert len(tables.instances_of(tiny_workloads)) == 4


class TestFigures:
    def test_figure4_bins(self, tiny_results):
        rows = figure4_size_breakdown(tiny_results[("tiny", "exaban")],
                                      group_by="variables")
        assert rows
        assert all(0.0 <= row.success_rate <= 1.0 for row in rows)
        with pytest.raises(ValueError):
            figure4_size_breakdown([], group_by="bogus")

    def test_figure5_trace(self, rng):
        instance = LineageInstance("t", "q", (0,),
                                   random_positive_dnf(rng, 7, 8, (2, 3)))
        trace = figure5_convergence(instance, mc_samples=200,
                                    config=ExperimentConfig(timeout_seconds=5.0))
        assert trace is not None
        assert trace.adaban and trace.monte_carlo
        assert adaban_error_is_monotone(trace)
        final_adaban, _ = trace.final_errors()
        assert final_adaban == pytest.approx(0.0, abs=1e-9)
