"""Tests for the warm-start serving loop (repro.engine.serve)."""

import io
import json
from fractions import Fraction

import pytest

from repro import Database
from repro.engine import EngineConfig
from repro.engine.serve import AttributionService, serve_jsonl
from repro.engine.store import DiskStore, MemoryStore


@pytest.fixture
def database():
    db = Database()
    for value in ("a", "b", "c"):
        db.add_fact("R", (value,))
    for row in (("a", 1), ("b", 1), ("c", 2)):
        db.add_fact("S", row)
    return db


QUERY = "Q(X) :- R(X), S(X, Y)"


class TestRequests:
    def test_attribute_request(self, database):
        service = AttributionService(database)
        response = service.submit({"op": "attribute", "query": QUERY})
        assert response["ok"] is True
        assert response["method"] == "auto"
        assert len(response["answers"]) == 3
        first = response["answers"][0]
        assert first["attributions"][0]["value"] == "1"
        assert first["attributions"][0]["float"] == 1.0

    def test_attribute_with_method_override(self, database):
        service = AttributionService(database)
        response = service.submit({"op": "attribute", "query": QUERY,
                                   "method": "shapley"})
        assert response["ok"] is True
        assert response["method"] == "shapley"

    def test_rank_and_topk_requests(self, database):
        service = AttributionService(database)
        ranked = service.submit({"op": "rank", "query": QUERY})
        assert ranked["ok"] is True
        assert all(len(answer["ranking"]) == 2
                   for answer in ranked["answers"])
        topped = service.submit({"op": "topk", "query": QUERY, "k": 1})
        assert topped["ok"] is True
        assert topped["k"] == 1
        assert all(len(answer["ranking"]) == 1
                   for answer in topped["answers"])

    def test_responses_are_json_serializable(self, database):
        service = AttributionService(database)
        for request in ({"op": "attribute", "query": QUERY},
                        {"op": "rank", "query": QUERY},
                        {"op": "topk", "query": QUERY, "k": 2}):
            json.dumps(service.submit(request))


class TestErrorHandling:
    def test_unknown_op(self, database):
        service = AttributionService(database)
        response = service.submit({"op": "explode", "query": QUERY})
        assert response["ok"] is False
        assert "unknown op" in response["error"]

    def test_missing_query(self, database):
        response = AttributionService(database).submit({"op": "attribute"})
        assert response["ok"] is False
        assert "query" in response["error"]

    def test_unparseable_query(self, database):
        response = AttributionService(database).submit(
            {"op": "attribute", "query": "not a query"})
        assert response["ok"] is False
        assert "unparseable query" in response["error"]

    def test_topk_needs_integer_k(self, database):
        service = AttributionService(database)
        for bad_k in (None, 0, -1, "three", True):
            response = service.submit({"op": "topk", "query": QUERY,
                                       "k": bad_k})
            assert response["ok"] is False

    def test_attribute_rejects_k(self, database):
        response = AttributionService(database).submit(
            {"op": "attribute", "query": QUERY, "k": 3})
        assert response["ok"] is False
        assert "topk" in response["error"]

    def test_ranking_ops_reject_method(self, database):
        service = AttributionService(database)
        for request in ({"op": "rank", "query": QUERY, "method": "exact"},
                        {"op": "topk", "query": QUERY, "k": 1,
                         "method": "auto"}):
            response = service.submit(request)
            assert response["ok"] is False
            assert "method" in response["error"]

    def test_rank_rejects_k(self, database):
        # 'rank' returning the full list while silently ignoring k would
        # surprise clients that meant 'topk'.
        response = AttributionService(database).submit(
            {"op": "rank", "query": QUERY, "k": 3})
        assert response["ok"] is False
        assert "topk" in response["error"]

    def test_bad_method(self, database):
        response = AttributionService(database).submit(
            {"op": "attribute", "query": QUERY, "method": "rank"})
        assert response["ok"] is False

    def test_errors_do_not_stop_the_loop(self, database):
        service = AttributionService(database)
        responses = list(service.serve([
            {"op": "bogus"},
            {"op": "attribute", "query": QUERY},
        ]))
        assert [r["ok"] for r in responses] == [False, True]
        assert service.request_errors == 1
        assert service.requests_served == 2

    def test_ranking_config_method_rejected(self, database):
        with pytest.raises(ValueError):
            AttributionService(database, EngineConfig(method="rank"))


class TestSharedTiers:
    def test_engines_share_memory_cache(self, database):
        service = AttributionService(database)
        service.submit({"op": "attribute", "query": QUERY,
                        "method": "exact"})
        misses_before = service.stats_counters.cache_misses
        # Same canonical shapes, same method -> pure memory hits.
        service.submit({"op": "attribute", "query": QUERY,
                        "method": "exact"})
        assert service.stats_counters.cache_misses == misses_before

    def test_store_shared_across_methods_and_restart(self, database,
                                                     tmp_path):
        store = DiskStore(str(tmp_path))
        service = AttributionService(database, store=store)
        service.submit({"op": "attribute", "query": QUERY,
                        "method": "exact"})
        service.submit({"op": "topk", "query": QUERY, "k": 1})
        service.flush()

        restarted = AttributionService(
            database, store=DiskStore(str(tmp_path)))
        restarted.submit({"op": "attribute", "query": QUERY,
                          "method": "exact"})
        restarted.submit({"op": "topk", "query": QUERY, "k": 1})
        assert restarted.stats_counters.store_hits > 0
        assert restarted.stats_counters.compilations == 0

    def test_warm_start_preloads_memory(self, database, tmp_path):
        store = DiskStore(str(tmp_path))
        cold = AttributionService(database, store=store)
        cold.submit({"op": "attribute", "query": QUERY})
        cold.flush()

        warm = AttributionService(database,
                                  store=DiskStore(str(tmp_path)),
                                  warm_start=True)
        assert warm.warm_loaded > 0
        warm.submit({"op": "attribute", "query": QUERY})
        assert warm.stats_counters.store_hits == 0  # memory had it already
        assert warm.stats_counters.cache_misses == 0

    def test_warm_values_identical_to_cold(self, database, tmp_path):
        cold = AttributionService(database, store=DiskStore(str(tmp_path)))
        cold_response = cold.submit({"op": "attribute", "query": QUERY,
                                     "method": "exact"})
        cold.flush()
        warm = AttributionService(database,
                                  store=DiskStore(str(tmp_path)))
        warm_response = warm.submit({"op": "attribute", "query": QUERY,
                                     "method": "exact"})
        assert warm_response["answers"] == cold_response["answers"]

    def test_save_and_load_cache(self, database):
        service = AttributionService(database)
        service.submit({"op": "attribute", "query": QUERY})
        store = MemoryStore()
        assert service.save_cache(store) > 0
        fresh = AttributionService(database)
        assert fresh.load_cache(store) > 0
        fresh.submit({"op": "attribute", "query": QUERY})
        assert fresh.stats_counters.cache_misses == 0


class TestStatsReport:
    def test_stats_shape(self, database, tmp_path):
        service = AttributionService(database,
                                     store=DiskStore(str(tmp_path)))
        service.submit({"op": "attribute", "query": QUERY})
        report = service.stats()
        assert report["requests_served"] == 1
        assert report["request_errors"] == 0
        assert set(report["tier_hit_rates"]) == {"memory", "store",
                                                 "compute"}
        assert report["store"]["backend"] == "disk"
        assert "auto" in report["engines"]

    def test_stats_without_store(self, database):
        report = AttributionService(database).stats()
        assert report["store"] is None


class TestServeJsonl:
    def test_jsonl_roundtrip(self, database):
        service = AttributionService(database)
        lines = [
            json.dumps({"op": "attribute", "query": QUERY}),
            "",
            "# a comment",
            "not json",
            json.dumps({"op": "topk", "query": QUERY, "k": 1}),
        ]
        output = io.StringIO()
        all_ok = serve_jsonl(service, lines, output)
        assert all_ok is False  # the bad line failed
        responses = [json.loads(line)
                     for line in output.getvalue().splitlines()]
        assert len(responses) == 3  # blank/comment lines produce nothing
        assert [r["ok"] for r in responses] == [True, False, True]

    def test_jsonl_all_ok(self, database):
        service = AttributionService(database)
        output = io.StringIO()
        assert serve_jsonl(
            service, [json.dumps({"op": "rank", "query": QUERY})],
            output) is True
