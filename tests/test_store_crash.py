"""Crash-injection tests for the log store (subprocess kill -9).

The contract under test is the flush ack point: once a writer's
``flush()`` returns (the child prints ``ACK n``), those records must
survive the writer dying without any shutdown path running -- including
dying mid-append of a later batch (a torn tail the reopen skips) and
dying mid-compaction (the old log must remain fully intact).  And no
matter where the crash landed, a reopened store must never serve a
corrupted ``Fraction``: every readable record is checksum-verified.

Runs in the ``concurrency`` CI lane (subprocesses + kill timing).
"""

import os
import signal
import subprocess
import sys
import time
from fractions import Fraction

import pytest

from repro.engine.cache import CachedAttribution
from repro.engine.logstore import LogStore

pytestmark = pytest.mark.concurrency

_REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


def _crash_key(i):
    return ((3, ((0, 1), (1, 2))), "approximate",
            Fraction(i + 1, 999_983), None)


def _crash_value(i):
    # Big numerators force multi-digit exact arithmetic through the
    # codec, so a silent precision loss cannot hide.
    return Fraction(12345678901234567890 + i, 7)


# The writer child: flush per batch, print "ACK <batch>", then idle
# until killed.  Never closes the store -- the kill is the only exit.
_WRITER = r"""
import sys, time
from fractions import Fraction
from repro.engine.logstore import LogStore
from repro.engine.cache import CachedAttribution

path, batches, per = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
store = LogStore(path, auto_compact=False)
for b in range(batches):
    for j in range(per):
        i = b * per + j
        key = ((3, ((0, 1), (1, 2))), "approximate",
               Fraction(i + 1, 999983), None)
        value = CachedAttribution(
            method_used="approximate",
            values={0: Fraction(12345678901234567890 + i, 7)},
            bounds={0: (i, i + 1)}, converged=True)
        store.put(key, value)
    store.flush()
    print(f"ACK {b}", flush=True)
time.sleep(120)
"""

# The compacting child: build a garbage-heavy log, ack it, then print
# "COMPACTING" immediately before compact() so the parent can kill it
# mid-rewrite.
_COMPACTOR = r"""
import sys, time
from fractions import Fraction
from repro.engine.logstore import LogStore
from repro.engine.cache import CachedAttribution

path, entries = sys.argv[1], int(sys.argv[2])
store = LogStore(path, auto_compact=False)
for round in range(3):
    for i in range(entries):
        key = ((3, ((0, 1), (1, 2))), "approximate",
               Fraction(i + 1, 999983), None)
        value = CachedAttribution(
            method_used="approximate",
            values={0: Fraction(12345678901234567890 + i + round, 7)},
            bounds={0: (i + round, i + round + 1)}, converged=True)
        store.put(key, value)
    store.flush()
print("ACK all", flush=True)
print("COMPACTING", flush=True)
store.compact()
print("COMPACTED", flush=True)
time.sleep(120)
"""


def _spawn(script, *args):
    env = dict(os.environ)
    env["PYTHONPATH"] = _REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", script, *[str(a) for a in args]],
        stdout=subprocess.PIPE, env=env, text=True)


def _read_until(process, prefix, limit=50):
    """Read child stdout lines until one starts with ``prefix``."""
    lines = []
    for _ in range(limit):
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line.strip())
        if line.startswith(prefix):
            return lines
    raise AssertionError(
        f"child never printed {prefix!r}; got {lines!r}")


def _kill(process):
    process.kill()  # SIGKILL: no Python cleanup runs in the child
    process.wait(timeout=30)


class TestCrashRecovery:
    def test_every_acked_flush_survives_kill(self, tmp_path):
        per = 20
        child = _spawn(_WRITER, tmp_path, 5, per)
        try:
            _read_until(child, "ACK 2")  # three acked batches
        finally:
            _kill(child)
        with LogStore(str(tmp_path)) as store:
            for i in range(3 * per):
                loaded = store.get(_crash_key(i))
                assert loaded is not None, f"acked entry {i} lost"
                assert loaded.values[0] == _crash_value(i)
                assert isinstance(loaded.values[0], Fraction)

    def test_torn_tail_after_kill_is_skipped_and_repaired(self, tmp_path):
        per = 10
        child = _spawn(_WRITER, tmp_path, 3, per)
        try:
            _read_until(child, "ACK 2")
        finally:
            _kill(child)
        # Simulate the torn append the kill could have left: chop the
        # log mid-frame, then also flip a byte inside an earlier record.
        log_path = os.path.join(str(tmp_path), "store.log")
        size = os.path.getsize(log_path)
        with open(log_path, "r+b") as handle:
            handle.truncate(size - 11)
            handle.seek(size // 2)
            byte = handle.read(1)
            handle.seek(size // 2)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with LogStore(str(tmp_path)) as store:
            assert store.truncated_bytes > 0       # tail repaired
            assert store.corrupt_records >= 1      # bit flip detected
            served = 0
            for i in range(3 * per):
                loaded = store.get(_crash_key(i))
                if loaded is None:
                    continue  # the torn/corrupted records, nothing else
                served += 1
                # Never a corrupted Fraction: whatever is served is
                # exactly what was written.
                assert loaded.values[0] == _crash_value(i)
            assert 0 < served < 3 * per
            # The writer reopened cleanly: appends work again.
            store.put(_crash_key(1000),
                      CachedAttribution("exact", {0: Fraction(1, 3)},
                                        {0: (0, 1)}, True))
            store.flush()
        with LogStore(str(tmp_path)) as again:
            assert again.get(_crash_key(1000)) is not None

    def test_kill_mid_compaction_preserves_every_live_record(self, tmp_path):
        entries = 400
        child = _spawn(_COMPACTOR, tmp_path, entries)
        try:
            _read_until(child, "COMPACTING")
        finally:
            _kill(child)  # races compact(): before, during, or after
        with LogStore(str(tmp_path)) as store:
            # Whichever file won the race -- the garbage-heavy original
            # or the compacted replacement -- every live record is
            # intact with its newest value.
            assert len(store) == entries
            for i in range(entries):
                loaded = store.get(_crash_key(i))
                assert loaded is not None
                assert loaded.values[0] == \
                    Fraction(12345678901234567890 + i + 2, 7)
            # A crashed compaction's temp file is cleaned on writer open.
            leftovers = [name for name in os.listdir(str(tmp_path))
                         if name.startswith(".compact-")]
            assert leftovers == []

    def test_kill_at_random_point_never_corrupts_reopen(self, tmp_path):
        # No ack coordination at all: kill the writer at an arbitrary
        # moment mid-stream.  Reopen must succeed and serve only
        # verified records.
        child = _spawn(_WRITER, tmp_path, 200, 5)
        try:
            _read_until(child, "ACK 0")
            time.sleep(0.05)
        finally:
            _kill(child)
        with LogStore(str(tmp_path)) as store:
            count = 0
            for key, value in store.items():
                assert isinstance(value.values[0], Fraction)
                count += 1
            assert count >= 5  # at least the first acked batch
            assert count == len(store)
