"""Unit tests for the append-only log store tier (repro.engine.logstore).

Crash-injection, multi-process concurrency, and model-based property
coverage live in ``test_store_crash.py`` / ``test_store_multiproc.py`` /
``test_store_properties.py``; this file pins the single-process
contract: exact round-trips, torn-tail and corrupt-record recovery,
tombstoned eviction, compaction, locking modes, consistent-hash
sharding, backend selection, and the one-shot migration path.
"""

import os
from fractions import Fraction

import pytest

from repro.engine import Engine, EngineConfig
from repro.engine.logstore import (
    LogStore,
    ShardedStore,
    StoreLockedError,
    migrate_store,
    open_store,
    resolve_store,
)
from repro.engine.store import DiskStore, MemoryStore, encode_key

from tests.test_store import _artifact, _canonical_key, _entry, _key


def _keys(count, method="approximate"):
    return [_key(method=method, epsilon=Fraction(i + 1, 999_983))
            for i in range(count)]


class TestLogStoreRoundTrip:
    def test_roundtrip_across_handles_is_exact(self, tmp_path):
        key, entry = _key(), _entry()
        with LogStore(str(tmp_path)) as writer:
            writer.put(key, entry)
            writer.flush()
        with LogStore(str(tmp_path)) as reader:
            loaded = reader.get(key)
        assert loaded == entry
        for variable, value in loaded.values.items():
            assert isinstance(value, Fraction)
            assert value == entry.values[variable]
        for lower, upper in loaded.bounds.values():
            assert isinstance(lower, int) and isinstance(upper, int)

    def test_unflushed_puts_are_not_durable(self, tmp_path):
        writer = LogStore(str(tmp_path))
        writer.put(_key(), _entry())
        assert writer.get(_key()) == _entry()  # read-your-writes
        # Simulate a crash: drop the handle without flushing.
        writer._pending.clear()
        writer.close()
        with LogStore(str(tmp_path)) as reopened:
            assert reopened.get(_key()) is None

    def test_artifact_roundtrip_across_handles(self, tmp_path):
        from repro.dtree.serialize import trees_equal

        key = _canonical_key()
        for artifact in (_artifact(complete=True),
                         _artifact(complete=False)):
            with LogStore(str(tmp_path)) as writer:
                writer.put_artifact(key, artifact)
                writer.flush()
            with LogStore(str(tmp_path)) as reader:
                loaded = reader.get_artifact(key)
            assert loaded is not None
            assert loaded.complete == artifact.complete
            assert trees_equal(loaded.root, artifact.root)

    def test_items_cover_pending_and_flushed(self, tmp_path):
        keys = _keys(4)
        with LogStore(str(tmp_path)) as store:
            store.put(keys[0], _entry())
            store.flush()
            store.put(keys[1], _entry())
            snapshot = dict(store.items())
        assert set(snapshot) == {keys[0], keys[1]}
        assert len(store) == 2  # closed handles still answer sizing

    def test_superseding_put_wins_after_reopen(self, tmp_path):
        key = _key()
        newer = _entry(converged=False)
        with LogStore(str(tmp_path)) as writer:
            writer.put(key, _entry())
            writer.flush()
            writer.put(key, newer)
            writer.flush()
        with LogStore(str(tmp_path)) as reader:
            assert reader.get(key) == newer
            assert len(reader) == 1


class TestLogStoreDamage:
    def test_torn_tail_is_skipped_and_truncated(self, tmp_path):
        keys = _keys(3)
        with LogStore(str(tmp_path)) as writer:
            for key in keys:
                writer.put(key, _entry())
            writer.flush()
        log_path = os.path.join(str(tmp_path), "store.log")
        size = os.path.getsize(log_path)
        with open(log_path, "r+b") as handle:
            handle.truncate(size - 7)  # tear the last frame
        with LogStore(str(tmp_path)) as reopened:
            assert reopened.truncated_bytes > 0
            recovered = [key for key in keys
                         if reopened.get(key) is not None]
            assert len(recovered) == 2  # the torn record is gone
            # The log is clean again: new appends land and survive.
            reopened.put(keys[2], _entry())
            reopened.flush()
        with LogStore(str(tmp_path)) as again:
            assert all(again.get(key) == _entry() for key in keys)

    def test_corrupted_record_is_never_served(self, tmp_path):
        keys = _keys(3)
        with LogStore(str(tmp_path)) as writer:
            for key in keys:
                writer.put(key, _entry())
            writer.flush()
            offset = writer._index[encode_key(keys[1])].offset
        log_path = os.path.join(str(tmp_path), "store.log")
        with open(log_path, "r+b") as handle:
            handle.seek(offset + 12)  # into the payload: a bit flip
            original = handle.read(1)
            handle.seek(offset + 12)
            handle.write(bytes([original[0] ^ 0xFF]))
        with LogStore(str(tmp_path)) as reopened:
            # The damaged record fails its checksum and is skipped; its
            # neighbors -- *after* it in the file too -- still decode.
            assert reopened.get(keys[1]) is None
            assert reopened.get(keys[0]) == _entry()
            assert reopened.get(keys[2]) == _entry()
            assert reopened.corrupt_records == 1

    def test_alien_log_file_is_rotated_not_parsed(self, tmp_path):
        log_path = os.path.join(str(tmp_path), "store.log")
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(log_path, "wb") as handle:
            handle.write(b"this is not a record log at all")
        with LogStore(str(tmp_path)) as store:
            assert len(store) == 0
            store.put(_key(), _entry())
            store.flush()
        with LogStore(str(tmp_path)) as reopened:
            assert reopened.get(_key()) == _entry()
        assert os.path.exists(log_path + ".alien")


class TestLogStoreEviction:
    def test_eviction_appends_tombstones_and_survives_reopen(self, tmp_path):
        keys = _keys(6)
        with LogStore(str(tmp_path), max_entries=4,
                      auto_compact=False) as store:
            for key in keys:
                store.put(key, _entry())
                store.flush()
            assert len(store) == 4
            survivors = {key for key in keys if store.get(key) is not None}
        assert survivors == set(keys[2:])  # oldest two evicted
        with LogStore(str(tmp_path), max_entries=4) as reopened:
            # Tombstones persist the eviction: nothing resurrects.
            assert all(reopened.get(key) is None for key in keys[:2])
            assert all(reopened.get(key) == _entry() for key in keys[2:])

    def test_artifact_bound_is_independent(self, tmp_path):
        with LogStore(str(tmp_path), max_entries=1,
                      max_artifacts=8) as store:
            store.put_artifact(_canonical_key(), _artifact())
            for key in _keys(3):
                store.put(key, _entry())
                store.flush()
            assert len(store) == 1
            assert store.artifact_count() == 1


class TestLogStoreCompaction:
    def test_compaction_reclaims_garbage_and_keeps_live_data(self, tmp_path):
        key, keys = _key(), _keys(4)
        with LogStore(str(tmp_path), auto_compact=False) as store:
            for _ in range(50):
                store.put(key, _entry())
                store.flush()
            for other in keys:
                store.put(other, _entry())
            store.put_artifact(_canonical_key(), _artifact())
            store.flush()
            before = os.path.getsize(
                os.path.join(str(tmp_path), "store.log"))
            reclaimed = store.compact()
            after = os.path.getsize(
                os.path.join(str(tmp_path), "store.log"))
            assert reclaimed > 0 and after < before
            assert store.garbage_bytes == 0
            assert store.get(key) == _entry()
            assert all(store.get(other) == _entry() for other in keys)
            assert store.get_artifact(_canonical_key()) is not None
        with LogStore(str(tmp_path)) as reopened:
            assert reopened.get(key) == _entry()
            assert reopened.artifact_count() == 1

    def test_auto_compaction_triggers_in_background(self, tmp_path):
        store = LogStore(str(tmp_path), compact_ratio=0.5)
        key = _key()
        for _ in range(100):
            store.put(key, _entry())
            store.flush()
        store.close()  # close waits for the worker to drain
        assert store.compactions > 0
        with LogStore(str(tmp_path)) as reopened:
            assert reopened.get(key) == _entry()

    def test_readonly_handle_refuses_to_compact(self, tmp_path):
        with LogStore(str(tmp_path)) as writer:
            writer.put(_key(), _entry())
            writer.flush()
            reader = LogStore(str(tmp_path), mode="ro")
            with pytest.raises(StoreLockedError):
                reader.compact()
            reader.close()


class TestLogStoreLocking:
    def test_second_writer_is_excluded_with_clear_error(self, tmp_path):
        with LogStore(str(tmp_path)) as writer:
            writer.put(_key(), _entry())
            with pytest.raises(StoreLockedError) as excinfo:
                LogStore(str(tmp_path))
            assert "writer lock" in str(excinfo.value)
            assert str(tmp_path) in str(excinfo.value)
        # The lock dies with the handle: a new writer succeeds.
        with LogStore(str(tmp_path)) as successor:
            successor.put(_key(), _entry())
            successor.flush()

    def test_auto_mode_degrades_to_reader(self, tmp_path):
        with LogStore(str(tmp_path)) as writer:
            follower = LogStore(str(tmp_path), mode="auto")
            assert follower.mode == "ro"
            follower.close()
        leader = LogStore(str(tmp_path), mode="auto")
        assert leader.mode == "rw"
        leader.close()

    def test_reader_sees_acked_flushes_incrementally(self, tmp_path):
        keys = _keys(3)
        with LogStore(str(tmp_path)) as writer:
            writer.put(keys[0], _entry())
            writer.flush()
            reader = LogStore(str(tmp_path), mode="ro")
            assert reader.get(keys[0]) == _entry()
            writer.put(keys[1], _entry())
            assert reader.get(keys[1]) is None  # unflushed: invisible
            writer.flush()
            assert reader.get(keys[1]) == _entry()  # auto-refresh on miss
            # A compaction atomically replaces the file; the reader
            # notices the new inode and rescans.
            writer.put(keys[0], _entry(converged=False))
            writer.flush()
            writer.compact()
            reader.refresh()
            assert reader.get(keys[0]) == _entry(converged=False)
            assert reader.get(keys[2]) is None
            reader.close()


class TestShardedStore:
    def test_routes_and_aggregates(self, tmp_path):
        store = ShardedStore([MemoryStore() for _ in range(4)])
        keys = _keys(32)
        for key in keys:
            store.put(key, _entry())
        store.put_artifact(_canonical_key(), _artifact())
        store.flush()
        assert len(store) == 32
        assert store.artifact_count() == 1
        assert all(store.get(key) == _entry() for key in keys)
        assert set(dict(store.items())) == set(keys)
        # Keys actually spread (overwhelmingly likely over 32 keys).
        assert sum(1 for shard in store.stores if len(shard) > 0) >= 2
        stats = store.stats()
        assert stats["backend"] == "sharded"
        assert stats["entries"] == 32
        assert stats["kinds"]["results"]["entries"] == 32

    def test_routing_is_stable_across_instances(self, tmp_path):
        first = ShardedStore([MemoryStore() for _ in range(5)])
        second = ShardedStore([MemoryStore() for _ in range(5)])
        for key in _keys(64):
            encoded = encode_key(key)
            assert first.shard_of(encoded) == second.shard_of(encoded)

    def test_growth_only_moves_keys_to_the_new_shard(self, tmp_path):
        # The consistent-hash property: adding a shard never shuffles
        # keys between existing shards.
        small = ShardedStore([MemoryStore() for _ in range(4)])
        grown = ShardedStore([MemoryStore() for _ in range(5)])
        moved = 0
        for key in _keys(256):
            encoded = encode_key(key)
            before, after = small.shard_of(encoded), grown.shard_of(encoded)
            if before != after:
                assert after == 4  # only ever to the new shard
                moved += 1
        assert 0 < moved < 256  # some keys move, not all

    def test_sharded_log_roundtrip_across_handles(self, tmp_path):
        keys = _keys(16)
        store = ShardedStore.open(
            [str(tmp_path / f"root-{i}") for i in range(3)], backend="log")
        for key in keys:
            store.put(key, _entry())
        store.flush()
        store.close()
        reopened = ShardedStore.open(
            [str(tmp_path / f"root-{i}") for i in range(3)], backend="log")
        assert all(reopened.get(key) == _entry() for key in keys)
        assert reopened.compact() >= 0  # fans out, all shards support it
        reopened.close()


class TestBackendSelection:
    def test_open_store_backends(self, tmp_path):
        disk = open_store(str(tmp_path / "d"), backend="disk")
        assert isinstance(disk, DiskStore)
        log = open_store(str(tmp_path / "l"), backend="log")
        assert isinstance(log, LogStore)
        log.close()
        sharded = open_store(str(tmp_path / "s"), backend="log", shards=3)
        assert isinstance(sharded, ShardedStore)
        assert len(sharded.stores) == 3
        sharded.close()
        with pytest.raises(ValueError):
            open_store(str(tmp_path / "x"), backend="lmdb")

    def test_resolve_store_passthrough_and_paths(self, tmp_path):
        memory = MemoryStore()
        assert resolve_store(memory) is memory
        assert resolve_store(None) is None
        opened = resolve_store(str(tmp_path / "l"), "log")
        assert isinstance(opened, LogStore)
        opened.close()
        assert isinstance(resolve_store(str(tmp_path / "d")), DiskStore)

    def test_engine_config_opens_and_serves_the_backend(self, tmp_path):
        from repro.boolean.dnf import DNF

        lineage = DNF([(0, 1), (1, 2)], domain=range(3))
        config = EngineConfig(store=str(tmp_path), store_backend="log")
        engine = Engine(config)
        # The engine wraps the opened backend in its resilience proxy.
        assert isinstance(engine.store.inner, LogStore)
        (first,) = engine.attribute_lineages([lineage])
        engine.store.close()

        warm = Engine(EngineConfig(store=str(tmp_path),
                                   store_backend="log"))
        (second,) = warm.attribute_lineages([lineage])
        assert warm.stats.store_hits == 1
        assert second.values == first.values
        warm.store.close()

    def test_engine_config_rejects_bad_backend_combinations(self):
        with pytest.raises(ValueError):
            EngineConfig(store_backend="log")  # backend without a path
        with pytest.raises(ValueError):
            EngineConfig(store=MemoryStore(), store_backend="log")
        with pytest.raises(ValueError):
            EngineConfig(store="somewhere", store_backend="lmdb")


class TestMigration:
    def test_disk_to_log_migration_is_exact(self, tmp_path):
        keys = _keys(8)
        source = DiskStore(str(tmp_path / "disk"))
        for key in keys:
            source.put(key, _entry())
        source.put_artifact(_canonical_key(), _artifact())
        source.flush()

        destination = open_store(str(tmp_path / "log"), backend="log",
                                 shards=2)
        results, artifacts = migrate_store(source, destination)
        assert (results, artifacts) == (8, 1)
        destination.close()

        # The source stays fully readable, and the migrated entries
        # round-trip bit-identically.
        assert all(source.get(key) == _entry() for key in keys)
        reopened = open_store(str(tmp_path / "log"), backend="log",
                              shards=2)
        for key in keys:
            loaded = reopened.get(key)
            assert loaded == _entry()
            assert all(isinstance(v, Fraction)
                       for v in loaded.values.values())
        assert reopened.artifact_count() == 1
        reopened.close()
