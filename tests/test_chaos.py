"""Chaos lane: seeded fault schedules against the full serving stack.

Every test installs a deterministic :class:`FaultPlan` (seeded, so a
failure replays bit-identically) and checks the *global* invariants the
reliability subsystem promises, rather than any single component:

* exactly one response per request, in request order, no matter what
  faults fire mid-batch or mid-request;
* every ``ok: true`` response is bit-identical to the fault-free run
  (exact ``Fraction`` values survive retries, fallbacks and
  recomputation);
* a store written under flush faults is never poisoned -- after the
  faults clear, everything it holds loads cleanly;
* a killed pool worker is supervised back to a complete, correct
  result set (and a worker *storm* degrades to the serial path, still
  correct, still counted).

CI runs these in a dedicated ``-m chaos`` lane under pytest-timeout.
"""

import io
import json
import os
from fractions import Fraction

import pytest

from repro import Database
from repro.baselines.brute_force import banzhaf_all_brute_force
from repro.boolean.dnf import DNF
from repro.engine import Engine, EngineConfig
from repro.engine.frontend import FrontendConfig, serve_jsonl_concurrent
from repro.engine.logstore import LogStore
from repro.engine.serve import AttributionService
from repro.reliability import faults

pytestmark = pytest.mark.chaos

QUERIES = (
    "Q(X) :- R(X), S(X, Y)",
    "Q(X) :- R(X), T(X, Y)",
    "Q(X, Y) :- S(X, Y), T(X, Y)",
)


@pytest.fixture
def database():
    db = Database()
    for value in ("a", "b", "c"):
        db.add_fact("R", (value,))
    for row in (("a", 1), ("b", 1), ("c", 2)):
        db.add_fact("S", row)
        db.add_fact("T", row)
    return db


def _requests(count=9):
    return [{"op": "attribute", "query": QUERIES[index % len(QUERIES)],
             "id": index} for index in range(count)]


def _baseline(database, requests):
    """Fault-free responses, keyed by request id."""
    service = AttributionService(database)
    return {request["id"]: service.submit(dict(request))
            for request in requests}


class TestServiceChaos:
    def test_batch_chaos_is_bit_identical_to_fault_free(self, database,
                                                        tmp_path):
        requests = _requests()
        baseline = _baseline(database, requests)
        plan = {
            "seed": 1234,
            "rules": [
                # One mid-batch raise: every batched request must fall
                # back to its individual computation.
                {"site": "serve.batch", "error": "RuntimeError",
                 "times": 1},
                # A flaky disk underneath: reads and flushes fail half
                # the time; the wrapper retries or degrades to misses.
                {"site": "store.read", "errno": "EIO",
                 "probability": 0.5},
                {"site": "store.flush", "errno": "ENOSPC",
                 "probability": 0.5},
            ],
        }
        store_dir = str(tmp_path / "store")
        service = AttributionService(database, store=LogStore(store_dir))
        with faults.installed(plan):
            responses = service.submit_batch([dict(r) for r in requests])
        assert len(responses) == len(requests)  # exactly one per request
        assert [r["id"] for r in responses] == [r["id"] for r in requests]
        for response in responses:
            assert response["ok"] is True
            assert response == baseline[response["id"]]  # bit-identical
        # The store took writes under injected flush faults; once they
        # clear it must hold only clean, loadable records (a failed
        # write is never served back).
        service.flush()
        service.store.close()
        with LogStore(store_dir) as reopened:
            loaded = Engine(EngineConfig()).load_cache(reopened)
            assert loaded >= 0  # every surviving record decoded cleanly

    def test_chaos_schedule_replays_deterministically(self, database):
        plan_spec = {
            "seed": 77,
            "rules": [{"site": "store.read", "errno": "EIO",
                       "probability": 0.5},
                      {"site": "serve.request", "action": "delay",
                       "delay_seconds": 0.0, "probability": 0.5}],
        }
        outcomes = []
        for _run in range(2):
            service = AttributionService(database)
            with faults.installed(plan_spec) as plan:
                for request in _requests(6):
                    service.submit(dict(request))
                outcomes.append((dict(plan.fired),
                                 {site: plan.calls(site)
                                  for site in ("store.read",
                                               "serve.request")}))
        assert outcomes[0] == outcomes[1]


class TestFrontendChaos:
    def test_every_request_gets_exactly_one_response(self, database,
                                                     tmp_path):
        requests = _requests(12)
        baseline = _baseline(database, requests)
        plan = {
            "seed": 99,
            "rules": [
                {"site": "serve.batch", "error": "RuntimeError",
                 "probability": 0.5},
                {"site": "store.read", "errno": "EIO",
                 "probability": 0.4},
                {"site": "serve.request", "action": "delay",
                 "delay_seconds": 0.002, "probability": 0.3},
            ],
        }
        service = AttributionService(
            database, store=LogStore(str(tmp_path / "store")))
        lines = [json.dumps(request) for request in requests]
        output = io.StringIO()
        with faults.installed(plan):
            serve_jsonl_concurrent(service, lines, output,
                                   FrontendConfig(workers=3, batch_max=4))
        rows = [json.loads(line) for line in output.getvalue().splitlines()]
        assert len(rows) == len(requests)
        # Responses come back in request order, one per request.
        assert [row["id"] for row in rows] == [r["id"] for r in requests]
        # A batch the *front-end* fails mid-flight comes back as error
        # responses (the catch-all never strands a ticket); everything
        # that did succeed is bit-identical to the fault-free run.
        for row in rows:
            if row["ok"]:
                assert row == baseline[row["id"]]
            else:
                assert "error" in row  # structured, never a lost ticket
        assert any(row["ok"] for row in rows)


def _lineages():
    return [DNF([[0, 1]]), DNF([[0, 1], [1, 2]]),
            DNF([[0], [1, 2]]), DNF([[0, 1], [0, 2], [1, 2]]),
            DNF([[0, 2], [1, 3]]), DNF([[0], [1], [2, 3]])]


class TestWorkerKills:
    def test_one_killed_worker_is_supervised_back(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        lineages = _lineages()
        expected = [banzhaf_all_brute_force(lineage)
                    for lineage in lineages]
        engine = Engine(EngineConfig(
            method="exact", max_workers=2, chunk_size=1,
            parallel_min_tasks=1, pool_restarts=2,
            fault_plan={"rules": [{
                "site": "pool.task", "action": "kill",
                # os._exit(1) in exactly the one (forked) worker that
                # claims the sentinel; everyone else proceeds.
                "once_path": str(tmp_path / "kill-once"),
            }]}))
        values = [a.values for a in engine.attribute_lineages(lineages)]
        for computed, raw in zip(values, expected):
            assert computed == {v: Fraction(x) for v, x in raw.items()}
        assert engine.stats.pool_worker_crashes >= 1
        assert engine.stats.pool_fallbacks == 0
        assert engine.stats.parallel_batches == 1

    def test_worker_kill_storm_degrades_to_serial(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        lineages = _lineages()
        expected = [banzhaf_all_brute_force(lineage)
                    for lineage in lineages]
        # No once_path: every fresh worker's first chunk dies, so the
        # pool burns its whole restart budget and the engine falls back
        # to the serial path -- counted, and still correct.
        engine = Engine(EngineConfig(
            method="exact", max_workers=2, chunk_size=1,
            parallel_min_tasks=1, pool_restarts=1,
            fault_plan={"rules": [{"site": "pool.task",
                                   "action": "kill"}]}))
        values = [a.values for a in engine.attribute_lineages(lineages)]
        for computed, raw in zip(values, expected):
            assert computed == {v: Fraction(x) for v, x in raw.items()}
        assert engine.stats.pool_fallbacks == 1
        assert engine.stats.pool_worker_crashes == 2  # budget + 1 attempts
        assert engine.stats.parallel_batches == 0
