"""Regression tests: deep d-trees no longer depend on the recursion limit.

The seed implementation compiled and evaluated d-trees with recursive
passes, so a tree deeper than ``sys.getrecursionlimit()`` crashed with
``RecursionError`` (the engine papered over it by raising the limit to
100k).  Compilation, the count/Banzhaf passes, the Shapley vector passes
and the AdaBan bounds procedure are now all explicit-stack iterative;
these tests pin the interpreter limit *below* the tree depth and run the
whole pipeline through trees that the recursive formulation provably
cannot traverse.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager

from repro.boolean.dnf import DNF
from repro.core.bounds import bounds_for_variable, count_bounds
from repro.core.exaban import exaban, exaban_all, model_count
from repro.dtree.compile import compile_dnf
from repro.dtree.nodes import DecompAnd, DTreeNode, LiteralLeaf
from repro.dtree.serialize import clone_tree, decode_tree, encode_tree, trees_equal


@contextmanager
def recursion_limit(limit: int):
    previous = sys.getrecursionlimit()
    sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)


def tree_depth(root: DTreeNode) -> int:
    """Maximum root-to-leaf node count, computed iteratively."""
    depth = 0
    stack = [(root, 1)]
    while stack:
        node, level = stack.pop()
        depth = max(depth, level)
        stack.extend((child, level + 1) for child in node.children())
    return depth


def read_once_comb(levels: int) -> DNF:
    """The read-once function ``E_k = x_k | (y_k & E_{k-1})`` as a DNF.

    Its d-tree is a linear-size chain (one component split plus one factor
    step per level), about ``2 * levels`` deep -- the deep-chain shape that
    crashed the seed's recursive compile and count passes.
    """
    clauses = [(0,)]
    next_variable = 1
    for _ in range(1, levels):
        x_k, y_k = next_variable, next_variable + 1
        next_variable += 2
        clauses = [tuple(sorted((y_k,) + clause)) for clause in clauses]
        clauses.append((x_k,))
    return DNF(clauses)


class TestDeepCompileAndCount:
    def test_deep_chain_compiles_and_counts_below_recursion_limit(self):
        function = read_once_comb(120)
        with recursion_limit(200):
            tree = compile_dnf(function)
            depth = tree_depth(tree)
            # The tree is deeper (and has more nodes) than the interpreter
            # would allow a recursive pass to descend.
            assert depth > sys.getrecursionlimit()
            assert tree.num_nodes() > sys.getrecursionlimit()
            assert tree.is_complete()

            counts: dict = {}
            total = model_count(tree, counts)
            values = exaban_all(tree, counts)
        # Spot-check the fused passes against the per-variable pass and the
        # model-count identity Banzhaf(x) = #phi[x:=1] - #phi[x:=0].
        n = function.num_variables()
        assert 0 < total < (1 << n)
        for variable in (0, 1, n - 2, n - 1):
            banzhaf, count = exaban(tree, variable, counts)
            assert count == total
            assert banzhaf == values[variable]
        # x_k of the outermost level is one literal of an independent-or:
        # its Banzhaf value is the non-model count of the sibling subtree.
        assert values[max(function.variables)] > 0

    def test_deep_tree_counts_match_exact_bounds_and_roundtrip(self):
        # A directly built conjunction chain, far deeper than the pinned
        # limit: count passes, the (iterative) bounds procedure, and the
        # iterative codec must all agree without touching the call stack.
        depth = 1500
        root: DTreeNode = LiteralLeaf(0)
        for variable in range(1, depth):
            root = DecompAnd([root, LiteralLeaf(variable)])
        with recursion_limit(1000):
            assert tree_depth(root) > sys.getrecursionlimit()
            counts: dict = {}
            assert model_count(root, counts) == 1
            values = exaban_all(root, counts)
            assert values[0] == 1 and values[depth - 1] == 1
            # Complete tree: count bounds and Banzhaf bounds are points.
            assert count_bounds(root) == (1, 1)
            bounds = bounds_for_variable(root, depth - 1)
            assert (bounds.banzhaf_lower, bounds.banzhaf_upper) == (1, 1)
            clone = clone_tree(root)
            assert trees_equal(root, clone)
            assert trees_equal(root, decode_tree(encode_tree(root)))

    def test_deep_partial_tree_bounds(self):
        # The bounds procedure also runs on *partial* trees (AdaBan); nest
        # an undecomposed leaf at the bottom of a deep decomposable spine.
        from repro.dtree.nodes import DNFLeaf

        depth = 1200
        leaf_function = DNF([[0, 1], [1, 2]], domain=[0, 1, 2])
        root: DTreeNode = DNFLeaf(leaf_function)
        for variable in range(3, depth + 3):
            root = DecompAnd([root, LiteralLeaf(variable)])
        with recursion_limit(1000):
            assert tree_depth(root) > sys.getrecursionlimit()
            bounds = bounds_for_variable(root, 1)
            assert bounds.banzhaf_lower <= bounds.banzhaf_upper
            lower, upper = count_bounds(root)
            assert 0 <= lower <= upper
