"""Transient-I/O recovery for the persistent store tiers.

The persistent store is an optimization, so infrastructure failures
must degrade it, never the requests: this file drives real ``ENOSPC``/
``EIO`` faults (via :mod:`repro.reliability.faults`) into
:class:`DiskStore` and :class:`LogStore` and pins the recovery
contract at each layer:

* a failed flush never loses acked data, and a retry after the fault
  clears persists everything that was pending;
* the :class:`ResilientStore` wrapper retries transient reads, degrades
  terminal failures to cache misses, and trips its circuit breaker into
  memory-only operation under a persistent outage;
* the serving layer keeps answering (memory-only) with the breaker
  open, and surfaces a *locked* store as a structured
  ``{"ok": false, "degraded": true}`` response;
* ``repro serve`` / ``repro cache`` exit with code 2 and one structured
  JSON line -- not a traceback -- when the store cannot be opened.
"""

import io
import json

import pytest

from repro import Database
from repro.cli import run as cli_run
from repro.engine import EngineConfig
from repro.engine.logstore import LogStore, StoreLockedError
from repro.engine.serve import AttributionService
from repro.engine.store import DiskStore
from repro.reliability import (
    CircuitBreaker,
    FaultInjected,
    ResilientStore,
    RetryPolicy,
    TransientStoreError,
    faults,
)
from repro.reliability.breaker import OPEN

from tests.test_store import _entry, _key


def _fast_wrap(store, *, attempts=3, threshold=5, counters=None):
    """A ResilientStore that never sleeps (tests pin behaviour, not time)."""
    sink = counters.append if counters is not None else None
    return ResilientStore(
        store,
        retry=RetryPolicy(attempts=attempts, base_delay=0.0, jitter=0.0),
        breaker=CircuitBreaker(failure_threshold=threshold),
        on_counter=(lambda **deltas: sink(deltas)) if sink else None)


class TestDiskStoreTransients:
    def test_enospc_on_flush_recovers_on_retry(self, tmp_path):
        counters = []
        store = _fast_wrap(DiskStore(str(tmp_path)), counters=counters)
        key, entry = _key(), _entry()
        store.put(key, entry)
        with faults.installed({"rules": [{"site": "store.flush",
                                          "errno": "ENOSPC", "times": 1}]}):
            store.flush()  # first attempt hits ENOSPC, the retry lands
        assert {"store_retries": 1} in counters
        assert DiskStore(str(tmp_path)).get(key) == entry

    def test_read_fault_degrades_to_miss_then_recovers(self, tmp_path):
        inner = DiskStore(str(tmp_path))
        key, entry = _key(), _entry()
        inner.put(key, entry)
        inner.flush()
        store = _fast_wrap(DiskStore(str(tmp_path)), attempts=1)
        with faults.installed({"rules": [{"site": "store.read",
                                          "errno": "EIO", "times": 1}]}):
            assert store.get(key) is None   # degraded to a miss, no raise
            assert store.get(key) == entry  # fault cleared: served again


class TestLogStoreTransients:
    def test_failed_append_preserves_acked_data_and_pending(self, tmp_path):
        store = LogStore(str(tmp_path))
        first_key, second_key = _key(), _key(clauses=((0, 2), (1, 2)))
        store.put(first_key, _entry())
        store.flush()  # first entry is now acked (durable)
        store.put(second_key, _entry(converged=False))
        with faults.installed({"rules": [{"site": "store.flush",
                                          "errno": "EIO", "times": 1}]}):
            with pytest.raises(TransientStoreError) as excinfo:
                store.flush()
            assert isinstance(excinfo.value.__cause__, FaultInjected)
            # Nothing was lost: the acked entry still reads, the failed
            # write stays pending (read-your-writes).
            assert store.get(first_key) == _entry()
            assert store.get(second_key) == _entry(converged=False)
        store.flush()  # fault cleared: the pending entry persists now
        store.close()
        with LogStore(str(tmp_path)) as reopened:
            assert reopened.get(first_key) == _entry()
            assert reopened.get(second_key) == _entry(converged=False)

    def test_injected_lock_error_propagates_unwrapped(self, tmp_path):
        store = LogStore(str(tmp_path))
        with faults.installed({"rules": [{"site": "store.read",
                                          "error": "StoreLockedError",
                                          "times": 1}]}):
            with pytest.raises(StoreLockedError):
                store.get(_key())
        store.close()

    def test_persistent_flush_failure_recovers_through_the_wrapper(
            self, tmp_path):
        counters = []
        store = _fast_wrap(LogStore(str(tmp_path)), attempts=2,
                           counters=counters)
        key, entry = _key(), _entry()
        store.put(key, entry)
        with faults.installed({"rules": [{"site": "store.flush",
                                          "errno": "ENOSPC",
                                          "times": 3}]}):
            store.flush()  # both attempts fail; swallowed, entry pending
            assert store.get(key) == entry  # still served from the buffer
            store.flush()  # 3rd fault burns, the retry persists everything
        assert counters.count({"store_retries": 1}) == 2
        store.close()
        with LogStore(str(tmp_path)) as reopened:
            assert reopened.get(key) == entry


QUERY = "Q(X) :- R(X), S(X, Y)"
QUERY2 = "Q(X) :- R(X), T(X, Y)"
QUERY3 = "Q(X, Y) :- S(X, Y)"


@pytest.fixture
def database():
    db = Database()
    for value in ("a", "b", "c"):
        db.add_fact("R", (value,))
    for row in (("a", 1), ("b", 1), ("c", 2)):
        db.add_fact("S", row)
        db.add_fact("T", row)
    return db


class TestServingDegradation:
    def test_breaker_trips_to_memory_only_serving(self, database, tmp_path):
        service = AttributionService(
            database,
            EngineConfig(store_retries=0, breaker_threshold=2),
            store=LogStore(str(tmp_path)))
        # A dead disk fails everything: reads and flushes alike.  (Reads
        # alone never trip the breaker here, because each request's
        # successful flush resets the *consecutive* failure count.)
        with faults.installed({"rules": [{"site": "store.read",
                                          "errno": "EIO"},
                                         {"site": "store.flush",
                                          "errno": "EIO"}]}):
            responses = [service.submit({"op": "attribute", "query": query,
                                         "id": index})
                         for index, query in enumerate(
                             (QUERY, QUERY2, QUERY3))]
        # Every request computed fine without the persistent tier...
        assert all(response["ok"] is True for response in responses)
        # ...and the outage was accounted: breaker open, degradation
        # counted, store I/O now skipped outright.
        assert service.store.breaker.state == OPEN
        report = service.stats()
        assert report["reliability"]["store_degraded"] == 1
        assert report["reliability"]["pool_fallbacks"] == 0

    def test_locked_store_read_is_a_structured_degraded_response(
            self, database, tmp_path):
        service = AttributionService(database,
                                     store=LogStore(str(tmp_path)))
        with faults.installed({"rules": [{"site": "store.read",
                                          "error": "StoreLockedError",
                                          "times": 1}]}):
            response = service.submit({"op": "attribute", "query": QUERY,
                                       "id": 3})
        assert response["ok"] is False
        assert response["degraded"] is True
        assert "StoreLockedError" in response["error"]
        assert response["id"] == 3
        assert service.stats()["requests_degraded"] == 1
        # The fault was one-shot: the next request serves normally.
        healed = service.submit({"op": "attribute", "query": QUERY})
        assert healed["ok"] is True


class TestCliStoreFailures:
    """Unopenable stores exit with code 2 and one JSON line, no traceback."""

    @pytest.fixture
    def serve_inputs(self, tmp_path):
        facts = tmp_path / "r.csv"
        facts.write_text("a\nb\n", encoding="utf-8")
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"op": "attribute", "query": "Q(X) :- R(X)"}) + "\n",
            encoding="utf-8")
        return facts, requests

    def test_cache_actions_on_a_locked_store_exit_2(self, tmp_path):
        store_dir = str(tmp_path / "store")
        holder = LogStore(store_dir)
        try:
            for argv in (["cache", "load", "--store", store_dir,
                          "--store-backend", "log"],
                         ["cache", "compact", "--store", store_dir,
                          "--store-backend", "log"]):
                output = io.StringIO()
                assert cli_run(argv, output=output) == 2
                row = json.loads(output.getvalue())
                assert row["ok"] is False
                assert "StoreLockedError" in row["error"]
                assert row["store"] == store_dir
        finally:
            holder.close()

    def test_serve_on_a_locked_store_exits_2(self, tmp_path, serve_inputs,
                                             capsys):
        facts, requests = serve_inputs
        store_dir = str(tmp_path / "store")
        holder = LogStore(store_dir)
        try:
            output = io.StringIO()
            code = cli_run(["serve", "--facts", f"R={facts}",
                            "--requests", str(requests),
                            "--store", store_dir, "--store-backend", "log"],
                           output=output)
        finally:
            holder.close()
        assert code == 2
        assert output.getvalue() == ""  # no half-served response stream
        error_lines = [line for line
                       in capsys.readouterr().err.splitlines()
                       if line.startswith("{")]
        assert len(error_lines) == 1
        row = json.loads(error_lines[0])
        assert row["ok"] is False and "StoreLockedError" in row["error"]

    def test_serve_reliability_flags_are_validated(self, serve_inputs):
        facts, requests = serve_inputs
        with pytest.raises(SystemExit):
            cli_run(["serve", "--facts", f"R={facts}",
                     "--requests", str(requests), "--store-retries", "-1"],
                    output=io.StringIO())

    def test_serve_accepts_the_reliability_flags(self, tmp_path,
                                                 serve_inputs):
        facts, requests = serve_inputs
        output = io.StringIO()
        code = cli_run(["serve", "--facts", f"R={facts}",
                        "--requests", str(requests),
                        "--store", str(tmp_path / "store"),
                        "--store-backend", "log",
                        "--store-retries", "0",
                        "--breaker-threshold", "0"],
                       output=output)
        assert code == 0
        response = json.loads(output.getvalue().splitlines()[0])
        assert response["ok"] is True
