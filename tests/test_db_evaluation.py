"""Tests for query evaluation, lineage construction, parsing and reductions."""

import pytest

from repro.baselines.brute_force import banzhaf_all_brute_force
from repro.boolean.assignments import count_non_models
from repro.db.database import Database
from repro.db.datalog import QueryParseError, parse_cq, parse_query
from repro.db.evaluation import boolean_query_holds, evaluate_query
from repro.db.lineage import (
    EmptyLineageError,
    lineage_of_answers,
    lineage_of_boolean_query,
    lineage_statistics,
)
from repro.db.query import ConjunctiveQuery, Selection, UnionQuery, atom, var
from repro.db.reductions import (
    appendix_d_database,
    appendix_d_query,
    basic_non_hierarchical_query,
    pp2dnf_to_database,
)
from repro.boolean.pp2dnf import PP2DNF


def _example6_database() -> Database:
    database = Database()
    database.add_fact("R", (1, 2, 3))
    database.add_fact("S", (1, 2, 4))
    database.add_fact("S", (1, 2, 5))
    database.add_fact("T", (1, 6))
    return database


def _example6_query() -> ConjunctiveQuery:
    x, y, z, v, u = (var(n) for n in "XYZVU")
    return ConjunctiveQuery(
        (atom("R", x, y, z), atom("S", x, y, v), atom("T", x, u)))


class TestEvaluation:
    def test_example6_groundings(self):
        answers = evaluate_query(_example6_query(), _example6_database())
        assert len(answers) == 1
        assert len(answers[0].groundings) == 2

    def test_boolean_query_holds(self):
        assert boolean_query_holds(_example6_query(), _example6_database())
        empty = Database()
        empty.add_fact("R", (9, 9, 9))
        assert not boolean_query_holds(_example6_query(), empty)

    def test_non_boolean_answers(self):
        database = Database()
        database.add_fact("R", ("a",))
        database.add_fact("R", ("b",))
        database.add_fact("S", ("a", 1))
        query = ConjunctiveQuery((atom("R", var("X")), atom("S", var("X"), var("Y"))),
                                 head=(var("X"),))
        answers = evaluate_query(query, database)
        assert {a.values for a in answers} == {("a",)}

    def test_selection_filtering(self):
        database = Database()
        database.add_fact("Paper", ("p1", 1990))
        database.add_fact("Paper", ("p2", 2020))
        query = ConjunctiveQuery(
            (atom("Paper", var("P"), var("Y")),), head=(var("P"),),
            selections=(Selection(var("Y"), ">=", 2000),))
        answers = evaluate_query(query, database)
        assert {a.values for a in answers} == {("p2",)}

    def test_constants_in_atoms(self):
        database = Database()
        database.add_fact("Genre", ("m1", "drama"))
        database.add_fact("Genre", ("m2", "comedy"))
        query = ConjunctiveQuery((atom("Genre", var("M"), "drama"),),
                                 head=(var("M"),))
        answers = evaluate_query(query, database)
        assert {a.values for a in answers} == {("m1",)}

    def test_union_merges_groundings(self):
        database = Database()
        database.add_fact("R", ("a",))
        database.add_fact("S", ("a",))
        q1 = ConjunctiveQuery((atom("R", var("X")),), head=(var("X"),))
        q2 = ConjunctiveQuery((atom("S", var("X")),), head=(var("X"),))
        answers = evaluate_query(UnionQuery((q1, q2)), database)
        assert len(answers) == 1
        assert len(answers[0].groundings) == 2

    def test_boolean_query_holds_requires_boolean(self):
        query = ConjunctiveQuery((atom("R", var("X")),), head=(var("X"),))
        with pytest.raises(ValueError):
            boolean_query_holds(query, Database())


class TestLineage:
    def test_example6_lineage(self):
        database = _example6_database()
        lineage = lineage_of_boolean_query(_example6_query(), database)
        # Two clauses, each with the R fact, one S fact, and the T fact.
        assert lineage.num_clauses() == 2
        values = banzhaf_all_brute_force(lineage)
        r_variable = database.variable_of(database.endogenous_facts()[0])
        assert values[r_variable] == max(values.values())

    def test_exogenous_facts_drop_out(self):
        database = Database()
        database.add_fact("R", ("a",))
        database.add_fact("S", ("a", "b"), endogenous=False)
        database.add_fact("T", ("b",))
        lineage = lineage_of_boolean_query(
            basic_non_hierarchical_query(), database)
        assert lineage.num_clauses() == 1
        assert len(lineage.variables) == 2

    def test_purely_exogenous_answer_raises(self):
        database = Database()
        database.add_fact("R", ("a",), endogenous=False)
        query = ConjunctiveQuery((atom("R", var("X")),))
        with pytest.raises(EmptyLineageError):
            lineage_of_boolean_query(query, database)

    def test_unsatisfied_boolean_query_raises(self):
        database = Database()
        database.add_fact("R", ("a",))
        query = ConjunctiveQuery((atom("Missing", var("X")),))
        with pytest.raises(EmptyLineageError):
            lineage_of_boolean_query(query, database)

    def test_lineage_per_answer(self):
        database = Database()
        database.add_fact("R", ("a",))
        database.add_fact("R", ("b",))
        database.add_fact("S", ("a", 1))
        database.add_fact("S", ("a", 2))
        database.add_fact("S", ("b", 1))
        query = ConjunctiveQuery((atom("R", var("X")), atom("S", var("X"), var("Y"))),
                                 head=(var("X"),))
        answers = lineage_of_answers(query, database)
        by_value = {a.values: a.lineage for a in answers}
        assert by_value[("a",)].num_clauses() == 2
        assert by_value[("b",)].num_clauses() == 1

    def test_database_domain_policy(self):
        database = _example6_database()
        narrow = lineage_of_boolean_query(_example6_query(), database)
        wide = lineage_of_boolean_query(_example6_query(), database,
                                        domain="database")
        assert narrow.variables == wide.variables
        assert wide.domain == frozenset(database.endogenous_variables())

    def test_lineage_statistics(self):
        database = _example6_database()
        answers = lineage_of_answers(_example6_query(), database)
        stats = lineage_statistics(answers)
        assert stats["count"] == 1
        assert stats["max_clauses"] == 2
        assert lineage_statistics([])["count"] == 0


class TestDatalogParser:
    def test_parse_simple_query(self):
        query = parse_cq("Q(X) :- R(X, Y), S(Y, 'abc'), Y >= 3")
        assert len(query.atoms) == 2
        assert query.head == (var("X"),)
        assert query.selections[0].comparator == ">="

    def test_parse_boolean_query(self):
        query = parse_cq("Q() :- R(X)")
        assert query.is_boolean()

    def test_parse_constants(self):
        query = parse_cq("Q() :- R(X, 'title', 42, 3.5, lowercase)")
        terms = query.atoms[0].terms
        assert terms[1] == "title"
        assert terms[2] == 42
        assert terms[3] == 3.5
        assert terms[4] == "lowercase"

    def test_parse_union(self):
        union = parse_query("Q(X) :- R(X) ; Q(X) :- S(X)")
        assert isinstance(union, UnionQuery)
        assert len(union.disjuncts) == 2

    def test_parse_errors(self):
        with pytest.raises(QueryParseError):
            parse_cq("no separator here")
        with pytest.raises(QueryParseError):
            parse_cq("Q(X) :- ")
        with pytest.raises(QueryParseError):
            parse_cq("Q(X) :- R(X), ???")
        with pytest.raises(QueryParseError):
            parse_cq("Q(X) :- R(X), X < Y")

    def test_parse_and_evaluate_roundtrip(self):
        database = Database()
        database.add_fact("Movie", ("m1", 2001))
        database.add_fact("Movie", ("m2", 1995))
        query = parse_query("Q(M) :- Movie(M, Y), Y >= 2000")
        answers = evaluate_query(query, database)
        assert {a.values for a in answers} == {("m1",)}


class TestReductions:
    def test_lemma23_lineage_matches_function(self):
        function = PP2DNF([1, 2], [10, 11], [(1, 10), (2, 10), (2, 11)])
        construction = pp2dnf_to_database(function)
        lineage = lineage_of_boolean_query(construction.query,
                                           construction.database,
                                           domain="database")
        # #NSat of the PP2DNF equals the number of non-models of the lineage.
        assert count_non_models(lineage) == function.count_non_satisfying()

    def test_lemma23_variable_mapping(self):
        function = PP2DNF([1], [10], [(1, 10)])
        construction = pp2dnf_to_database(function)
        assert set(construction.lineage_variable_of) == {1, 10}
        database = construction.database
        assert database.is_exogenous(database.exogenous_facts()[0])

    def test_appendix_d_database_shape(self):
        database, r_a1, r_a2 = appendix_d_database()
        assert database.num_facts() == 18
        assert database.is_endogenous(r_a1) and database.is_endogenous(r_a2)
        lineage = lineage_of_boolean_query(appendix_d_query(), database)
        assert lineage.num_clauses() == 3 * 3 + 2 * 8
