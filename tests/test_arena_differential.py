"""Differential tests: the arena backend against every object-tree baseline.

The struct-of-arrays arena (:mod:`repro.dtree.arena`) re-implements the
fused counting, Banzhaf, Shapley and bounds passes as index loops over
postorder-contiguous columns.  This module pins the refactor's core
contract -- **bit-identical results** -- by fuzzing random DNFs through
both backends and the recursive seed reference
(:mod:`repro.core.reference`), exercises the float tier's enclosure and
ordering guarantees on tie-rich instances, and covers the shapes the
column layout is most likely to get wrong: deep trees (build and
incremental ``extend`` far beyond the recursion limit) and trees decoded
from legacy v1 shards.
"""

import random
import sys
from contextlib import contextmanager
from fractions import Fraction

from hypothesis import given, settings

from repro.boolean.dnf import DNF
from repro.core import reference as seed
from repro.core.bounds import bounds_for_variable, count_bounds
from repro.core.exaban import (
    exaban_all,
    exaban_all_objects,
    model_count,
    model_count_objects,
)
from repro.core.ichiban import ranked_from_bounds
from repro.core.shapley import shapley_all
from repro.dtree.arena import (
    DTreeArena,
    arena_banzhaf,
    arena_banzhaf_bounds,
    arena_count_bounds,
    arena_counts,
    arena_model_count,
    arena_of,
)
from repro.dtree.compile import compile_dnf
from repro.dtree.incremental import IncrementalCompiler
from repro.dtree.nodes import DecompAnd, DTreeNode, LiteralLeaf
from repro.dtree.serialize import (
    decode_tree,
    encode_tree,
    encode_tree_v1,
    trees_equal,
)
from repro.engine.ranking import compute_ranking
from repro.experiments.metrics import ground_truth_topk
from repro.workloads.generators import random_positive_dnf, star_join_lineage

from dnf_strategies import small_dnfs

_SETTINGS = settings(max_examples=50, deadline=None)


@contextmanager
def recursion_limit(limit: int):
    previous = sys.getrecursionlimit()
    sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)


@_SETTINGS
@given(function=small_dnfs())
def test_arena_counts_and_banzhaf_match_baselines(function: DNF):
    tree = compile_dnf(function)
    arena = DTreeArena.from_tree(tree)
    counts = arena_counts(arena)
    # Model count: arena column vs object walk vs recursive seed.
    assert counts[arena.root] == arena_model_count(arena)
    assert counts[arena.root] == model_count_objects(tree)
    assert counts[arena.root] == seed.model_count_recursive(tree)
    assert counts[arena.root] == model_count(tree)
    # Fused all-variables Banzhaf: bit-identical ints across backends.
    banzhaf = arena_banzhaf(arena)
    assert banzhaf == exaban_all_objects(tree)
    assert banzhaf == seed.exaban_all_recursive(tree)
    assert banzhaf == exaban_all(tree)


@_SETTINGS
@given(function=small_dnfs())
def test_arena_shapley_matches_recursive_seed(function: DNF):
    tree = compile_dnf(function)
    # shapley_all routes critical counts through the arena's model-vector
    # and cofactor passes; the recursive seed never touches the arena.
    assert shapley_all(function, tree=tree) == seed.shapley_all_recursive(
        function, compile_dnf(function))


@_SETTINGS
@given(function=small_dnfs())
def test_arena_bounds_match_object_bounds_on_partial_trees(function: DNF):
    # Stop compilation after a few expansions so DNF leaves survive: the
    # bounds passes differ from plain counting exactly on partial trees.
    compiler = IncrementalCompiler(function)
    for _ in range(2):
        if not compiler.expand_step():
            break
    tree = compiler.root
    arena = DTreeArena.from_tree(tree)
    lower, upper = arena_count_bounds(arena)[arena.root]
    assert (lower, upper) == count_bounds(tree)
    for variable in sorted(function.variables):
        expected = bounds_for_variable(tree, variable)
        actual = arena_banzhaf_bounds(arena, variable)
        assert (actual.banzhaf_lower, actual.banzhaf_upper,
                actual.count_lower, actual.count_upper) == (
            expected.banzhaf_lower, expected.banzhaf_upper,
            expected.count_lower, expected.count_upper)


def _tie_rich_instances():
    """Symmetric lineages whose Banzhaf values tie heavily, plus fuzz."""
    rng = random.Random(77)
    instances = [star_join_lineage(rng, 2, 3) for _ in range(4)]
    for _ in range(12):
        instances.append(random_positive_dnf(rng, rng.randint(3, 7),
                                             rng.randint(2, 6), (1, 3)))
    return instances


def test_float_rank_encloses_and_orders_like_exact():
    for function in _tie_rich_instances():
        tree = compile_dnf(function)
        exact = {v: value for v, value in exaban_all(tree).items()
                 if v in function.variables}
        result = compute_ranking(function, "rank", None, None, None,
                                 numeric="float")
        outcome = result.outcome
        assert outcome.method_used == "rank-float"
        assert outcome.converged
        assert set(outcome.values) == set(exact)
        for variable, (lower, upper) in outcome.bounds.items():
            assert lower <= exact[variable] <= upper
        # Non-straddlers are certifiably separated, straddlers fall back
        # to exact points: the value order must match the exact order.
        float_order = sorted(outcome.values,
                             key=lambda v: (-outcome.values[v], v))
        exact_order = sorted(exact, key=lambda v: (-exact[v], v))
        assert float_order == exact_order


def test_float_topk_sets_legitimate_on_tie_rich_instances():
    k = 3
    for function in _tie_rich_instances():
        if len(function.variables) <= k:
            continue
        exact = {v: value
                 for v, value in exaban_all(compile_dnf(function)).items()
                 if v in function.variables}
        result = compute_ranking(function, "topk", k, None, None,
                                 numeric="float")
        assert result.outcome.method_used == "topk-float"
        reported = [entry.variable
                    for entry in ranked_from_bounds(result.outcome.bounds, k)]
        legitimate = ground_truth_topk(exact, k)
        assert set(reported) <= legitimate
        assert len(reported) >= min(k, len(exact))
        # And the certain top-k set (exact values above the (k+1)-th) is
        # fully recovered: float separation never drops a certain member.
        certain = {v for v in exact
                   if sum(exact[u] > exact[v] for u in exact) < k
                   and sum(exact[u] >= exact[v] for u in exact) <= k}
        assert certain <= set(reported)


def test_deep_arena_build_and_extend():
    # A 1500-deep conjunction chain: the arena build, both passes, and the
    # object round-trip must stay iterative (no recursion-limit coupling).
    depth = 1500
    root: DTreeNode = LiteralLeaf(0)
    for variable in range(1, depth):
        root = DecompAnd([root, LiteralLeaf(variable)])
    with recursion_limit(1000):
        arena = DTreeArena.from_tree(root)
        assert len(arena.kinds) == 2 * depth - 1
        counts = arena_counts(arena)
        assert counts[arena.root] == 1
        values = arena_banzhaf(arena)
        assert values[0] == 1 and values[depth - 1] == 1
        assert trees_equal(root, arena.to_tree())
        # Incremental extend: wrap the old root; every old row must be
        # carried (with its counts payload) into the new arena.
        grown = DecompAnd([root, LiteralLeaf(depth)])
        extended = arena.extend(grown)
        assert len(extended.kinds) == len(arena.kinds) + 2
        carried = extended.payloads["counts"]
        assert sum(value is not None for value in carried) >= len(arena.kinds)
        assert arena_counts(extended)[extended.root] == 1
        assert arena_banzhaf(extended)[depth] == 1


def test_v1_shard_round_trips_into_the_arena():
    rng = random.Random(31)
    for _ in range(10):
        function = random_positive_dnf(rng, rng.randint(3, 7),
                                       rng.randint(2, 6), (1, 3))
        tree = compile_dnf(function)
        # Legacy nested-list encoding (what a v1 store shard holds).
        decoded = decode_tree(encode_tree_v1(tree))
        assert trees_equal(tree, decoded)
        # The decoded tree feeds the arena losslessly...
        assert arena_banzhaf(arena_of(decoded)) == exaban_all_objects(tree)
        # ...and re-encodes deterministically in the v2 column format.
        assert encode_tree(decoded) == encode_tree(tree)
        assert decode_tree(encode_tree(decoded)) is not None


def test_arena_shapley_values_are_fractions():
    # Exactness guard: the arena-backed Shapley path must keep returning
    # exact Fractions (the float tier is ranking-only by design).
    function = DNF([(0, 1), (1, 2)], domain=range(3))
    values = shapley_all(function)
    assert all(isinstance(value, Fraction) for value in values.values())
    assert values == seed.shapley_all_recursive(function,
                                                compile_dnf(function))
