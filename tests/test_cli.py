"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, run


@pytest.fixture
def csv_relations(tmp_path):
    r_path = tmp_path / "r.csv"
    r_path.write_text("a\nb\n", encoding="utf-8")
    s_path = tmp_path / "s.csv"
    s_path.write_text("a,1\na,2\nb,1\n\n", encoding="utf-8")
    return str(r_path), str(s_path)


class TestParser:
    def test_facts_argument_format(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--facts", "nopath", "--query", "Q() :- R(X)"])

    def test_query_is_required(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--facts", "R=r.csv"])


class TestRun:
    def test_exact_attribution_output(self, csv_relations):
        r_path, s_path = csv_relations
        output = io.StringIO()
        code = run([
            "--facts", f"R={r_path}", "--facts", f"S={s_path}",
            "--query", "Q(X) :- R(X), S(X, Y)",
        ], output=output)
        text = output.getvalue()
        assert code == 0
        assert "loaded 2 facts into R" in text
        assert "loaded 3 facts into S" in text
        assert "answer ('a',)" in text
        assert "answer ('b',)" in text

    def test_exogenous_and_top(self, csv_relations):
        r_path, s_path = csv_relations
        output = io.StringIO()
        code = run([
            "--facts", f"R={r_path}", "--facts", f"S={s_path}",
            "--exogenous", "S", "--top", "1",
            "--query", "Q() :- R(X), S(X, Y)",
        ], output=output)
        text = output.getvalue()
        assert code == 0
        assert "(exogenous)" in text
        # With S exogenous only the two R facts carry scores; top-1 prints one.
        assert text.count("R(") >= 1

    def test_approximate_method(self, csv_relations):
        r_path, s_path = csv_relations
        output = io.StringIO()
        code = run([
            "--facts", f"R={r_path}", "--facts", f"S={s_path}",
            "--method", "approximate", "--epsilon", "0.2",
            "--query", "Q(X) :- R(X), S(X, Y)",
        ], output=output)
        assert code == 0
        assert "in [" in output.getvalue()

    def test_query_without_answers(self, csv_relations, tmp_path):
        r_path, _ = csv_relations
        empty = tmp_path / "t.csv"
        empty.write_text("zzz\n", encoding="utf-8")
        output = io.StringIO()
        code = run([
            "--facts", f"R={r_path}", "--facts", f"T={empty}",
            "--query", "Q() :- R(X), T(X)",
        ], output=output)
        assert code == 1
        assert "no answers" in output.getvalue()

    def test_missing_facts_errors(self):
        with pytest.raises(SystemExit):
            run(["--query", "Q() :- R(X)"])

    def test_rank_output(self, csv_relations):
        r_path, s_path = csv_relations
        output = io.StringIO()
        code = run([
            "--facts", f"R={r_path}", "--facts", f"S={s_path}",
            "--rank",
            "--query", "Q(X) :- R(X), S(X, Y)",
        ], output=output)
        text = output.getvalue()
        assert code == 0
        # Ranked entries are numbered and carry certified intervals.
        assert "1. R('a'): 3 in [3, 3]" in text
        assert "2. S(" in text

    def test_top_k_output(self, csv_relations):
        r_path, s_path = csv_relations
        output = io.StringIO()
        code = run([
            "--facts", f"R={r_path}", "--facts", f"S={s_path}",
            "--top-k", "1",
            "--query", "Q(X) :- R(X), S(X, Y)",
        ], output=output)
        text = output.getvalue()
        assert code == 0
        assert "1. R('a')" in text
        assert "2." not in text  # truncated to the top 1 per answer

    def test_negative_top_rejected(self, csv_relations):
        r_path, _ = csv_relations
        with pytest.raises(SystemExit):
            run(["--facts", f"R={r_path}", "--top", "-1",
                 "--query", "Q(X) :- R(X)"], output=io.StringIO())

    def test_non_positive_top_k_rejected(self, csv_relations):
        r_path, _ = csv_relations
        with pytest.raises(SystemExit):
            run(["--facts", f"R={r_path}", "--top-k", "0",
                 "--query", "Q(X) :- R(X)"], output=io.StringIO())

    def test_rank_and_top_k_conflict(self, csv_relations):
        r_path, _ = csv_relations
        with pytest.raises(SystemExit):
            run(["--facts", f"R={r_path}", "--rank", "--top-k", "2",
                 "--query", "Q(X) :- R(X)"], output=io.StringIO())

    def test_method_and_rank_conflict(self, csv_relations):
        r_path, _ = csv_relations
        with pytest.raises(SystemExit):
            run(["--facts", f"R={r_path}", "--method", "exact", "--rank",
                 "--query", "Q(X) :- R(X)"], output=io.StringIO())

    def test_top_and_rank_conflict(self, csv_relations):
        # --top would be silently ignored by the ranking output path.
        r_path, _ = csv_relations
        with pytest.raises(SystemExit):
            run(["--facts", f"R={r_path}", "--rank", "--top", "2",
                 "--query", "Q(X) :- R(X)"], output=io.StringIO())

    def test_epsilon_warns_for_exact(self, csv_relations):
        r_path, _ = csv_relations
        output = io.StringIO()
        code = run(["--facts", f"R={r_path}", "--epsilon", "0.2",
                    "--query", "Q(X) :- R(X)"], output=output)
        assert code == 0
        assert "warning: --epsilon is ignored" in output.getvalue()

    def test_epsilon_does_not_warn_for_approximate(self, csv_relations):
        r_path, _ = csv_relations
        output = io.StringIO()
        code = run(["--facts", f"R={r_path}", "--epsilon", "0.2",
                    "--method", "approximate",
                    "--query", "Q(X) :- R(X)"], output=output)
        assert code == 0
        assert "warning" not in output.getvalue()

    def test_integer_coercion(self, tmp_path):
        path = tmp_path / "nums.csv"
        path.write_text("1,2\n3,4\n", encoding="utf-8")
        output = io.StringIO()
        code = run([
            "--facts", f"N={path}",
            "--query", "Q(X) :- N(X, Y), Y >= 3",
        ], output=output)
        assert code == 0
        assert "answer (3,)" in output.getvalue()
        assert "(1,)" not in output.getvalue()


class TestServeCommand:
    def _requests_file(self, tmp_path, lines):
        path = tmp_path / "requests.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return str(path)

    def test_serve_mixed_requests(self, csv_relations, tmp_path, capsys):
        r_path, s_path = csv_relations
        requests = self._requests_file(tmp_path, [
            json.dumps({"op": "attribute", "query": "Q(X) :- R(X), S(X, Y)"}),
            json.dumps({"op": "topk", "query": "Q(X) :- R(X), S(X, Y)",
                        "k": 1}),
        ])
        output = io.StringIO()
        code = run(["serve", "--facts", f"R={r_path}",
                    "--facts", f"S={s_path}", "--requests", requests,
                    "--stats"], output=output)
        assert code == 0
        # stdout is strictly one JSON response per line; every diagnostic
        # (facts loaded, stats) goes to stderr.
        responses = [json.loads(line)
                     for line in output.getvalue().splitlines()]
        assert [r["ok"] for r in responses] == [True, True]
        assert "tier_hit_rates" in capsys.readouterr().err

    def test_serve_bad_request_sets_exit_code(self, csv_relations, tmp_path):
        r_path, _ = csv_relations
        requests = self._requests_file(tmp_path, [
            json.dumps({"op": "nope", "query": "Q(X) :- R(X)"}),
        ])
        output = io.StringIO()
        code = run(["serve", "--facts", f"R={r_path}",
                    "--requests", requests], output=output)
        assert code == 1

    def test_serve_with_store_and_warm_start(self, csv_relations, tmp_path,
                                             capsys):
        r_path, s_path = csv_relations
        store_dir = str(tmp_path / "store")
        requests = self._requests_file(tmp_path, [
            json.dumps({"op": "attribute", "query": "Q(X) :- R(X), S(X, Y)"}),
        ])
        base = ["serve", "--facts", f"R={r_path}", "--facts", f"S={s_path}",
                "--requests", requests, "--store", store_dir]
        assert run(base, output=io.StringIO()) == 0
        output = io.StringIO()
        code = run(base + ["--warm-start", "--stats"], output=output)
        assert code == 0
        diagnostics = capsys.readouterr().err
        assert "warm start:" in diagnostics
        assert '"cache_misses": 0' in diagnostics

    def test_serve_concurrent_workers(self, csv_relations, tmp_path, capsys):
        r_path, s_path = csv_relations
        requests = self._requests_file(tmp_path, [
            json.dumps({"op": "attribute", "query": "Q(X) :- R(X), S(X, Y)",
                        "id": index})
            for index in range(6)
        ] + [
            json.dumps({"op": "rank", "query": "Q(X) :- R(X), S(X, Y)",
                        "id": 6}),
        ])
        output = io.StringIO()
        code = run(["serve", "--facts", f"R={r_path}",
                    "--facts", f"S={s_path}", "--requests", requests,
                    "--workers", "4", "--stats"], output=output)
        assert code == 0
        responses = [json.loads(line)
                     for line in output.getvalue().splitlines()]
        # Responses come back in input order despite the worker fan-out.
        assert [r["id"] for r in responses] == list(range(7))
        assert all(r["ok"] for r in responses)
        assert "coalesced_requests" in capsys.readouterr().err

    def test_serve_no_coalesce_flag(self, csv_relations, tmp_path):
        r_path, s_path = csv_relations
        requests = self._requests_file(tmp_path, [
            json.dumps({"op": "attribute", "query": "Q(X) :- R(X), S(X, Y)"}),
        ] * 3)
        output = io.StringIO()
        code = run(["serve", "--facts", f"R={r_path}",
                    "--facts", f"S={s_path}", "--requests", requests,
                    "--workers", "2", "--no-coalesce", "--batch-max", "1",
                    "--max-queue", "8"], output=output)
        assert code == 0
        assert len(output.getvalue().splitlines()) == 3

    def test_serve_deadline_ms_flag(self, csv_relations, tmp_path):
        r_path, s_path = csv_relations
        requests = self._requests_file(tmp_path, [
            json.dumps({"op": "attribute", "query": "Q(X) :- R(X), S(X, Y)"}),
        ])
        output = io.StringIO()
        code = run(["serve", "--facts", f"R={r_path}",
                    "--facts", f"S={s_path}", "--requests", requests,
                    "--workers", "2", "--deadline-ms", "60000"],
                   output=output)
        assert code == 0
        (response,) = [json.loads(line)
                       for line in output.getvalue().splitlines()]
        assert response["ok"] is True

    def test_concurrency_flags_need_workers(self, csv_relations, tmp_path):
        r_path, _ = csv_relations
        requests = self._requests_file(tmp_path, [])
        for extra in (["--no-coalesce"], ["--deadline-ms", "100"]):
            with pytest.raises(SystemExit):
                run(["serve", "--facts", f"R={r_path}",
                     "--requests", requests] + extra,
                    output=io.StringIO())

    def test_serve_requires_facts(self, tmp_path):
        requests = self._requests_file(tmp_path, [])
        with pytest.raises(SystemExit):
            run(["serve", "--requests", requests], output=io.StringIO())

    def test_warm_start_requires_store(self, csv_relations, tmp_path):
        r_path, _ = csv_relations
        requests = self._requests_file(tmp_path, [])
        with pytest.raises(SystemExit):
            run(["serve", "--facts", f"R={r_path}", "--requests", requests,
                 "--warm-start"], output=io.StringIO())


class TestCacheCommand:
    def test_save_load_stats_roundtrip(self, csv_relations, tmp_path):
        r_path, s_path = csv_relations
        store_dir = str(tmp_path / "store")
        output = io.StringIO()
        code = run(["cache", "save", "--store", store_dir,
                    "--facts", f"R={r_path}", "--facts", f"S={s_path}",
                    "--query", "Q(X) :- R(X), S(X, Y)"], output=output)
        assert code == 0
        assert "saved" in output.getvalue()

        output = io.StringIO()
        assert run(["cache", "stats", "--store", store_dir],
                   output=output) == 0
        stats = json.loads(output.getvalue())
        assert stats["entries"] >= 1

        output = io.StringIO()
        assert run(["cache", "load", "--store", store_dir],
                   output=output) == 0
        assert "loaded" in output.getvalue()

    def test_save_topk_requires_k(self, csv_relations, tmp_path):
        r_path, _ = csv_relations
        with pytest.raises(SystemExit):
            run(["cache", "save", "--store", str(tmp_path / "s"),
                 "--facts", f"R={r_path}", "--query", "Q(X) :- R(X)",
                 "--method", "topk"], output=io.StringIO())

    def test_save_topk_method(self, csv_relations, tmp_path):
        r_path, s_path = csv_relations
        store_dir = str(tmp_path / "store")
        output = io.StringIO()
        code = run(["cache", "save", "--store", store_dir,
                    "--facts", f"R={r_path}", "--facts", f"S={s_path}",
                    "--query", "Q(X) :- R(X), S(X, Y)",
                    "--method", "topk", "--k", "1"], output=output)
        assert code == 0
        assert "saved" in output.getvalue()

    def test_cache_requires_action(self):
        with pytest.raises(SystemExit):
            run(["cache"], output=io.StringIO())

    def test_saved_store_warm_starts_attribution(self, csv_relations,
                                                 tmp_path, capsys):
        """The full explicit warm-start flow: cache save, then serve."""
        r_path, s_path = csv_relations
        store_dir = str(tmp_path / "store")
        assert run(["cache", "save", "--store", store_dir,
                    "--facts", f"R={r_path}", "--facts", f"S={s_path}",
                    "--query", "Q(X) :- R(X), S(X, Y)",
                    "--method", "auto"], output=io.StringIO()) == 0
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"op": "attribute",
                        "query": "Q(X) :- R(X), S(X, Y)"}) + "\n",
            encoding="utf-8")
        output = io.StringIO()
        code = run(["serve", "--facts", f"R={r_path}",
                    "--facts", f"S={s_path}",
                    "--requests", str(requests), "--store", store_dir,
                    "--stats"], output=output)
        assert code == 0
        assert '"cache_misses": 0' in capsys.readouterr().err
