"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, run


@pytest.fixture
def csv_relations(tmp_path):
    r_path = tmp_path / "r.csv"
    r_path.write_text("a\nb\n", encoding="utf-8")
    s_path = tmp_path / "s.csv"
    s_path.write_text("a,1\na,2\nb,1\n\n", encoding="utf-8")
    return str(r_path), str(s_path)


class TestParser:
    def test_facts_argument_format(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--facts", "nopath", "--query", "Q() :- R(X)"])

    def test_query_is_required(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--facts", "R=r.csv"])


class TestRun:
    def test_exact_attribution_output(self, csv_relations):
        r_path, s_path = csv_relations
        output = io.StringIO()
        code = run([
            "--facts", f"R={r_path}", "--facts", f"S={s_path}",
            "--query", "Q(X) :- R(X), S(X, Y)",
        ], output=output)
        text = output.getvalue()
        assert code == 0
        assert "loaded 2 facts into R" in text
        assert "loaded 3 facts into S" in text
        assert "answer ('a',)" in text
        assert "answer ('b',)" in text

    def test_exogenous_and_top(self, csv_relations):
        r_path, s_path = csv_relations
        output = io.StringIO()
        code = run([
            "--facts", f"R={r_path}", "--facts", f"S={s_path}",
            "--exogenous", "S", "--top", "1",
            "--query", "Q() :- R(X), S(X, Y)",
        ], output=output)
        text = output.getvalue()
        assert code == 0
        assert "(exogenous)" in text
        # With S exogenous only the two R facts carry scores; top-1 prints one.
        assert text.count("R(") >= 1

    def test_approximate_method(self, csv_relations):
        r_path, s_path = csv_relations
        output = io.StringIO()
        code = run([
            "--facts", f"R={r_path}", "--facts", f"S={s_path}",
            "--method", "approximate", "--epsilon", "0.2",
            "--query", "Q(X) :- R(X), S(X, Y)",
        ], output=output)
        assert code == 0
        assert "in [" in output.getvalue()

    def test_query_without_answers(self, csv_relations, tmp_path):
        r_path, _ = csv_relations
        empty = tmp_path / "t.csv"
        empty.write_text("zzz\n", encoding="utf-8")
        output = io.StringIO()
        code = run([
            "--facts", f"R={r_path}", "--facts", f"T={empty}",
            "--query", "Q() :- R(X), T(X)",
        ], output=output)
        assert code == 1
        assert "no answers" in output.getvalue()

    def test_missing_facts_errors(self):
        with pytest.raises(SystemExit):
            run(["--query", "Q() :- R(X)"])

    def test_integer_coercion(self, tmp_path):
        path = tmp_path / "nums.csv"
        path.write_text("1,2\n3,4\n", encoding="utf-8")
        output = io.StringIO()
        code = run([
            "--facts", f"N={path}",
            "--query", "Q(X) :- N(X, Y), Y >= 3",
        ], output=output)
        assert code == 0
        assert "answer (3,)" in output.getvalue()
        assert "(1,)" not in output.getvalue()
