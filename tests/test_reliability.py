"""Unit tests for the reliability subsystem (repro.reliability).

Each primitive is pinned in isolation -- with injected clocks, sleeps
and RNGs, so nothing here waits on wall-clock time except the (tiny)
real process pools of the supervision tests:

* :mod:`repro.reliability.faults` -- deterministic fault plans: rule
  eligibility (``after``/``times``/``probability``), seeded replay,
  spec round-trips, the environment-variable loading path, and the
  injected-exception taxonomy (real base class + ``FaultInjected``).
* :class:`RetryPolicy` -- the backoff schedule and the retry loop.
* :class:`CircuitBreaker` -- the closed/open/half-open state machine.
* :class:`SupervisedPool` -- crash/hang recovery with exactly-once
  result delivery.
* :class:`ResilientStore` -- degradation policy around a flaky store.
"""

import errno
import os
import random
import time

import pytest

from repro.engine import Engine, EngineConfig
from repro.engine.store import MemoryStore
from repro.reliability import (
    CircuitBreaker,
    FaultInjected,
    FaultPlan,
    FaultRule,
    ResilientStore,
    RetryPolicy,
    SupervisedPool,
    TransientStoreError,
    WorkerCrash,
    faults,
    wrap_store,
)
from repro.reliability.breaker import CLOSED, HALF_OPEN, OPEN
from repro.reliability.errors import RetryBudgetExceeded


# --------------------------------------------------------------------- #
# Fault plans
# --------------------------------------------------------------------- #


def _fire_pattern(plan: FaultPlan, site: str, calls: int):
    """Which of ``calls`` consecutive checks raised, as a bool list."""
    pattern = []
    with faults.installed(plan):
        for _ in range(calls):
            try:
                faults.check(site)
                pattern.append(False)
            except Exception:
                pattern.append(True)
    return pattern


class TestFaultRules:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule(site="store.nonsense")

    def test_unknown_error_class_rejected(self):
        with pytest.raises(ValueError, match="unknown fault error class"):
            FaultRule(site="store.flush", error="SegfaultError")

    def test_unknown_errno_name_rejected(self):
        with pytest.raises(ValueError, match="unknown errno name"):
            FaultRule(site="store.flush", errno="ENOSUCHTHING")

    def test_after_and_times_bound_the_firing_window(self):
        plan = FaultPlan([FaultRule(site="store.flush", after=2, times=2)])
        assert _fire_pattern(plan, "store.flush", 6) == [
            False, False, True, True, False, False]

    def test_injected_error_carries_base_class_and_provenance(self):
        plan = FaultPlan([FaultRule(site="store.read", error="OSError",
                                    errno="ENOSPC", times=1)])
        with faults.installed(plan):
            with pytest.raises(OSError) as excinfo:
                faults.check("store.read")
        assert isinstance(excinfo.value, FaultInjected)
        assert excinfo.value.errno == errno.ENOSPC
        # Ordinary handlers keep matching the real class.
        assert isinstance(excinfo.value, OSError)

    def test_delay_action_does_not_raise(self):
        plan = FaultPlan([FaultRule(site="serve.batch", action="delay",
                                    delay_seconds=0.0)])
        assert _fire_pattern(plan, "serve.batch", 2) == [False, False]
        assert plan.fired == {"serve.batch": 2}

    def test_probability_draws_replay_bit_identically(self):
        def run(seed):
            plan = FaultPlan(
                [FaultRule(site="pool.task", probability=0.5)], seed=seed)
            return _fire_pattern(plan, "pool.task", 32)

        assert run(7) == run(7)
        assert run(7) != run(8)  # the seed genuinely steers the draws
        assert any(run(7)) and not all(run(7))

    def test_rules_draw_from_independent_streams(self):
        """One rule's probability draws never perturb another's."""
        rules = [FaultRule(site="store.flush", probability=0.5),
                 FaultRule(site="store.read", probability=0.5)]
        # Plan A: store.read checks interleaved with store.flush checks.
        with faults.installed(FaultPlan(rules, seed=3)):
            interleaved = []
            for _ in range(24):
                try:
                    faults.check("store.flush")
                except Exception:
                    pass
                try:
                    faults.check("store.read")
                    interleaved.append(False)
                except Exception:
                    interleaved.append(True)
        # Plan B (identical spec): store.read checks alone.  The read
        # rule's schedule must not depend on whether the flush rule drew.
        alone = _fire_pattern(FaultPlan(rules, seed=3), "store.read", 24)
        assert interleaved == alone

    def test_spec_round_trip(self):
        plan = FaultPlan(
            [FaultRule(site="store.flush", errno="ENOSPC", after=1, times=2),
             FaultRule(site="pool.task", action="kill",
                       once_path="/tmp/sentinel"),
             FaultRule(site="serve.batch", action="delay",
                       delay_seconds=0.01, probability=0.25)],
            seed=42)
        clone = FaultPlan.from_spec(plan.to_json())
        assert clone.to_spec() == plan.to_spec()
        assert clone.seed == 42

    def test_once_path_fires_for_exactly_one_claimant(self, tmp_path):
        sentinel = str(tmp_path / "once")
        plan = FaultPlan([FaultRule(site="store.read",
                                    once_path=sentinel)])
        assert _fire_pattern(plan, "store.read", 4) == [
            True, False, False, False]
        assert os.path.exists(sentinel)


class TestAmbientPlan:
    def test_check_without_plan_is_a_no_op(self):
        for site in faults.KNOWN_SITES:
            faults.check(site)  # must not raise

    def test_installed_context_scopes_the_plan(self):
        spec = {"rules": [{"site": "store.flush"}]}
        with faults.installed(spec):
            with pytest.raises(OSError):
                faults.check("store.flush")
        faults.check("store.flush")  # cleared on exit

    def test_env_var_loads_once(self, monkeypatch):
        plan = FaultPlan([FaultRule(site="compile.step", times=1)])
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        monkeypatch.setattr(faults, "_ACTIVE", None)
        monkeypatch.setattr(faults, "_env_checked", False)
        with pytest.raises(OSError):
            faults.check("compile.step")
        faults.check("compile.step")  # times=1 exhausted
        assert faults.active() is not None

    def test_engine_config_validates_plans_eagerly(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            EngineConfig(fault_plan={"rules": [{"site": "bogus"}]})

    def test_engine_installs_its_plan(self):
        plan = {"rules": [{"site": "compile.step", "times": 1}],
                "seed": 1}
        engine = Engine(EngineConfig(method="exact", fault_plan=plan))
        assert faults.active() is not None
        from repro.boolean.dnf import DNF
        with pytest.raises(OSError) as excinfo:
            engine.attribute_lineages([DNF([[0, 1]])])
        assert isinstance(excinfo.value, FaultInjected)


# --------------------------------------------------------------------- #
# Retry policy
# --------------------------------------------------------------------- #


class TestRetryPolicy:
    def test_schedule_is_bounded_exponential(self):
        policy = RetryPolicy(attempts=5, base_delay=0.01, multiplier=2.0,
                             max_delay=0.05, jitter=0.0)
        assert [policy.delay(i) for i in range(4)] == [
            0.01, 0.02, 0.04, 0.05]

    def test_jitter_stays_within_the_band(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=1.0, max_delay=1.0,
                             jitter=0.2)
        rng = random.Random(0)
        for i in range(100):
            assert 0.08 <= policy.delay(0, rng=rng) <= 0.12

    def test_retries_then_succeeds(self):
        calls = {"n": 0}
        sleeps = []
        retried = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "done"

        policy = RetryPolicy(attempts=3, jitter=0.0)
        result = policy.call(flaky, sleep=sleeps.append,
                             on_retry=lambda i, e: retried.append(i))
        assert result == "done"
        assert calls["n"] == 3
        assert retried == [0, 1]
        assert sleeps == [policy.delay(0), policy.delay(1)]

    def test_terminal_failure_reraises_unchanged(self):
        error = TransientStoreError("persistent")

        def always():
            raise error

        with pytest.raises(TransientStoreError) as excinfo:
            RetryPolicy(attempts=2).call(always, sleep=lambda _s: None)
        assert excinfo.value is error

    def test_wrap_terminal_attaches_the_cause(self):
        def always():
            raise OSError("disk gone")

        with pytest.raises(RetryBudgetExceeded) as excinfo:
            RetryPolicy(attempts=2).call(always, sleep=lambda _s: None,
                                         wrap_terminal=True)
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_non_transient_errors_propagate_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("a bug, not an outage")

        with pytest.raises(ValueError):
            RetryPolicy(attempts=5).call(broken, sleep=lambda _s: None)
        assert calls["n"] == 1


# --------------------------------------------------------------------- #
# Circuit breaker
# --------------------------------------------------------------------- #


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=_Clock())
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        breaker.record_success()  # resets the consecutive count
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # the tripping call
        assert breaker.state == OPEN
        assert breaker.allow() is False
        assert breaker.trips == 1

    def test_half_open_grants_one_probe(self):
        clock = _Clock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.allow() is False
        clock.now = 10.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow() is True   # the probe slot
        assert breaker.allow() is False  # everyone else waits the verdict

    def test_probe_success_reattaches(self):
        clock = _Clock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                                 clock=clock)
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.reattaches == 1
        assert breaker.allow()

    def test_probe_failure_rearms_the_timer(self):
        clock = _Clock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                                 clock=clock)
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        assert breaker.record_failure() is True  # probe failed: re-open
        assert breaker.state == OPEN
        clock.now = 9.0
        assert breaker.allow() is False  # fresh timer, not the old one
        clock.now = 10.0
        assert breaker.allow() is True

    def test_threshold_zero_disables(self):
        breaker = CircuitBreaker(failure_threshold=0)
        for _ in range(100):
            assert breaker.record_failure() is False
        assert breaker.allow() is True
        assert breaker.state == CLOSED

    def test_snapshot_reports_the_machine(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=_Clock())
        breaker.record_failure()
        snapshot = breaker.snapshot()
        assert snapshot == {"state": CLOSED, "failures": 1, "trips": 0,
                            "reattaches": 0}


# --------------------------------------------------------------------- #
# Supervised pool
# --------------------------------------------------------------------- #
# The worker functions live at module scope so the (forked) pool
# processes can unpickle them by reference.


def _double(value):
    return value * 2


def _crash_once(payload):
    sentinel, value = payload
    try:
        os.close(os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        os._exit(1)  # hard worker death, exactly once across the pool
    except FileExistsError:
        pass
    return value * 2


def _always_crash(_value):
    os._exit(1)


def _task_error(value):
    raise ValueError(f"task-level failure on {value}")


def _hang_once_then_return(payload):
    sentinel, value = payload
    try:
        os.close(os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        time.sleep(60)  # the watchdog must cut this short
    except FileExistsError:
        pass
    return value * 2


class TestSupervisedPool:
    def test_yields_every_result_exactly_once(self):
        pool = SupervisedPool(_double, max_workers=2)
        results = dict(pool.run([1, 2, 3, 4, 5]))
        assert results == {0: 2, 1: 4, 2: 6, 3: 8, 4: 10}
        assert pool.restarts == 0

    def test_worker_crash_rebuilds_and_resubmits(self, tmp_path):
        sentinel = str(tmp_path / "crash-once")
        pool = SupervisedPool(_crash_once, max_workers=2, max_restarts=2)
        payloads = [(sentinel, value) for value in range(6)]
        results = dict(pool.run(payloads))
        assert results == {i: i * 2 for i in range(6)}
        assert pool.crashes >= 1
        assert pool.restarts == pool.crashes + pool.hangs

    def test_restart_budget_exhaustion_raises_worker_crash(self):
        events = []
        pool = SupervisedPool(_always_crash, max_workers=1, max_restarts=1,
                              on_crash=events.append)
        with pytest.raises(WorkerCrash, match="restart budget"):
            list(pool.run([1, 2]))
        assert pool.crashes == 2  # initial attempt + one permitted restart
        assert events == ["crash", "crash"]

    def test_task_exceptions_are_not_supervision_events(self):
        pool = SupervisedPool(_task_error, max_workers=1, max_restarts=0)
        with pytest.raises(ValueError, match="task-level failure"):
            list(pool.run([7]))
        assert pool.crashes == 0
        assert pool.restarts == 0

    def test_watchdog_restarts_a_hung_worker(self, tmp_path):
        sentinel = str(tmp_path / "hang-once")
        pool = SupervisedPool(_hang_once_then_return, max_workers=1,
                              max_restarts=2, task_timeout=1.0)
        payloads = [(sentinel, value) for value in range(2)]
        results = dict(pool.run(payloads))
        assert results == {0: 0, 1: 2}
        assert pool.hangs >= 1


# --------------------------------------------------------------------- #
# Resilient store
# --------------------------------------------------------------------- #


class _FlakyStore:
    """In-memory store whose next ``fail_next`` operations raise."""

    def __init__(self):
        self.inner = MemoryStore()
        self.fail_next = 0
        self.error = OSError
        self.calls = 0

    def _maybe_fail(self):
        self.calls += 1
        if self.fail_next > 0:
            self.fail_next -= 1
            raise self.error("injected store failure")

    def get(self, key):
        self._maybe_fail()
        return self.inner.get(key)

    def put(self, key, value):
        self._maybe_fail()
        self.inner.put(key, value)

    def flush(self):
        self._maybe_fail()
        self.inner.flush()

    def stats(self):
        return self.inner.stats()

    def __len__(self):
        return len(self.inner)


def _fast_retry(attempts):
    return RetryPolicy(attempts=attempts, base_delay=0.0, jitter=0.0)


class TestResilientStore:
    def test_transient_read_failure_is_retried(self):
        counters = []
        flaky = _FlakyStore()
        flaky.inner.put("k", "v")
        store = ResilientStore(flaky, retry=_fast_retry(3),
                               on_counter=lambda **d: counters.append(d))
        flaky.fail_next = 2
        assert store.get("k") == "v"
        assert counters == [{"store_retries": 1}, {"store_retries": 1}]

    def test_terminal_read_failure_degrades_to_a_miss(self):
        flaky = _FlakyStore()
        flaky.inner.put("k", "v")
        store = ResilientStore(flaky, retry=_fast_retry(2))
        flaky.fail_next = 10
        assert store.get("k") is None  # a miss, never an exception

    def test_breaker_trip_stops_touching_the_backend(self):
        counters = []
        clock = _Clock()
        flaky = _FlakyStore()
        store = ResilientStore(
            flaky, retry=_fast_retry(1),
            breaker=CircuitBreaker(failure_threshold=2, reset_timeout=5.0,
                                   clock=clock),
            on_counter=lambda **d: counters.append(d))
        flaky.fail_next = 10
        store.get("a")
        store.get("b")  # second terminal failure trips the breaker
        assert {"store_degraded": 1} in counters
        touched = flaky.calls
        store.get("c")
        store.flush()
        assert flaky.calls == touched  # open breaker: no backend I/O

    def test_half_open_probe_reattaches_the_store(self):
        clock = _Clock()
        flaky = _FlakyStore()
        flaky.inner.put("k", "v")
        store = ResilientStore(
            flaky, retry=_fast_retry(1),
            breaker=CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                                   clock=clock))
        flaky.fail_next = 1
        store.get("k")  # trips
        assert store.get("k") is None  # open: degraded miss
        clock.now = 5.0
        assert store.get("k") == "v"  # the probe wins and reattaches
        assert store.breaker.state == CLOSED
        assert store.breaker.reattaches == 1

    def test_flush_failure_is_swallowed_and_pending_survives(self):
        flaky = _FlakyStore()
        store = ResilientStore(flaky, retry=_fast_retry(1))
        store.put("k", "v")
        flaky.fail_next = 1
        store.flush()  # swallowed; the entry stays buffered inside
        assert store.get("k") == "v"
        store.flush()  # the fault cleared: persists normally
        assert flaky.inner.get("k") == "v"

    def test_non_store_verbs_delegate(self):
        flaky = _FlakyStore()
        store = ResilientStore(flaky)
        store.put("k", "v")
        assert len(store) == 1
        assert store.stats()["reliability"]["state"] == CLOSED
        assert "ResilientStore" in repr(store)

    def test_wrap_store_is_idempotent_and_has_an_escape_hatch(self):
        inner = MemoryStore()
        wrapped = wrap_store(inner)
        assert isinstance(wrapped, ResilientStore)
        assert wrap_store(wrapped) is wrapped
        assert wrap_store(None) is None
        assert wrap_store(inner, retries=0, breaker_threshold=0) is inner

    def test_engine_wraps_its_store_by_default(self):
        engine = Engine(EngineConfig(store=MemoryStore()))
        assert isinstance(engine.store, ResilientStore)
        bare = Engine(EngineConfig(store=MemoryStore(), store_retries=0,
                                   breaker_threshold=0))
        assert isinstance(bare.store, MemoryStore)
