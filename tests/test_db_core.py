"""Tests for schemas, databases, queries and the hierarchy classification."""

import pytest

from repro.db.database import Database, Fact
from repro.db.hierarchy import classify_query, is_hierarchical, is_self_join_free
from repro.db.query import (
    Atom,
    ConjunctiveQuery,
    QueryVariable,
    Selection,
    UnionQuery,
    as_union,
    atom,
    var,
)
from repro.db.schema import RelationSymbol, Schema


class TestSchema:
    def test_relation_symbol(self):
        symbol = RelationSymbol("R", 2)
        assert symbol.columns == ("col0", "col1")
        assert repr(symbol) == "R/2"

    def test_relation_symbol_validation(self):
        with pytest.raises(ValueError):
            RelationSymbol("R", -1)
        with pytest.raises(ValueError):
            RelationSymbol("R", 2, ("only_one",))

    def test_schema_declare_and_lookup(self):
        schema = Schema()
        schema.declare("R", 2)
        assert "R" in schema
        assert schema.relation("R").arity == 2
        assert len(schema) == 1

    def test_schema_redeclare_conflict(self):
        schema = Schema([RelationSymbol("R", 2)])
        schema.declare("R", 2)  # idempotent
        with pytest.raises(ValueError):
            schema.declare("R", 3)

    def test_unknown_relation(self):
        with pytest.raises(KeyError):
            Schema().relation("missing")


class TestDatabase:
    def test_add_and_lookup_facts(self):
        database = Database()
        fact = database.add_fact("R", ("a", 1))
        assert database.contains_fact("R", ("a", 1))
        assert database.is_endogenous(fact)
        assert database.rows("R") == (("a", 1),)
        assert database.num_facts() == 1

    def test_variable_registry_roundtrip(self):
        database = Database()
        facts = database.add_facts("R", [("a",), ("b",), ("c",)])
        for fact in facts:
            variable = database.variable_of(fact)
            assert database.fact_of(variable) == fact
        assert database.endogenous_variables() == [0, 1, 2]

    def test_exogenous_facts_have_no_variable(self):
        database = Database()
        fact = database.add_fact("S", ("a", "b"), endogenous=False)
        assert database.is_exogenous(fact)
        with pytest.raises(KeyError):
            database.variable_of(fact)
        assert database.exogenous_facts() == [fact]

    def test_duplicate_insertion_is_idempotent(self):
        database = Database()
        database.add_fact("R", ("a",))
        database.add_fact("R", ("a",))
        assert database.num_facts() == 1

    def test_status_conflict_rejected(self):
        database = Database()
        database.add_fact("R", ("a",))
        with pytest.raises(ValueError):
            database.add_fact("R", ("a",), endogenous=False)

    def test_arity_mismatch_rejected(self):
        database = Database()
        database.add_fact("R", ("a",))
        with pytest.raises(ValueError):
            database.add_fact("R", ("a", "b"))

    def test_unknown_variable_lookup(self):
        with pytest.raises(KeyError):
            Database().fact_of(0)

    def test_iteration_and_len(self):
        database = Database()
        database.add_fact("R", ("a",))
        database.add_fact("S", ("b",), endogenous=False)
        assert len(database) == 2
        assert len(list(database)) == 2


class TestQueries:
    def test_atom_variables(self):
        a = atom("R", var("X"), "const", var("Y"))
        assert a.variables() == frozenset({var("X"), var("Y")})

    def test_query_requires_atoms(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery((), head=())

    def test_head_variable_must_occur(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery((atom("R", var("X")),), head=(var("Z"),))

    def test_selection_validation(self):
        with pytest.raises(ValueError):
            Selection(var("X"), "~", 3)
        query_atom = atom("R", var("X"))
        with pytest.raises(ValueError):
            ConjunctiveQuery((query_atom,), selections=(Selection(var("Z"), "<", 1),))

    def test_selection_holds(self):
        assert Selection(var("X"), ">=", 3).holds(4)
        assert not Selection(var("X"), "=", 3).holds(4)
        assert Selection(var("X"), "!=", 3).holds(4)

    def test_free_and_bound_variables(self):
        query = ConjunctiveQuery(
            (atom("R", var("X"), var("Y")),), head=(var("X"),))
        assert query.free_variables() == frozenset({var("X")})
        assert query.bound_variables() == frozenset({var("Y")})
        assert not query.is_boolean()

    def test_atoms_with(self):
        query = ConjunctiveQuery(
            (atom("R", var("X")), atom("S", var("X"), var("Y"))))
        assert len(query.atoms_with(var("X"))) == 2
        assert len(query.atoms_with(var("Y"))) == 1

    def test_residual_query(self):
        query = ConjunctiveQuery(
            (atom("R", var("X"), var("Y")),), head=(var("X"),),
            selections=(Selection(var("X"), "=", "a"),))
        residual = query.residual(("a",))
        assert residual.is_boolean()
        assert residual.atoms[0].terms == ("a", var("Y"))
        assert residual.selections == ()

    def test_residual_rejects_violating_values(self):
        query = ConjunctiveQuery(
            (atom("R", var("X")),), head=(var("X"),),
            selections=(Selection(var("X"), "=", "a"),))
        with pytest.raises(ValueError):
            query.residual(("b",))

    def test_union_query_arity_check(self):
        q1 = ConjunctiveQuery((atom("R", var("X")),), head=(var("X"),))
        q2 = ConjunctiveQuery((atom("S", var("Y")),), head=())
        with pytest.raises(ValueError):
            UnionQuery((q1, q2))
        union = as_union(q1)
        assert union.head_arity() == 1
        assert as_union(union) is union


class TestHierarchy:
    def _query(self, *atoms_):
        return ConjunctiveQuery(tuple(atoms_))

    def test_hierarchical_example5(self):
        x, y, z, v, u = (var(n) for n in "XYZVU")
        query = self._query(atom("R", x, y, z), atom("S", x, y, v),
                            atom("T", x, u))
        assert is_hierarchical(query)
        assert classify_query(query) == "hierarchical"

    def test_non_hierarchical_example5(self):
        x, y = var("X"), var("Y")
        query = self._query(atom("R", x), atom("S", x, y), atom("T", y))
        assert not is_hierarchical(query)
        assert classify_query(query) == "non-hierarchical"

    def test_self_join_detection(self):
        x, y = var("X"), var("Y")
        query = self._query(atom("R", x), atom("R", y))
        assert not is_self_join_free(query)
        assert classify_query(query) == "has-self-joins"

    def test_existential_only_hierarchy(self):
        # Free variables are fixed per answer; only bound variables matter.
        x, y = var("X"), var("Y")
        query = ConjunctiveQuery(
            (atom("R", x), atom("S", x, y), atom("T", y)), head=(x,))
        assert not is_hierarchical(query)
        assert is_hierarchical(query, existential_only=True)
