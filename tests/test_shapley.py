"""Tests for exact Shapley values and the Appendix D divergence example."""

from fractions import Fraction

import pytest

from repro.boolean.assignments import critical_set_counts
from repro.boolean.dnf import DNF
from repro.core.shapley import (
    banzhaf_from_critical_counts,
    critical_counts_exact,
    shapley_all,
    shapley_brute_force,
    shapley_exact,
    shapley_from_critical_counts,
)
from repro.db.lineage import lineage_of_boolean_query
from repro.db.reductions import appendix_d_database, appendix_d_query
from repro.workloads.generators import random_positive_dnf


class TestCriticalCounts:
    def test_match_brute_force(self, rng):
        for _ in range(25):
            function = random_positive_dnf(rng, rng.randint(2, 6),
                                           rng.randint(1, 6), (1, 3))
            for variable in sorted(function.variables):
                assert (critical_counts_exact(function, variable)
                        == critical_set_counts(function, variable))

    def test_unknown_variable(self):
        with pytest.raises(ValueError):
            critical_counts_exact(DNF([[0]]), 5)

    def test_silent_variable_counts_are_zero(self):
        function = DNF([[0]], domain=[0, 1])
        assert critical_counts_exact(function, 1) == [0, 0]

    def test_banzhaf_from_counts(self, example9_dnf):
        counts = critical_counts_exact(example9_dnf, 0)
        assert banzhaf_from_critical_counts(counts) == 3


class TestShapley:
    def test_matches_brute_force(self, rng):
        for _ in range(20):
            function = random_positive_dnf(rng, rng.randint(2, 6),
                                           rng.randint(1, 5), (1, 3))
            for variable in sorted(function.variables):
                assert (shapley_exact(function, variable)
                        == shapley_brute_force(function, variable))

    def test_efficiency_axiom(self, rng):
        # Shapley values of all variables sum to phi(all) - phi(empty) = 1
        # for any satisfiable positive function not satisfied by the empty set.
        for _ in range(15):
            function = random_positive_dnf(rng, rng.randint(2, 6),
                                           rng.randint(1, 5), (1, 3))
            total = sum(shapley_all(function).values())
            assert total == 1

    def test_single_literal(self):
        assert shapley_exact(DNF([[0]]), 0) == 1

    def test_symmetric_or(self):
        function = DNF([[0], [1]])
        assert shapley_exact(function, 0) == Fraction(1, 2)
        assert shapley_exact(function, 1) == Fraction(1, 2)

    def test_shapley_from_counts_helper(self):
        counts = [1, 0]
        assert shapley_from_critical_counts(counts, 2) == Fraction(1, 2)


class TestAppendixD:
    def test_banzhaf_and_shapley_rankings_diverge(self):
        database, r_a1, r_a2 = appendix_d_database()
        query = appendix_d_query()
        lineage = lineage_of_boolean_query(query, database, domain="database")
        v1 = database.variable_of(r_a1)
        v2 = database.variable_of(r_a2)

        counts_a1 = critical_counts_exact(lineage, v1)
        counts_a2 = critical_counts_exact(lineage, v2)
        banzhaf_a1 = banzhaf_from_critical_counts(counts_a1)
        banzhaf_a2 = banzhaf_from_critical_counts(counts_a2)
        shapley_a1 = shapley_from_critical_counts(counts_a1, 18)
        shapley_a2 = shapley_from_critical_counts(counts_a2, 18)

        # The exact Banzhaf totals reported in Appendix D.
        assert banzhaf_a1 == 62_867
        assert banzhaf_a2 == 60_435
        assert banzhaf_a1 > banzhaf_a2
        # The Shapley ranking is reversed.  The paper's per-row Shapley
        # contributions (rounded to 4 decimals) sum to 0.2729 and 0.2766;
        # compare with a tolerance that absorbs the rounding.
        assert shapley_a1 < shapley_a2
        assert abs(float(shapley_a1) - 0.2729) < 2e-3
        assert abs(float(shapley_a2) - 0.2766) < 2e-3

    def test_appendix_d_critical_set_table_row(self):
        # Spot-check a row of the Appendix D table: k = 2 has 9 and 16 sets.
        database, r_a1, r_a2 = appendix_d_database()
        lineage = lineage_of_boolean_query(appendix_d_query(), database,
                                           domain="database")
        counts_a1 = critical_counts_exact(lineage, database.variable_of(r_a1))
        counts_a2 = critical_counts_exact(lineage, database.variable_of(r_a2))
        assert counts_a1[2] == 9
        assert counts_a2[2] == 16
        assert counts_a1[16] == 1
        assert counts_a2[16] == 1
