"""Tests for d-tree nodes, the exhaustive compiler and the incremental compiler."""

import pytest

from repro.boolean.assignments import count_models, enumerate_assignments
from repro.boolean.dnf import DNF
from repro.core.exaban import model_count
from repro.dtree.compile import (
    CompilationBudget,
    CompilationLimitReached,
    compile_dnf,
)
from repro.dtree.heuristics import (
    HEURISTICS,
    select_first,
    select_max_depth_reduction,
    select_most_frequent,
)
from repro.dtree.incremental import IncrementalCompiler, node_for
from repro.dtree.nodes import (
    DecompAnd,
    DecompOr,
    DNFLeaf,
    ExclusiveOr,
    FalseLeaf,
    LiteralLeaf,
    TrueLeaf,
    pretty_print,
)
from repro.workloads.generators import random_positive_dnf


class TestNodes:
    def test_leaf_domains(self):
        assert TrueLeaf([1, 2]).domain == frozenset({1, 2})
        assert FalseLeaf().domain == frozenset()
        assert LiteralLeaf(3).domain == frozenset({3})

    def test_literal_evaluation(self):
        assert LiteralLeaf(1).evaluate(frozenset({1}))
        assert not LiteralLeaf(1).evaluate(frozenset())
        assert LiteralLeaf(1, negated=True).evaluate(frozenset())

    def test_inner_node_domain_union(self):
        node = DecompAnd([LiteralLeaf(1), LiteralLeaf(2)])
        assert node.domain == frozenset({1, 2})
        assert not node.is_leaf()
        assert node.num_nodes() == 3

    def test_parent_pointers(self):
        left, right = LiteralLeaf(1), LiteralLeaf(2)
        node = DecompOr([left, right])
        assert left.parent is node
        assert right.parent is node

    def test_replace_child(self):
        left, right = LiteralLeaf(1), LiteralLeaf(2)
        node = DecompOr([left, right])
        replacement = LiteralLeaf(1, negated=True)
        node.replace_child(left, replacement)
        assert replacement.parent is node
        assert left.parent is None
        with pytest.raises(ValueError):
            node.replace_child(left, replacement)

    def test_validate_disjointness(self):
        node = DecompAnd([LiteralLeaf(1), LiteralLeaf(1)])
        with pytest.raises(ValueError):
            node.validate()

    def test_validate_exclusive_domains(self):
        node = ExclusiveOr([LiteralLeaf(1), LiteralLeaf(2)])
        with pytest.raises(ValueError):
            node.validate()

    def test_dnf_leaf_rejects_trivial(self):
        with pytest.raises(ValueError):
            DNFLeaf(DNF.false([0]))
        with pytest.raises(ValueError):
            DNFLeaf(DNF([[0]]))

    def test_invalidate_clears_ancestor_caches(self):
        leaf = LiteralLeaf(1)
        node = DecompAnd([leaf, LiteralLeaf(2)])
        node.cache_set("k", 1)
        leaf.cache_set("k", 2)
        leaf.invalidate()
        assert node.cache_get("k") is None
        assert leaf.cache_get("k") is None

    def test_pretty_print(self):
        node = DecompAnd([LiteralLeaf(1), LiteralLeaf(2)])
        text = pretty_print(node)
        assert "⊙" in text and "x1" in text


def _assert_equivalent(tree, function: DNF) -> None:
    for assignment in enumerate_assignments(function.domain):
        assert tree.evaluate(assignment) == function.evaluate(assignment)


class TestCompile:
    def test_example9_tree_is_complete(self, example9_dnf):
        tree = compile_dnf(example9_dnf)
        assert tree.is_complete()
        tree.validate()
        assert tree.domain == example9_dnf.domain

    def test_compilation_preserves_semantics(self, rng):
        for _ in range(40):
            function = random_positive_dnf(rng, rng.randint(1, 6),
                                           rng.randint(1, 6), (1, 3))
            tree = compile_dnf(function)
            tree.validate()
            assert tree.is_complete()
            _assert_equivalent(tree, function)

    def test_compilation_preserves_model_count(self, rng):
        for _ in range(40):
            function = random_positive_dnf(rng, rng.randint(1, 7),
                                           rng.randint(1, 6), (1, 3))
            assert model_count(compile_dnf(function)) == count_models(function)

    def test_false_and_literal(self):
        assert isinstance(compile_dnf(DNF.false([0, 1])), FalseLeaf)
        assert isinstance(compile_dnf(DNF([[5]])), LiteralLeaf)

    def test_silent_variables_get_true_leaf(self):
        tree = compile_dnf(DNF([[0]], domain=[0, 1, 2]))
        assert tree.domain == frozenset({0, 1, 2})
        assert model_count(tree) == 4

    def test_absorption_before_decomposition(self):
        # (x0) absorbs (x0 & x1): variable x1 becomes silent.
        function = DNF([[0], [0, 1]])
        tree = compile_dnf(function)
        assert tree.domain == frozenset({0, 1})
        assert model_count(tree) == 2

    def test_hierarchical_lineage_needs_no_shannon(self):
        # Lineage of a hierarchical query decomposes by factoring/partitioning.
        budget = CompilationBudget(max_shannon_steps=0)
        function = DNF([[0, 1, 4], [0, 2, 4], [0, 3, 4]])
        tree = compile_dnf(function, budget=budget)
        assert tree.is_complete()

    def test_non_hierarchical_needs_shannon(self):
        budget = CompilationBudget(max_shannon_steps=0)
        function = DNF([[0, 1], [1, 2], [2, 3]])
        with pytest.raises(CompilationLimitReached):
            compile_dnf(function, budget=budget)

    def test_budget_counts_shannon_steps(self):
        budget = CompilationBudget()
        compile_dnf(DNF([[0, 1], [1, 2], [2, 3]]), budget=budget)
        assert budget.shannon_steps >= 1

    def test_all_heuristics_produce_equivalent_trees(self, rng):
        function = random_positive_dnf(rng, 6, 6, (2, 3))
        for heuristic in HEURISTICS.values():
            tree = compile_dnf(function, heuristic=heuristic)
            _assert_equivalent(tree, function)


class TestHeuristics:
    def test_most_frequent(self):
        function = DNF([[0, 1], [0, 2], [3]])
        assert select_most_frequent(function) == 0

    def test_most_frequent_tie_break(self):
        assert select_most_frequent(DNF([[1, 2]])) == 1

    def test_first(self):
        assert select_first(DNF([[5, 3]])) == 3

    def test_max_split_prefers_articulation_variable(self):
        # Removing x2 splits the clause graph into two components.
        function = DNF([[0, 2], [1, 2], [2, 3], [2, 4]])
        assert select_max_depth_reduction(function) == 2

    def test_heuristics_reject_constants(self):
        with pytest.raises(ValueError):
            select_most_frequent(DNF.false([0]))
        with pytest.raises(ValueError):
            select_first(DNF.false([0]))


class TestIncremental:
    def test_node_for_trivial_cases(self):
        assert isinstance(node_for(DNF.false([0])), FalseLeaf)
        assert isinstance(node_for(DNF([[3]])), LiteralLeaf)
        wide = node_for(DNF([[3]], domain=[3, 4]))
        assert isinstance(wide, DecompAnd)
        assert wide.domain == frozenset({3, 4})
        assert isinstance(node_for(DNF([[0, 1], [2]])), DNFLeaf)

    def test_initial_state(self, example9_dnf):
        compiler = IncrementalCompiler(example9_dnf)
        assert not compiler.is_complete()
        assert len(compiler.nontrivial_leaves()) == 1

    def test_expansion_reaches_completion(self, example9_dnf):
        compiler = IncrementalCompiler(example9_dnf)
        compiler.expand_to_completion()
        assert compiler.is_complete()
        compiler.root.validate()
        assert model_count(compiler.root) == count_models(example9_dnf)

    def test_expansion_preserves_semantics(self, rng):
        for _ in range(25):
            function = random_positive_dnf(rng, rng.randint(2, 6),
                                           rng.randint(1, 6), (1, 3))
            compiler = IncrementalCompiler(function)
            steps = 0
            while not compiler.is_complete() and steps < 200:
                compiler.expand_step(lazy=False)
                steps += 1
                _assert_equivalent(compiler.root, function)

    def test_lazy_step_stops_at_shannon(self):
        function = DNF([[0, 1], [1, 2], [2, 3]])
        compiler = IncrementalCompiler(function)
        compiler.expand_step(lazy=True)
        assert compiler.shannon_steps == 1

    def test_expand_step_on_complete_tree_is_noop(self):
        compiler = IncrementalCompiler(DNF([[0]]))
        assert compiler.is_complete()
        assert compiler.expand_step() is False

    def test_open_leaf_tracking_matches_tree(self, rng):
        function = random_positive_dnf(rng, 6, 8, (2, 3))
        compiler = IncrementalCompiler(function)
        while not compiler.is_complete():
            compiler.expand_step(lazy=False)
            tracked = set(compiler.nontrivial_leaves())
            actual = {leaf for leaf in compiler.root.iter_leaves()
                      if isinstance(leaf, DNFLeaf)}
            assert tracked == actual
