"""Tests for structural DNF operations (factoring, components, Shannon)."""

import pytest

from repro.boolean.assignments import count_models
from repro.boolean.dnf import DNF, ConstantTrue
from repro.boolean.operations import (
    clause_components,
    condition,
    factor_common_variables,
    independent_components,
    is_independent,
    is_mutually_exclusive,
    shannon_expansion,
)


class TestIndependence:
    def test_is_independent(self):
        assert is_independent(DNF([[0]]), DNF([[1]]))
        assert not is_independent(DNF([[0, 1]]), DNF([[1, 2]]))

    def test_clause_components(self):
        clauses = [frozenset({0, 1}), frozenset({1, 2}), frozenset({3})]
        components = clause_components(clauses)
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 2]

    def test_independent_components_split(self):
        function = DNF([[0, 1], [2, 3]])
        components = independent_components(function)
        assert len(components) == 2
        assert {c.variables for c in components} == {
            frozenset({0, 1}), frozenset({2, 3})
        }

    def test_independent_components_connected(self):
        function = DNF([[0, 1], [1, 2]])
        assert len(independent_components(function)) == 1

    def test_independent_components_of_false(self):
        false = DNF.false([0])
        assert independent_components(false) == [false]


class TestMutualExclusion:
    def test_shannon_branches_are_mutually_exclusive(self):
        function = DNF([[0, 1], [0, 2], [1, 2]])
        # x0 & phi[x0:=1] vs ~x0 & phi[x0:=0] can never be satisfied together;
        # here we check the weaker property on the cofactors conjoined with
        # the literal clauses explicitly.
        left = DNF([[0, 1], [0, 2]])
        right = DNF([[1, 2]], domain=[0, 1, 2])
        assert not is_mutually_exclusive(left, left)
        assert is_mutually_exclusive(DNF([[0]]), DNF.false([0]))

    def test_disjoint_models(self):
        # x & y vs exactly-one-of constructions.
        assert is_mutually_exclusive(DNF([[0, 1]]), DNF.false([0, 1]))


class TestFactoring:
    def test_factor_common_variables(self):
        function = DNF([[0, 1], [0, 2]])
        common, residual = factor_common_variables(function)
        assert common == frozenset({0})
        assert residual == DNF([[1], [2]])

    def test_factor_no_common(self):
        function = DNF([[0, 1], [2]])
        common, residual = factor_common_variables(function)
        assert common == frozenset()
        assert residual is function

    def test_factor_constant_true(self):
        function = DNF([[0], [0, 1]])
        # The clause {0} consists solely of common variables.
        with pytest.raises(ConstantTrue):
            factor_common_variables(function)


class TestShannon:
    def test_shannon_expansion_cofactors(self):
        function = DNF([[0, 1], [2]])
        positive, negative = shannon_expansion(function, 0)
        assert positive == DNF([[1], [2]])
        assert negative == DNF([[2]], domain=[1, 2])

    def test_shannon_preserves_model_count(self):
        function = DNF([[0, 1], [1, 2], [0, 2]])
        positive, negative = shannon_expansion(function, 1)
        assert count_models(function) == count_models(positive) + count_models(negative)

    def test_shannon_unknown_variable(self):
        with pytest.raises(ValueError):
            shannon_expansion(DNF([[0]]), 9)

    def test_shannon_constant_true_propagates(self):
        function = DNF([[0], [1, 2]])
        with pytest.raises(ConstantTrue):
            shannon_expansion(function, 0)


class TestCondition:
    def test_condition_multiple(self):
        function = DNF([[0, 1], [2, 3]])
        result = condition(function, trues=[0], falses=[2])
        assert result == DNF([[1]], domain=[1, 3])

    def test_condition_ignores_missing_variables(self):
        function = DNF([[0]])
        assert condition(function, trues=[], falses=[9]) == function
