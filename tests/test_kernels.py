"""Differential tests: the vectorized kernel tier vs the Python arena passes.

The numpy kernel tier (:mod:`repro.dtree.kernels`) re-implements the
fused arena passes as whole-level array operations.  Its contract is
asymmetric per tier, and this module pins both sides of it:

* **exact tier** -- bit-identical arbitrary-precision ints: the int64
  fast path must agree with :func:`~repro.dtree.arena.arena_counts` /
  :func:`~repro.dtree.arena.arena_banzhaf` to the last bit, and
  anything outside the int64 envelope must *fall back* to the Python
  pass (still bit-identical), never return a wrapped value;
* **float tier** -- enclosure containment: the certified integer
  enclosures read off the kernel's (log2, relative-error) pairs must
  contain the exact value, exactly like the Python float pass.

Arenas are fuzzed four ways: Hypothesis-random DNFs, tie-rich star
joins, a 1500-deep alternating AND/OR chain (level-schedule stress),
and int64 overflow-straddling domains (61/62/70 variables).  Every
kernel-forcing test is skipped without numpy; the fallback and
pure-Python dispatch tests run either way, so the optional-dependency
contract is exercised by both CI lanes.
"""

import math
import random
from contextlib import contextmanager

import pytest
from hypothesis import given, settings

from repro.boolean.dnf import DNF
from repro.core.exaban import exaban_all
from repro.dtree.arena import (
    DTreeArena,
    arena_banzhaf,
    arena_counts,
    arena_float_banzhaf,
    arena_float_counts,
    arena_float_surrogate,
    pow2_int,
)
from repro.dtree.compile import compile_dnf
from repro.dtree.incremental import IncrementalCompiler
from repro.dtree.kernels import (
    HAVE_NUMPY,
    KernelUnavailableError,
    _PLAN_KEY,
    banzhaf_pass,
    counts_pass,
    float_banzhaf_pass,
    float_counts_pass,
    float_surrogate_pass,
    plan_of,
    prewarm_arenas,
    resolve_kernel,
)
from repro.dtree.nodes import DecompAnd, DecompOr, LiteralLeaf
from repro.engine import Engine, EngineConfig
from repro.engine.ranking import uncertified_enclosure
from repro.engine.stats import EngineStats
from repro.workloads.generators import random_positive_dnf, star_join_lineage

from dnf_strategies import small_dnfs

_SETTINGS = settings(max_examples=30, deadline=None)

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="numpy not installed")
needs_no_numpy = pytest.mark.skipif(HAVE_NUMPY,
                                    reason="numpy is installed")


# --------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------- #


def _fresh_arena(tree) -> DTreeArena:
    """An arena with empty memos (independent of the root's cached one)."""
    return DTreeArena.from_tree(tree)


def _contains(log: float, err: float, exact: int, margin: int = 8) -> bool:
    """The float tier's enclosure contract for one (log2, rel-err) score."""
    if math.isinf(log) and log < 0:
        return exact == 0
    if uncertified_enclosure(log, err, margin):
        return True  # vacuous (sign flip, or err so large -- deep
        # chains reach ~1e307 -- that the bound has no materializable
        # integer form); the ranking tier falls back to exact for these.
    return (pow2_int(log, margin * err) <= exact
            <= pow2_int(log, margin * err, ceil=True))


def _assert_exact_matches(tree, kernel: str, stats=None) -> None:
    reference = _fresh_arena(tree)
    expected_counts = list(arena_counts(reference))
    expected_banzhaf = dict(arena_banzhaf(reference))

    arena = _fresh_arena(tree)
    assert banzhaf_pass(arena, kernel=kernel,
                        stats=stats) == expected_banzhaf
    # One fused sweep fills the counts payload too; bit-identical column.
    assert counts_pass(arena, kernel=kernel, stats=stats) == expected_counts


def _assert_float_encloses(tree, kernel: str, stats=None) -> None:
    reference = _fresh_arena(tree)
    exact_counts = list(arena_counts(reference))
    exact_banzhaf = dict(arena_banzhaf(reference))

    arena = _fresh_arena(tree)
    logs, errs = float_counts_pass(arena, kernel=kernel, stats=stats)
    for row, exact in enumerate(exact_counts):
        assert _contains(logs[row], errs[row], exact), (
            f"count enclosure violated at row {row}")
    scores = float_banzhaf_pass(arena, kernel=kernel, stats=stats)
    assert set(scores) == set(exact_banzhaf)
    for variable, (log, err) in scores.items():
        assert _contains(log, err, exact_banzhaf[variable]), (
            f"score enclosure violated for variable {variable}")


def _deep_chain(depth: int) -> DecompAnd:
    """Alternating AND/OR chain, one level per variable (depth levels)."""
    node = DecompAnd([LiteralLeaf(0), LiteralLeaf(1)])
    for variable in range(2, depth + 2):
        leaf = LiteralLeaf(variable, negated=(variable % 3 == 0))
        if variable % 2:
            node = DecompAnd([node, leaf])
        else:
            node = DecompOr([node, leaf])
    return node


def _wide_or(num_variables: int):
    """One independent OR over ``num_variables`` singleton clauses.

    Its model count is ``2**n - 1``: the smallest tree whose values sit
    right at the int64 envelope boundary for n near 62.
    """
    return compile_dnf(DNF([(v,) for v in range(num_variables)],
                           domain=range(num_variables)))


@contextmanager
def _nothing():
    yield


# --------------------------------------------------------------------- #
# Dispatch and fallback (run with and without numpy)
# --------------------------------------------------------------------- #


def test_uncertified_enclosure_guards_vacuous_widths():
    # Deep chains accumulate relative errors up to ~1e307; asking
    # pow2_int for that enclosure would allocate err/ln2 bits.  The
    # ranking tier must route such scores to the exact fallback.
    assert not uncertified_enclosure(-math.inf, math.inf, 8)  # exact zero
    assert not uncertified_enclosure(1500.0, 1e-12, 8)
    assert not uncertified_enclosure(1500.0, 300.0, 8)  # ~3500 bits: fine
    assert uncertified_enclosure(1500.0, math.inf, 8)
    assert uncertified_enclosure(1500.0, math.nan, 8)
    assert uncertified_enclosure(1500.0, 4.7e307, 8)  # deep-chain regime


def test_resolve_kernel_names():
    assert resolve_kernel("python") == "python"
    assert resolve_kernel("auto") == ("numpy" if HAVE_NUMPY else "python")
    with pytest.raises(ValueError):
        resolve_kernel("fortran")


def test_python_kernel_matches_arena_passes():
    rng = random.Random(11)
    tree = compile_dnf(star_join_lineage(rng, 4, 3))
    stats = EngineStats()
    _assert_exact_matches(tree, kernel="python", stats=stats)
    _assert_float_encloses(tree, kernel="python", stats=stats)
    assert stats.kernel_sweeps == 0  # python never sweeps


def test_auto_kernel_is_exactly_python_for_exact_tier():
    # Whatever backend "auto" resolves to, exact results are bit-identical.
    rng = random.Random(12)
    for profile in ((3, 4), (5, 2)):
        tree = compile_dnf(star_join_lineage(rng, *profile))
        _assert_exact_matches(tree, kernel="auto")


def test_pass_payload_hits_are_counted():
    tree = compile_dnf(random_positive_dnf(random.Random(13), 8, 6))
    arena = _fresh_arena(tree)
    stats = EngineStats()
    first = banzhaf_pass(arena, kernel="auto", stats=stats)
    assert stats.payload_hits == 0
    again = banzhaf_pass(arena, kernel="auto", stats=stats)
    assert again == first
    assert stats.payload_hits == 1


def test_pass_timings_are_labelled():
    tree = compile_dnf(random_positive_dnf(random.Random(14), 8, 6))
    stats = EngineStats()
    banzhaf_pass(_fresh_arena(tree), kernel="python", stats=stats)
    passes = stats.as_dict()["passes"]
    # The python pass bills under the pass label, never as a sweep.
    assert "banzhaf" in passes
    assert "kernel_sweep" not in passes


@needs_no_numpy
def test_forced_numpy_raises_without_numpy():
    tree = compile_dnf(random_positive_dnf(random.Random(15), 6, 4))
    with pytest.raises(KernelUnavailableError):
        counts_pass(_fresh_arena(tree), kernel="numpy")
    with pytest.raises(KernelUnavailableError):
        EngineConfig(kernel="numpy")


@needs_no_numpy
def test_auto_degrades_to_python_without_numpy():
    rng = random.Random(16)
    tree = compile_dnf(star_join_lineage(rng, 4, 3))
    stats = EngineStats()
    _assert_exact_matches(tree, kernel="auto", stats=stats)
    _assert_float_encloses(tree, kernel="auto", stats=stats)
    assert stats.kernel_sweeps == 0
    # Batching is a silent no-op too: nothing to stack without numpy.
    arenas = [_fresh_arena(tree), _fresh_arena(tree)]
    assert prewarm_arenas(arenas, tier="exact", kernel="auto",
                          stats=stats) == 0


def test_engine_config_validates_kernel():
    with pytest.raises(ValueError):
        EngineConfig(kernel="fortran")
    assert EngineConfig(kernel="python").kernel == "python"
    assert EngineConfig().kernel == "auto"


def test_prewarm_rejects_unknown_tier():
    with pytest.raises(ValueError):
        prewarm_arenas([], tier="shapley", kernel="python")


# --------------------------------------------------------------------- #
# Kernel vs Python: random, tie-rich, deep, and overflow-straddling
# --------------------------------------------------------------------- #


@needs_numpy
@_SETTINGS
@given(function=small_dnfs())
def test_numpy_exact_bit_identical_random(function: DNF):
    tree = compile_dnf(function)
    _assert_exact_matches(tree, kernel="numpy")


@needs_numpy
@_SETTINGS
@given(function=small_dnfs())
def test_numpy_float_enclosures_random(function: DNF):
    tree = compile_dnf(function)
    _assert_float_encloses(tree, kernel="numpy")


@needs_numpy
def test_numpy_on_tie_rich_star_joins():
    # Star joins produce many symmetric (tied) Banzhaf values; ties are
    # where a lossy float pass would reorder, so the enclosures (and the
    # bit-identical exact values backing them) matter most here.
    rng = random.Random(21)
    for profile in ((4, 3), (6, 4), (3, 6)):
        tree = compile_dnf(star_join_lineage(rng, *profile))
        stats = EngineStats()
        _assert_exact_matches(tree, kernel="numpy", stats=stats)
        _assert_float_encloses(tree, kernel="numpy", stats=stats)
        assert stats.kernel_sweeps > 0


@needs_numpy
def test_numpy_on_1500_deep_chain():
    # 1500 levels of alternating AND/OR: the level schedule degenerates
    # to width ~1 (the kernel's worst case).  kernel="numpy" forces the
    # sweep anyway; results must still be correct, and the exact tier
    # must fall back (domain 1502 > int64 envelope) bit-identically.
    tree = _deep_chain(1500)
    arena = _fresh_arena(tree)
    plan = plan_of(arena)
    assert len(plan.levels) >= 1500
    assert not plan.int64_ok
    stats = EngineStats()
    _assert_exact_matches(tree, kernel="numpy", stats=stats)
    assert stats.kernel_fallbacks > 0  # exact tier refused, fell back
    _assert_float_encloses(tree, kernel="numpy", stats=stats)
    assert stats.kernel_sweeps > 0  # float tier swept the deep schedule


@needs_numpy
def test_numpy_int64_envelope_straddle():
    stats = EngineStats()
    # 61 and 62 variables: inside the envelope, the kernel sweeps and
    # the counts reach 2**62 - 1 (the largest value the proof allows).
    for width in (61, 62):
        tree = _wide_or(width)
        arena = _fresh_arena(tree)
        assert plan_of(arena).int64_ok
        before = stats.kernel_sweeps
        _assert_exact_matches(tree, kernel="numpy", stats=stats)
        assert stats.kernel_sweeps > before
    # 70 variables: one step over, the plan refuses int64 and the
    # dispatcher falls back row-exactly to the big-int Python pass.
    tree = _wide_or(70)
    arena = _fresh_arena(tree)
    assert not plan_of(arena).int64_ok
    fallbacks = stats.kernel_fallbacks
    _assert_exact_matches(tree, kernel="numpy", stats=stats)
    assert stats.kernel_fallbacks > fallbacks
    # The float tier has no envelope: it still sweeps the 70-wide arena.
    _assert_float_encloses(tree, kernel="numpy", stats=stats)


@needs_numpy
def test_numpy_surrogate_matches_python_on_partial_trees():
    rng = random.Random(23)
    for num_clauses in (6, 10):
        function = random_positive_dnf(rng, 14, num_clauses)
        compiler = IncrementalCompiler(function)
        for _ in range(3):
            if not compiler.expand_step():
                break
        tree = compiler.root
        expected = arena_float_surrogate(_fresh_arena(tree))
        actual = float_surrogate_pass(_fresh_arena(tree), kernel="numpy")
        assert set(actual) == set(expected)
        for variable, log in actual.items():
            reference = expected[variable]
            if math.isinf(log) or math.isinf(reference):
                assert log == reference
            else:
                assert log == pytest.approx(reference, rel=1e-9, abs=1e-9)


# --------------------------------------------------------------------- #
# Cross-request batching
# --------------------------------------------------------------------- #


@needs_numpy
def test_batched_prewarm_matches_single_tree_results():
    rng = random.Random(31)
    trees = [compile_dnf(star_join_lineage(rng, hubs, sats))
             for hubs, sats in ((3, 3), (4, 2), (5, 4), (2, 6))]
    trees.append(compile_dnf(random_positive_dnf(rng, 12, 8)))

    for tier in ("exact", "float"):
        arenas = [_fresh_arena(tree) for tree in trees]
        stats = EngineStats()
        swept = prewarm_arenas(arenas, tier=tier, kernel="numpy",
                               stats=stats)
        assert swept == len(arenas)
        assert stats.kernel_batched_trees == len(arenas)
        assert stats.kernel_sweeps == 1  # ONE stacked sweep for all trees
        for tree, arena in zip(trees, arenas):
            if tier == "exact":
                assert arena.results["banzhaf"] == arena_banzhaf(
                    _fresh_arena(tree))
                assert arena.payloads["counts"] == arena_counts(
                    _fresh_arena(tree))
            else:
                exact = arena_banzhaf(_fresh_arena(tree))
                for variable, (log, err) in (
                        arena.results["float_banzhaf"].items()):
                    assert _contains(log, err, exact[variable])


@needs_numpy
def test_prewarm_skips_already_evaluated_arenas():
    rng = random.Random(32)
    trees = [compile_dnf(star_join_lineage(rng, 3, 3)) for _ in range(3)]
    arenas = [_fresh_arena(tree) for tree in trees]
    arena_banzhaf(arenas[0])  # pre-evaluated: nothing to prewarm there
    stats = EngineStats()
    swept = prewarm_arenas(arenas, tier="exact", kernel="numpy",
                           stats=stats)
    assert swept == 2
    assert arenas[1].results["banzhaf"] == arena_banzhaf(
        _fresh_arena(trees[1]))


@needs_numpy
def test_prewarm_single_arena_never_batches():
    tree = compile_dnf(star_join_lineage(random.Random(33), 4, 3))
    stats = EngineStats()
    assert prewarm_arenas([_fresh_arena(tree)], tier="exact",
                          kernel="numpy", stats=stats) == 0
    assert stats.kernel_sweeps == 0


# --------------------------------------------------------------------- #
# Engine wiring
# --------------------------------------------------------------------- #


def _engine_lineages():
    rng = random.Random(41)
    return [star_join_lineage(rng, 3, 3),
            star_join_lineage(rng, 4, 2),
            random_positive_dnf(rng, 10, 6),
            random_positive_dnf(rng, 9, 7)]


@needs_numpy
def test_engine_exact_results_identical_across_kernels():
    lineages = _engine_lineages()
    baseline = Engine(EngineConfig(method="exact", kernel="python"))
    expected = baseline.attribute_lineages(lineages)
    fast = Engine(EngineConfig(method="exact", kernel="numpy"))
    actual = fast.attribute_lineages(lineages)
    for left, right in zip(expected, actual):
        assert left.values == right.values
        assert left.bounds == right.bounds
    assert fast.stats.kernel_sweeps > 0
    assert baseline.stats.kernel_sweeps == 0


@needs_numpy
def test_engine_batch_prewarms_complete_artifacts():
    lineages = _engine_lineages()
    warm = Engine(EngineConfig(method="exact", kernel="python"))
    warm.attribute_lineages(lineages)  # compiles + caches artifacts
    # Simulate a store-tier round-trip: complete artifacts whose arenas
    # have not been evaluated in this process (the warm run's scattered
    # memos would otherwise make prewarm a correct no-op).  The cached
    # level schedule survives -- plans are evaluation-independent.
    for artifact in warm.cache.artifacts._entries.values():
        arena = artifact.arena()
        plan = arena.results.pop(_PLAN_KEY, None)
        arena.results.clear()
        if plan is not None:
            arena.results[_PLAN_KEY] = plan

    fast = Engine(EngineConfig(method="exact", kernel="numpy"))
    # Share the artifact tier only: results must recompute (that is the
    # path that prewarms), but off already-complete compilations.
    fast.cache.artifacts = warm.cache.artifacts
    results = fast.attribute_lineages(lineages)
    # The whole batch went through one stacked cross-request sweep...
    assert fast.stats.kernel_batched_trees == len(lineages)
    # ...and every per-task evaluation then hit the scattered memos.
    assert fast.stats.payload_hits >= len(lineages)
    baseline = Engine(EngineConfig(method="exact", kernel="python"))
    for expected, actual in zip(baseline.attribute_lineages(lineages),
                                results):
        assert expected.values == actual.values


@needs_numpy
def test_engine_float_ranking_bounds_enclose_exact():
    lineages = _engine_lineages()[:2]
    engine = Engine(EngineConfig(method="rank", epsilon=None,
                                 numeric="float", kernel="numpy"))
    for lineage, ranked in zip(lineages,
                               engine.attribute_lineages(lineages)):
        exact = exaban_all(compile_dnf(lineage))
        for variable, (lower, upper) in ranked.bounds.items():
            assert lower <= exact[variable] <= upper
    assert engine.stats.kernel_sweeps > 0


def test_engine_float_ranking_works_with_python_kernel():
    lineage = _engine_lineages()[0]
    engine = Engine(EngineConfig(method="rank", epsilon=None,
                                 numeric="float", kernel="python"))
    (ranked,) = engine.attribute_lineages([lineage])
    exact = exaban_all(compile_dnf(lineage))
    for variable, (lower, upper) in ranked.bounds.items():
        assert lower <= exact[variable] <= upper
    assert engine.stats.kernel_sweeps == 0
