"""Differential tests: bitset kernel vs the frozenset reference.

Every hot DNF operation has two implementations selected by
:func:`repro.boolean.dnf.set_kernel_enabled`: the bitset-kernel fast path
and the original frozenset code kept alive as the reference.  These tests
run both on the same inputs -- Hypothesis-generated random DNFs -- and
require identical results, plus an end-to-end check that every engine
method produces bit-identical Banzhaf/Shapley values under either kernel.

Each side gets its own freshly built DNF so no lazily cached view leaks
across the mode switch.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings

from dnf_strategies import small_dnfs
from repro.boolean.dnf import (
    DNF,
    ConstantTrue,
    frozenset_reference,
    kernel_enabled,
    set_kernel_enabled,
)
from repro.boolean.idnf import idnf_model_count, is_idnf, lower_idnf, upper_idnf
from repro.boolean.operations import (
    factor_common_variables,
    independent_components,
    shannon_expansion,
)
from repro.core.exaban import exaban_all
from repro.dtree.compile import compile_dnf
from repro.dtree.heuristics import select_max_depth_reduction, select_most_frequent
from repro.engine import Engine, EngineConfig
from repro.engine.canonical import canonicalize
from repro.workloads.generators import random_positive_dnf


def _clone(function: DNF) -> DNF:
    """A fresh DNF with the same clauses/domain and no cached views."""
    return DNF(function.sorted_clauses(), domain=function.domain)


def _both_modes(function: DNF, operation):
    """Run ``operation`` on private clones under both kernels.

    Returns ``(kernel_result, reference_result)``; a raised
    :class:`ConstantTrue` is captured as ``("TRUE", domain)`` so the
    exception parity (including the carried domain) is compared too.
    """

    def run(clone: DNF):
        try:
            return operation(clone)
        except ConstantTrue as constant:
            return ("TRUE", constant.domain)

    assert kernel_enabled()
    with_kernel = run(_clone(function))
    with frozenset_reference():
        without_kernel = run(_clone(function))
    return with_kernel, without_kernel


def _component_key(components):
    return sorted((tuple(sorted(c.domain)), c.sorted_clauses())
                  for c in components)


class TestOperationDifferential:
    @settings(max_examples=120, deadline=None)
    @given(small_dnfs())
    def test_absorb(self, function):
        kernel, reference = _both_modes(function, lambda f: f.absorb())
        assert kernel == reference

    @settings(max_examples=120, deadline=None)
    @given(small_dnfs())
    def test_cofactor_both_values(self, function):
        for variable in sorted(function.domain):
            for value in (False, True):
                kernel, reference = _both_modes(
                    function, lambda f: f.cofactor(variable, value))
                assert kernel == reference, (variable, value)

    @settings(max_examples=120, deadline=None)
    @given(small_dnfs())
    def test_factor_common_variables(self, function):
        kernel, reference = _both_modes(
            function, lambda f: factor_common_variables(f))
        assert kernel == reference

    @settings(max_examples=120, deadline=None)
    @given(small_dnfs())
    def test_independent_components(self, function):
        kernel, reference = _both_modes(
            function, lambda f: _component_key(independent_components(f)))
        assert kernel == reference

    @settings(max_examples=120, deadline=None)
    @given(small_dnfs())
    def test_kernel_built_dnfs_equal_rebuilt(self, function):
        """Every kernel surgery's output upholds the sorted-mask invariant.

        Mask-tuple equality over equal orders must be clause-set equality,
        so each derived DNF must compare equal (both directions, and as a
        dict key) to a fresh DNF built from its clause view.
        """
        derived = list(independent_components(function))
        derived.append(function.absorb())
        derived.append(function.restricted_domain())
        try:
            derived.append(factor_common_variables(function)[1])
        except ConstantTrue:
            pass
        for variable in sorted(function.domain):
            try:
                derived.append(function.cofactor(variable, True))
            except ConstantTrue:
                pass
            derived.append(function.cofactor(variable, False))
        for result in derived:
            rebuilt = DNF(result.sorted_clauses(), domain=result.domain)
            assert result == rebuilt and rebuilt == result
            assert hash(result) == hash(rebuilt)
            assert {result: 1}.get(rebuilt) == 1

    def test_bridge_merge_components_stay_normalized(self):
        # Clause {0, 2} bridges the earlier {0} and {2} components: the
        # folded group's masks must come back sorted, or the component's
        # kernel breaks the ascending-mask invariant and equality with an
        # independently built equal DNF fails.
        function = DNF([[0], [2], [0, 2], [3]], domain=[0, 1, 2, 3])
        components = independent_components(function)
        bridged = next(c for c in components if 0 in c.variables)
        rebuilt = DNF(bridged.sorted_clauses(), domain=bridged.domain)
        assert bridged == rebuilt and rebuilt == bridged
        assert {bridged: 1}.get(rebuilt) == 1

    @settings(max_examples=120, deadline=None)
    @given(small_dnfs())
    def test_shannon_expansion(self, function):
        variable = min(function.domain)
        kernel, reference = _both_modes(
            function, lambda f: shannon_expansion(f, variable))
        assert kernel == reference

    @settings(max_examples=120, deadline=None)
    @given(small_dnfs())
    def test_accessors(self, function):
        probes = sorted(function.domain) + [max(function.domain) + 7]

        def snapshot(f: DNF):
            return (
                f.variables,
                f.common_variables(),
                f.variable_frequencies(),
                f.sorted_clauses(),
                f.size(),
                f.num_clauses(),
                f.is_single_literal(),
                [f.contains_variable(v) for v in probes],
            )

        kernel, reference = _both_modes(function, snapshot)
        assert kernel == reference

    @settings(max_examples=120, deadline=None)
    @given(small_dnfs())
    def test_idnf_syntheses(self, function):
        def synth(f: DNF):
            lower = lower_idnf(f)
            upper = upper_idnf(f)
            return (lower, upper, idnf_model_count(lower),
                    idnf_model_count(upper), is_idnf(f))

        kernel, reference = _both_modes(function, synth)
        assert kernel == reference

    @settings(max_examples=120, deadline=None)
    @given(small_dnfs())
    def test_heuristics(self, function):
        def pick(f: DNF):
            return (select_most_frequent(f), select_max_depth_reduction(f))

        kernel, reference = _both_modes(function, pick)
        assert kernel == reference

    @settings(max_examples=60, deadline=None)
    @given(small_dnfs())
    def test_exact_banzhaf_end_to_end(self, function):
        def banzhaf(f: DNF):
            return exaban_all(compile_dnf(f))

        kernel, reference = _both_modes(function, banzhaf)
        assert kernel == reference

    @settings(max_examples=60, deadline=None)
    @given(small_dnfs())
    def test_iterative_passes_match_seed_recursive(self, function):
        """Fused iterative passes == the seed recursive reference passes."""
        from repro.core import reference as seed
        from repro.core.exaban import exaban, model_count
        from repro.core.shapley import shapley_all

        tree = compile_dnf(function)
        counts: dict = {}
        assert model_count(tree, counts) == seed.model_count_recursive(tree)
        assert exaban_all(tree, counts) == seed.exaban_all_recursive(tree)
        for variable in sorted(function.domain):
            assert exaban(tree, variable, counts) == \
                seed.exaban_recursive(tree, variable)
        assert shapley_all(function, tree=tree) == \
            seed.shapley_all_recursive(function, tree)

    @settings(max_examples=60, deadline=None)
    @given(small_dnfs())
    def test_canonical_key_stable_across_kernels(self, function):
        def canonical(f: DNF):
            lineage = canonicalize(f)
            return (lineage.key, lineage.dnf, lineage.to_canonical)

        kernel, reference = _both_modes(function, canonical)
        assert kernel == reference


class TestLazyViews:
    def test_kernel_built_dnf_materializes_clauses(self):
        lineage = canonicalize(DNF([[3, 5], [5, 9]], domain=[1, 3, 5, 9]))
        canonical_dnf = lineage.dnf
        # Built mask-first by canonicalize: the frozenset view must agree.
        assert canonical_dnf.clauses == frozenset(
            frozenset(clause) for clause in lineage.key[1])
        assert canonical_dnf == DNF(lineage.key[1],
                                    domain=range(len(lineage.to_canonical)))
        assert hash(canonical_dnf) == hash(
            DNF(lineage.key[1], domain=range(len(lineage.to_canonical))))

    def test_mode_switch_mid_object_is_safe(self):
        function = DNF([[0, 1], [1, 2]], domain=[0, 1, 2, 3])
        reduced = function.cofactor(1, True)  # kernel-built, masks only
        previous = set_kernel_enabled(False)
        try:
            # Reference-mode accessors materialize the frozenset view.
            assert reduced.variables == frozenset({0, 2})
            assert reduced.clauses == frozenset({frozenset({0}),
                                                 frozenset({2})})
            assert reduced.domain == frozenset({0, 2, 3})
        finally:
            set_kernel_enabled(previous)


@pytest.fixture(scope="module")
def method_lineages():
    import random

    rng = random.Random(42)
    return [random_positive_dnf(rng, num_variables=7, num_clauses=5,
                                clause_width=(1, 3))
            for _ in range(6)]


class TestEngineMethodsDifferential:
    """End-to-end Banzhaf equality across all engine methods, both kernels."""

    @pytest.mark.parametrize("method,epsilon,k", [
        ("exact", 0.1, None),
        ("auto", 0.1, None),
        ("approximate", 0.1, None),
        ("shapley", 0.1, None),
        ("rank", 0.1, None),
        ("topk", 0.1, 3),
    ])
    def test_methods_agree_across_kernels(self, method_lineages, method,
                                          epsilon, k):
        def run(lineages):
            engine = Engine(EngineConfig(method=method, epsilon=epsilon, k=k))
            outcomes = engine.attribute_lineages(lineages)
            return [
                (outcome.method_used,
                 {v: Fraction(value) for v, value in outcome.values.items()},
                 dict(outcome.bounds))
                for outcome in outcomes
            ]

        assert kernel_enabled()
        with_kernel = run([_clone(f) for f in method_lineages])
        with frozenset_reference():
            without_kernel = run([_clone(f) for f in method_lineages])
        assert with_kernel == without_kernel
