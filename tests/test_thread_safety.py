"""Thread-safety tests for the engine's shared mutable state.

The concurrent front-end hits :class:`EngineStats` (every counter bump)
and the cache tiers (:class:`DiskStore` put/flush) from many worker
threads at once.  These tests race exactly those operations behind a
barrier -- so every thread contends on the same instant -- and assert
that not a single update is lost.  Under the pre-``bump()`` code
(``stats.cache_hits += 1`` read-modify-write), the counter test loses
increments reliably at this contention level.
"""

import threading
from fractions import Fraction

import pytest

from repro.engine.cache import CachedAttribution
from repro.engine.stats import COUNTER_FIELDS, EngineStats
from repro.engine.store import DiskStore

pytestmark = pytest.mark.concurrency

THREADS = 8
ROUNDS = 250


def _race(worker, threads=THREADS):
    """Run ``worker(thread_index)`` in N threads released together."""
    barrier = threading.Barrier(threads)
    errors = []

    def run(index):
        barrier.wait()
        try:
            worker(index)
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    pool = [threading.Thread(target=run, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert not errors, errors


class TestEngineStats:
    def test_concurrent_bumps_lose_nothing(self):
        stats = EngineStats()

        def worker(_index):
            for _ in range(ROUNDS):
                stats.bump(cache_hits=1)
                stats.bump(compilations=1, queries=2)

        _race(worker)
        assert stats.cache_hits == THREADS * ROUNDS
        assert stats.compilations == THREADS * ROUNDS
        assert stats.queries == 2 * THREADS * ROUNDS

    def test_every_counter_field_bumps_atomically(self):
        stats = EngineStats()

        def worker(index):
            field = COUNTER_FIELDS[index % len(COUNTER_FIELDS)]
            for _ in range(ROUNDS):
                stats.bump(**{field: 1})

        _race(worker, threads=len(COUNTER_FIELDS))
        assert sum(getattr(stats, field) for field in COUNTER_FIELDS) \
            == len(COUNTER_FIELDS) * ROUNDS

    def test_bump_rejects_unknown_counter(self):
        with pytest.raises(AttributeError):
            EngineStats().bump(not_a_counter=1)

    def test_concurrent_timed_sections_accumulate(self):
        stats = EngineStats()

        def worker(_index):
            for _ in range(ROUNDS // 5):
                with stats.timed("evaluate"):
                    pass

        _race(worker)
        assert stats.stage_seconds["evaluate"] >= 0.0

    def test_merge_from_while_bumping(self):
        target = EngineStats()

        def worker(index):
            if index == 0:
                for _ in range(ROUNDS):
                    scratch = EngineStats()
                    scratch.bump(fallbacks=1)
                    target.merge_from(scratch)
            else:
                for _ in range(ROUNDS):
                    target.bump(answers=1)

        _race(worker)
        assert target.fallbacks == ROUNDS
        assert target.answers == (THREADS - 1) * ROUNDS


class TestDiskStore:
    @staticmethod
    def _key(seed):
        return ((3, ((0, seed % 3), (1, 2))), "exact", None, seed)

    @staticmethod
    def _entry(seed):
        return CachedAttribution(
            method_used="exact",
            values={0: Fraction(seed, 7), 1: Fraction(1, seed + 1)},
            bounds={},
            converged=True,
        )

    def test_concurrent_put_and_flush_lose_nothing(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        per_thread = 25

        def worker(index):
            for i in range(per_thread):
                seed = index * per_thread + i
                store.put(self._key(seed), self._entry(seed))
                if i % 5 == 0:
                    store.flush()  # flush races against other puts

        _race(worker)
        store.flush()

        # Everything survives a cold reload from disk.
        reloaded = DiskStore(str(tmp_path / "store"))
        assert len(reloaded) == THREADS * per_thread
        for seed in range(THREADS * per_thread):
            entry = reloaded.get(self._key(seed))
            assert entry is not None
            assert entry.values[0] == Fraction(seed, 7)

    def test_concurrent_readers_and_writers(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        for seed in range(20):
            store.put(self._key(seed), self._entry(seed))
        store.flush()

        def worker(index):
            for i in range(50):
                if index % 2:
                    seed = 20 + index * 50 + i
                    store.put(self._key(seed), self._entry(seed))
                else:
                    entry = store.get(self._key(i % 20))
                    assert entry is not None

        _race(worker)
        store.flush()
        assert len(store) == 20 + (THREADS // 2) * 50
