"""Tests for IchiBan (Banzhaf-based ranking and top-k)."""

from fractions import Fraction

import pytest

from repro.baselines.brute_force import banzhaf_all_brute_force
from repro.boolean.dnf import DNF
from repro.core.adaban import ApproximationTimeout
from repro.core.ichiban import (
    IchiBanTimeout,
    _topk_classify,
    _topk_undecided,
    ichiban_rank,
    ichiban_topk,
    ichiban_topk_certain,
    ranked_from_intervals,
)
from repro.core.intervals import Interval
from repro.workloads.generators import random_positive_dnf, star_join_lineage


def _exact_order(function: DNF):
    exact = banzhaf_all_brute_force(function, sorted(function.variables))
    return exact, sorted(exact, key=lambda v: (-exact[v], v))


class TestTopK:
    def test_rejects_non_positive_k(self, example9_dnf):
        with pytest.raises(ValueError):
            ichiban_topk(example9_dnf, 0)
        with pytest.raises(ValueError):
            ichiban_topk_certain(example9_dnf, -1)

    def test_certain_topk_matches_brute_force(self, rng):
        for _ in range(20):
            function = random_positive_dnf(rng, rng.randint(3, 7),
                                           rng.randint(2, 7), (1, 3))
            exact, order = _exact_order(function)
            for k in (1, 2, 3):
                reported = ichiban_topk_certain(function, k)
                assert len(reported) == min(k, len(order))
                # Every reported variable's exact value must be at least the
                # k-th largest exact value (ties make the set non-unique).
                threshold = exact[order[min(k, len(order)) - 1]]
                for entry in reported:
                    assert exact[entry.variable] >= threshold

    def test_certain_topk_intervals_contain_exact(self, rng):
        function = random_positive_dnf(rng, 6, 8, (2, 3))
        exact, _ = _exact_order(function)
        for entry in ichiban_topk_certain(function, 3):
            assert entry.lower <= exact[entry.variable] <= entry.upper

    def test_approximate_topk_on_clear_winner(self, example9_dnf):
        top = ichiban_topk(example9_dnf, 1, epsilon=0.1)
        assert top[0].variable == 0

    def test_approximate_topk_precision(self, rng):
        # With a moderate epsilon the reported set should still be exact here.
        for _ in range(10):
            function = random_positive_dnf(rng, rng.randint(4, 7),
                                           rng.randint(3, 7), (1, 3))
            exact, order = _exact_order(function)
            k = 3
            reported = {entry.variable for entry in
                        ichiban_topk(function, k, epsilon=0.05)}
            threshold = exact[order[min(k, len(order)) - 1]]
            legitimate = {v for v in exact if exact[v] >= threshold}
            assert reported <= legitimate or reported == set(order[:k])

    def test_star_lineage_top1_is_hub(self, rng):
        function = star_join_lineage(rng, 1, 3)
        top = ichiban_topk_certain(function, 1)
        # Variable 0 is the hub appearing in every clause.
        assert top[0].variable == 0


class TestRanking:
    def test_certain_ranking_matches_brute_force(self, rng):
        for _ in range(15):
            function = random_positive_dnf(rng, rng.randint(3, 6),
                                           rng.randint(2, 6), (1, 3))
            exact, order = _exact_order(function)
            ranking = ichiban_rank(function, epsilon=None)
            reported_values = [exact[entry.variable] for entry in ranking]
            # The reported order must be non-increasing in the exact values.
            assert reported_values == sorted(reported_values, reverse=True)
            assert {entry.variable for entry in ranking} == function.variables

    def test_epsilon_ranking_orders_by_midpoints(self, rng):
        function = random_positive_dnf(rng, 6, 8, (2, 3))
        ranking = ichiban_rank(function, epsilon=0.1)
        midpoints = [entry.estimate for entry in ranking]
        assert midpoints == sorted(midpoints, reverse=True)

    def test_ranking_entry_fields(self, example9_dnf):
        ranking = ichiban_rank(example9_dnf, epsilon=None)
        first = ranking[0]
        assert first.variable == 0
        assert first.lower == first.upper == 3
        assert first.estimate == Fraction(3)

    def test_all_equal_values_rank_as_ties(self):
        function = DNF([[0], [1], [2]])
        ranking = ichiban_rank(function, epsilon=None)
        values = {entry.variable: entry.estimate for entry in ranking}
        assert len(set(values.values())) == 1


class TestBudgetExhaustion:
    def _hard_function(self, rng):
        return random_positive_dnf(rng, 24, 40, (3, 5))

    def test_timeout_carries_partial_intervals(self, rng):
        function = self._hard_function(rng)
        with pytest.raises(IchiBanTimeout) as info:
            ichiban_topk(function, 3, epsilon=0.01, timeout_seconds=0.0)
        timeout = info.value
        # The partial intervals cover every variable and remain sound.
        assert set(timeout.intervals) == function.variables
        assert timeout.rounds >= 1
        assert timeout.steps >= len(function.variables)
        # IchiBanTimeout stays catchable as the generic anytime failure.
        assert isinstance(timeout, ApproximationTimeout)

    def test_partial_intervals_contain_exact_values(self, rng):
        function = random_positive_dnf(rng, 6, 8, (2, 3))
        exact = banzhaf_all_brute_force(function)
        with pytest.raises(IchiBanTimeout) as info:
            # One round of bound evaluations, then the step budget is gone.
            ichiban_topk(function, 2, epsilon=0.0,
                         max_steps=len(function.variables))
        for variable, interval in info.value.intervals.items():
            assert interval.lower <= exact[variable] <= interval.upper

    def test_max_steps_counts_bound_evaluations(self, rng):
        # max_steps is AdaBan's unit: one step per bound evaluation, not
        # one per refinement round.  A budget below one full round still
        # admits the (mandatory) first round, so steps >= #variables; a
        # round-counting implementation would have claimed steps == 1.
        function = random_positive_dnf(rng, 8, 12, (2, 4))
        with pytest.raises(IchiBanTimeout) as info:
            ichiban_topk(function, 2, epsilon=0.0, max_steps=1)
        assert info.value.steps >= len(function.variables)


class TestScheduling:
    def test_classification(self):
        intervals = {
            0: Interval(10, 12),   # certainly in (nobody can reach 10)
            1: Interval(5, 9),     # undecided against 2
            2: Interval(4, 8),     # undecided against 1
            3: Interval(0, 3),     # certainly out (0, 1, 2 all above)
        }
        classes = _topk_classify(intervals, 2)
        assert classes[0] == 0 and classes[3] == 2
        assert classes[1] == classes[2] == 1
        assert set(_topk_undecided(intervals, 2)) == {1, 2}

    def test_decided_variables_stop_refining(self, rng):
        # The schedule refines only boundary-straddling variables: once the
        # hub (in every clause) separates from the satellites, the run
        # stops with wide intervals instead of refining them to points.
        function = star_join_lineage(rng, 1, 4)
        top = ichiban_topk_certain(function, 1)
        assert top[0].variable == 0
        assert not top[0].interval.is_point()

    def test_out_variable_ranked_below_undecided(self):
        # A certainly-out variable can keep a wide interval with a large
        # midpoint; classification-aware ordering must keep it out of the
        # reported set regardless.
        intervals = {
            0: Interval(101, 110),
            1: Interval(105, 120),
            2: Interval(0, 100),    # out (0 and 1 certainly above), mid 50
            3: Interval(10, 102),   # undecided, mid 56
        }
        reported = [entry.variable
                    for entry in ranked_from_intervals(intervals, 2)]
        assert 2 not in reported

    def test_ranked_from_intervals_without_k_is_midpoint_order(self):
        intervals = {0: Interval(1, 3), 1: Interval(4, 6), 2: Interval(2, 2)}
        ranking = ranked_from_intervals(intervals)
        assert [entry.variable for entry in ranking] == [1, 0, 2]
