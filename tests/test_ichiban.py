"""Tests for IchiBan (Banzhaf-based ranking and top-k)."""

from fractions import Fraction

import pytest

from repro.baselines.brute_force import banzhaf_all_brute_force
from repro.boolean.dnf import DNF
from repro.core.ichiban import ichiban_rank, ichiban_topk, ichiban_topk_certain
from repro.workloads.generators import random_positive_dnf, star_join_lineage


def _exact_order(function: DNF):
    exact = banzhaf_all_brute_force(function, sorted(function.variables))
    return exact, sorted(exact, key=lambda v: (-exact[v], v))


class TestTopK:
    def test_rejects_non_positive_k(self, example9_dnf):
        with pytest.raises(ValueError):
            ichiban_topk(example9_dnf, 0)
        with pytest.raises(ValueError):
            ichiban_topk_certain(example9_dnf, -1)

    def test_certain_topk_matches_brute_force(self, rng):
        for _ in range(20):
            function = random_positive_dnf(rng, rng.randint(3, 7),
                                           rng.randint(2, 7), (1, 3))
            exact, order = _exact_order(function)
            for k in (1, 2, 3):
                reported = ichiban_topk_certain(function, k)
                assert len(reported) == min(k, len(order))
                # Every reported variable's exact value must be at least the
                # k-th largest exact value (ties make the set non-unique).
                threshold = exact[order[min(k, len(order)) - 1]]
                for entry in reported:
                    assert exact[entry.variable] >= threshold

    def test_certain_topk_intervals_contain_exact(self, rng):
        function = random_positive_dnf(rng, 6, 8, (2, 3))
        exact, _ = _exact_order(function)
        for entry in ichiban_topk_certain(function, 3):
            assert entry.lower <= exact[entry.variable] <= entry.upper

    def test_approximate_topk_on_clear_winner(self, example9_dnf):
        top = ichiban_topk(example9_dnf, 1, epsilon=0.1)
        assert top[0].variable == 0

    def test_approximate_topk_precision(self, rng):
        # With a moderate epsilon the reported set should still be exact here.
        for _ in range(10):
            function = random_positive_dnf(rng, rng.randint(4, 7),
                                           rng.randint(3, 7), (1, 3))
            exact, order = _exact_order(function)
            k = 3
            reported = {entry.variable for entry in
                        ichiban_topk(function, k, epsilon=0.05)}
            threshold = exact[order[min(k, len(order)) - 1]]
            legitimate = {v for v in exact if exact[v] >= threshold}
            assert reported <= legitimate or reported == set(order[:k])

    def test_star_lineage_top1_is_hub(self, rng):
        function = star_join_lineage(rng, 1, 3)
        top = ichiban_topk_certain(function, 1)
        # Variable 0 is the hub appearing in every clause.
        assert top[0].variable == 0


class TestRanking:
    def test_certain_ranking_matches_brute_force(self, rng):
        for _ in range(15):
            function = random_positive_dnf(rng, rng.randint(3, 6),
                                           rng.randint(2, 6), (1, 3))
            exact, order = _exact_order(function)
            ranking = ichiban_rank(function, epsilon=None)
            reported_values = [exact[entry.variable] for entry in ranking]
            # The reported order must be non-increasing in the exact values.
            assert reported_values == sorted(reported_values, reverse=True)
            assert {entry.variable for entry in ranking} == function.variables

    def test_epsilon_ranking_orders_by_midpoints(self, rng):
        function = random_positive_dnf(rng, 6, 8, (2, 3))
        ranking = ichiban_rank(function, epsilon=0.1)
        midpoints = [entry.estimate for entry in ranking]
        assert midpoints == sorted(midpoints, reverse=True)

    def test_ranking_entry_fields(self, example9_dnf):
        ranking = ichiban_rank(example9_dnf, epsilon=None)
        first = ranking[0]
        assert first.variable == 0
        assert first.lower == first.upper == 3
        assert first.estimate == Fraction(3)

    def test_all_equal_values_rank_as_ties(self):
        function = DNF([[0], [1], [2]])
        ranking = ichiban_rank(function, epsilon=None)
        values = {entry.variable: entry.estimate for entry in ranking}
        assert len(set(values.values())) == 1
