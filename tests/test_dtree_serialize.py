"""Tests for d-tree serialization and resumable compilation artifacts.

Covers the exact round-trip of complete *and* partial trees
(:mod:`repro.dtree.serialize`), the compiled-lineage artifact codec and
its resume semantics (:mod:`repro.engine.artifact`), and the Hypothesis
round-trip property over random DNFs at every stage of incremental
compilation.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean.assignments import enumerate_assignments
from repro.boolean.dnf import DNF
from repro.core.exaban import exaban_all
from repro.dtree.compile import (
    CompilationBudget,
    CompilationLimitReached,
    compile_dnf,
)
from repro.dtree.incremental import IncrementalCompiler
from repro.dtree.nodes import DNFLeaf
from repro.dtree.serialize import (
    clone_tree,
    decode_tree,
    encode_tree,
    trees_equal,
)
from repro.engine.artifact import (
    CompiledLineage,
    complete_compilation,
    decode_artifact,
    encode_artifact,
)

from dnf_strategies import small_dnfs

_SETTINGS = settings(max_examples=60, deadline=None)

_CHAIN = DNF([[0, 1], [1, 2], [2, 3], [3, 4]])


class TestTreeCodec:
    def test_complete_tree_roundtrip_is_structural_identity(self):
        tree = compile_dnf(_CHAIN)
        decoded = decode_tree(encode_tree(tree))
        assert trees_equal(tree, decoded)
        assert exaban_all(decoded) == exaban_all(tree)

    def test_partial_tree_roundtrip_keeps_frontier(self):
        compiler = IncrementalCompiler(_CHAIN)
        compiler.expand_step()
        assert not compiler.is_complete()
        decoded = decode_tree(encode_tree(compiler.root))
        assert trees_equal(compiler.root, decoded)
        original_frontier = sorted(
            sorted(map(sorted, leaf.function.clauses))
            for leaf in compiler.root.iter_leaves()
            if isinstance(leaf, DNFLeaf))
        decoded_frontier = sorted(
            sorted(map(sorted, leaf.function.clauses))
            for leaf in decoded.iter_leaves()
            if isinstance(leaf, DNFLeaf))
        assert decoded_frontier == original_frontier

    def test_encoding_is_json_serializable(self):
        encoded = encode_tree(compile_dnf(_CHAIN))
        assert decode_tree(json.loads(json.dumps(encoded))) is not None

    def test_clone_is_deep_and_equal(self):
        compiler = IncrementalCompiler(_CHAIN)
        compiler.expand_step()
        clone = clone_tree(compiler.root)
        assert trees_equal(clone, compiler.root)
        # Expanding the original must not leak into the clone.
        before = encode_tree(clone)
        compiler.expand_to_completion()
        assert encode_tree(clone) == before

    @pytest.mark.parametrize("bad", [
        42, [], ["?"], ["L", 1], ["L", 1, "yes"], ["&", []],
        ["D", [0], [[0], [0, 1, 9]]],       # clause outside the domain
        ["&", [["L", 0, False], ["L", 0, False]]],  # overlapping domains
    ])
    def test_malformed_encodings_raise_value_error(self, bad):
        with pytest.raises(ValueError):
            decode_tree(bad)


class TestArtifactCodec:
    def test_complete_artifact_roundtrip(self):
        artifact = CompiledLineage.from_complete_tree(compile_dnf(_CHAIN),
                                                      shannon_steps=3)
        decoded = decode_artifact(encode_artifact(artifact))
        assert decoded.complete is True
        assert decoded.shannon_steps == 3
        assert trees_equal(decoded.root, artifact.root)

    def test_partial_artifact_roundtrip_and_resume(self):
        compiler = IncrementalCompiler(_CHAIN)
        compiler.expand_step()
        artifact = CompiledLineage.from_compiler(compiler)
        assert not artifact.complete
        decoded = decode_artifact(encode_artifact(artifact))
        assert decoded.expansion_steps == compiler.expansion_steps
        resumed = decoded.resume_compiler()
        complete_compilation(resumed, CompilationBudget())
        assert resumed.is_complete()
        assert exaban_all(resumed.root) == exaban_all(compile_dnf(_CHAIN))

    def test_resume_never_mutates_the_artifact(self):
        compiler = IncrementalCompiler(_CHAIN)
        compiler.expand_step()
        artifact = CompiledLineage.from_compiler(compiler)
        before = encode_tree(artifact.root)
        resumed = artifact.resume_compiler()
        complete_compilation(resumed, CompilationBudget())
        assert encode_tree(artifact.root) == before

    def test_completeness_flag_must_match_tree(self):
        artifact = CompiledLineage.from_complete_tree(compile_dnf(_CHAIN))
        encoded = encode_artifact(artifact)
        encoded["complete"] = False
        with pytest.raises(ValueError):
            decode_artifact(encoded)

    def test_resume_completion_respects_budget(self):
        # An 8-cycle needs 4 more Shannon expansions after the first, so
        # a 1-step budget must trip mid-resume.
        wide = DNF([[i, (i + 1) % 8] for i in range(8)])
        compiler = IncrementalCompiler(wide)
        compiler.expand_step()
        artifact = CompiledLineage.from_compiler(compiler)
        resumed = artifact.resume_compiler()
        with pytest.raises(CompilationLimitReached):
            complete_compilation(resumed,
                                 CompilationBudget(max_shannon_steps=1))
        # The mid-flight tree is still a valid resumable partial.
        again = CompiledLineage.from_compiler(resumed).resume_compiler()
        complete_compilation(again, CompilationBudget())
        assert exaban_all(again.root) == exaban_all(compile_dnf(wide))


@_SETTINGS
@given(function=small_dnfs(), steps=st.integers(min_value=0, max_value=8))
def test_roundtrip_property_at_every_compilation_stage(function: DNF,
                                                       steps: int):
    """Complete and partial trees round-trip exactly over random DNFs.

    The compiler is advanced a random number of steps, so the encoded
    tree ranges from the undecomposed root to a complete d-tree; the
    decoded tree must be structurally identical and represent the same
    Boolean function assignment-for-assignment.
    """
    compiler = IncrementalCompiler(function)
    for _ in range(steps):
        if compiler.is_complete():
            break
        compiler.expand_step()
    tree = compiler.root
    decoded = decode_tree(encode_tree(tree))
    assert trees_equal(tree, decoded)
    assert encode_tree(decoded) == encode_tree(tree)
    for assignment in enumerate_assignments(function.domain):
        assert decoded.evaluate(assignment) == function.evaluate(assignment)


@_SETTINGS
@given(function=small_dnfs())
def test_complete_tree_roundtrip_preserves_exaban(function: DNF):
    tree = compile_dnf(function)
    decoded = decode_tree(encode_tree(tree))
    assert exaban_all(decoded) == exaban_all(tree)
