"""Tests for the general Boolean expression trees."""

import pytest

from repro.boolean.functions import (
    And,
    Const,
    FALSE,
    Not,
    Or,
    TRUE,
    Var,
    expr_banzhaf,
    expr_model_count,
)


class TestConstruction:
    def test_var_repr_and_variables(self):
        x = Var("x")
        assert x.variables() == frozenset({"x"})

    def test_constants(self):
        assert TRUE.value is True
        assert FALSE.value is False
        assert TRUE.variables() == frozenset()

    def test_operators_build_nodes(self):
        x, y = Var("x"), Var("y")
        assert isinstance(x & y, And)
        assert isinstance(x | y, Or)
        assert isinstance(~x, Not)

    def test_nary_flattening(self):
        x, y, z = Var("x"), Var("y"), Var("z")
        expr = And(And(x, y), z)
        assert len(expr.operands) == 3

    def test_nary_equality_and_hash(self):
        x, y = Var("x"), Var("y")
        assert And(x, y) == And(x, y)
        assert hash(And(x, y)) == hash(And(x, y))
        assert And(x, y) != Or(x, y)

    def test_nary_immutable(self):
        expr = And(Var("x"), Var("y"))
        with pytest.raises(AttributeError):
            expr.operands = ()


class TestEvaluation:
    def test_variable_defaults_to_false(self):
        assert Var("x").evaluate({}) is False
        assert Var("x").evaluate({"x": True}) is True

    def test_and_or_not(self):
        x, y = Var("x"), Var("y")
        expr = (x & y) | ~x
        assert expr.evaluate({"x": False, "y": False}) is True
        assert expr.evaluate({"x": True, "y": False}) is False
        assert expr.evaluate({"x": True, "y": True}) is True

    def test_example2_truth_table(self):
        # phi = x1 | (x2 & ~x3) from Example 2 of the paper.
        x1, x2, x3 = Var(1), Var(2), Var(3)
        phi = x1 | (x2 & ~x3)
        expectations = {
            (): False, (1,): True, (2,): True, (3,): False,
            (1, 2): True, (1, 3): True, (2, 3): False, (1, 2, 3): True,
        }
        for trues, expected in expectations.items():
            assignment = {v: v in trues for v in (1, 2, 3)}
            assert phi.evaluate(assignment) is expected


class TestSubstitution:
    def test_substitute_variable(self):
        x, y = Var("x"), Var("y")
        assert (x & y).substitute("x", True) == y
        assert (x & y).substitute("x", False) == FALSE
        assert (x | y).substitute("x", True) == TRUE
        assert (x | y).substitute("x", False) == y

    def test_substitute_in_negation(self):
        x = Var("x")
        assert (~x).substitute("x", True) == FALSE
        assert (~x).substitute("x", False) == TRUE

    def test_substitute_unknown_variable_is_noop(self):
        x = Var("x")
        assert x.substitute("z", True) == x


class TestPositivity:
    def test_positive_expression(self):
        x, y = Var("x"), Var("y")
        assert ((x & y) | y).is_positive()

    def test_negation_is_not_positive(self):
        x, y = Var("x"), Var("y")
        assert not (x & ~y).is_positive()

    def test_double_negation_is_positive(self):
        x = Var("x")
        assert (~~x).is_positive()


class TestCounting:
    def test_model_count_simple(self):
        x, y = Var("x"), Var("y")
        assert expr_model_count(x | y) == 3
        assert expr_model_count(x & y) == 1

    def test_model_count_with_domain(self):
        x = Var("x")
        assert expr_model_count(x, domain=["x", "y"]) == 2

    def test_example4_counts(self):
        x1, x2, x3 = Var(1), Var(2), Var(3)
        phi = x1 | (x2 & ~x3)
        assert expr_model_count(phi.substitute(1, True), domain=[2, 3]) == 4
        assert expr_model_count(phi.substitute(1, False), domain=[2, 3]) == 1


class TestBanzhaf:
    def test_example2_banzhaf_values(self):
        x1, x2, x3 = Var(1), Var(2), Var(3)
        phi = x1 | (x2 & ~x3)
        assert expr_banzhaf(phi, 1) == 3
        assert expr_banzhaf(phi, 2) == 1
        assert expr_banzhaf(phi, 3) == -1

    def test_banzhaf_of_irrelevant_variable(self):
        x = Var("x")
        assert expr_banzhaf(x, "y", domain=["x", "y"]) == 0

    def test_banzhaf_of_single_variable(self):
        assert expr_banzhaf(Var("x"), "x") == 1
