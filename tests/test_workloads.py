"""Tests for the lineage generators and the synthetic dataset workloads."""

import random

import pytest

from repro.boolean.idnf import is_idnf
from repro.db.hierarchy import classify_query
from repro.workloads import academic, imdb, tpch
from repro.workloads.generators import (
    LineageInstance,
    bipartite_lineage,
    chain_lineage,
    mixed_hard_instances,
    random_positive_dnf,
    size_profile,
    star_join_lineage,
)
from repro.workloads.suite import Workload, build_workload, default_workloads, hard_instances


class TestGenerators:
    def test_random_positive_dnf_covers_all_variables(self, rng):
        function = random_positive_dnf(rng, 10, 6, (2, 3))
        assert function.variables == frozenset(range(10))
        assert function.num_clauses() <= 6

    def test_random_positive_dnf_validation(self, rng):
        with pytest.raises(ValueError):
            random_positive_dnf(rng, 0, 3)
        with pytest.raises(ValueError):
            random_positive_dnf(rng, 3, 0)

    def test_star_join_is_hierarchy_shaped(self, rng):
        function = star_join_lineage(rng, 2, 2)
        # Every clause contains its hub; hubs partition the clauses, so no
        # variable repeats across hub groups except inside a group.
        assert function.num_clauses() >= 2

    def test_chain_lineage_overlaps(self, rng):
        function = chain_lineage(rng, 5, width=2)
        assert function.num_clauses() == 5

    def test_bipartite_lineage_structure(self, rng):
        function = bipartite_lineage(rng, 4, 5, density=0.5)
        for clause in function.clauses:
            assert len(clause) == 2
            left, right = sorted(clause)
            assert left < 4 <= right

    def test_bipartite_lineage_never_empty(self, rng):
        function = bipartite_lineage(rng, 2, 2, density=0.0)
        assert function.num_clauses() == 1

    def test_generator_validation(self, rng):
        with pytest.raises(ValueError):
            star_join_lineage(rng, 0, 1)
        with pytest.raises(ValueError):
            chain_lineage(rng, 0)
        with pytest.raises(ValueError):
            bipartite_lineage(rng, 0, 1)

    def test_reproducibility(self):
        first = random_positive_dnf(random.Random(3), 8, 6, (2, 3))
        second = random_positive_dnf(random.Random(3), 8, 6, (2, 3))
        assert first == second

    def test_mixed_hard_instances(self):
        instances = mixed_hard_instances(seed=1, count=8)
        assert len(instances) == 8
        kinds = {i.tags[1] for i in instances}
        assert kinds == {"bipartite", "random", "chain", "wide"}
        assert all("hard" in i.tags for i in instances)

    def test_size_profile(self):
        instances = mixed_hard_instances(seed=2, count=3)
        profile = size_profile(instances)
        assert profile["count"] == 3
        assert profile["max_vars"] >= profile["avg_vars"]
        assert size_profile([])["count"] == 0

    def test_lineage_instance_metadata(self, rng):
        instance = LineageInstance("d", "q", (1, 2),
                                   random_positive_dnf(rng, 4, 3))
        assert instance.num_variables == 4
        assert instance.label() == "d/q/1_2"


class TestDatasets:
    @pytest.mark.parametrize("module", [academic, imdb, tpch])
    def test_database_generation_is_reproducible(self, module):
        first = module.generate_database(seed=5)
        second = module.generate_database(seed=5)
        assert first.num_facts() == second.num_facts()
        assert first.num_facts() > 10

    @pytest.mark.parametrize("module", [academic, imdb, tpch])
    def test_databases_have_exogenous_dimension_facts(self, module):
        database = module.generate_database()
        assert database.exogenous_facts()
        assert database.endogenous_facts()

    @pytest.mark.parametrize("module", [academic, imdb, tpch])
    def test_queries_parse_and_mix_structures(self, module):
        names = [name for name, _ in module.queries()]
        assert len(names) == len(set(names))
        assert len(names) >= 6

    def test_query_mix_contains_non_hierarchical(self):
        classifications = set()
        for _, query in imdb.queries():
            disjuncts = getattr(query, "disjuncts", (query,))
            for disjunct in disjuncts:
                classifications.add(classify_query(disjunct))
        assert "non-hierarchical" in classifications or "has-self-joins" in classifications

    @pytest.mark.parametrize("module", [academic, imdb, tpch])
    def test_workload_produces_instances(self, module):
        instances = module.workload(max_answers_per_query=2)
        assert instances
        assert all(isinstance(i, LineageInstance) for i in instances)
        assert all(i.num_clauses >= 1 for i in instances)


class TestSuite:
    def test_build_workload_includes_hard_instances(self):
        workload = build_workload("imdb")
        assert isinstance(workload, Workload)
        assert workload.hard()
        assert len(workload) > len(workload.hard())

    def test_build_workload_without_hard(self):
        workload = build_workload("academic", include_hard=False)
        assert not workload.hard()

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            build_workload("synthetic-nope")

    def test_default_workloads_order(self):
        names = [w.name for w in default_workloads(include_hard=False)]
        assert names == ["academic", "imdb", "tpch"]

    def test_hard_instances_across_workloads(self):
        workloads = default_workloads()
        pool = hard_instances(workloads)
        assert all("hard" in i.tags for i in pool)
        assert len(pool) == sum(len(w.hard()) for w in workloads)

    def test_statistics_shape(self):
        workload = build_workload("tpch", include_hard=False)
        stats = workload.statistics()
        assert set(stats) >= {"count", "avg_vars", "max_vars",
                              "avg_clauses", "max_clauses"}
