"""Tests for ExaBan (exact Banzhaf computation over complete d-trees)."""

import pytest

from repro.baselines.brute_force import banzhaf_all_brute_force
from repro.boolean.assignments import banzhaf_brute_force, count_models
from repro.boolean.dnf import DNF
from repro.core.banzhaf import (
    banzhaf_exact,
    penrose_banzhaf_index,
    penrose_banzhaf_power,
)
from repro.core.exaban import IncompleteDTreeError, exaban, exaban_all, model_count
from repro.dtree.compile import compile_dnf
from repro.dtree.incremental import IncrementalCompiler
from repro.dtree.nodes import DecompAnd, DecompOr, ExclusiveOr, LiteralLeaf, TrueLeaf
from repro.workloads.generators import (
    bipartite_lineage,
    chain_lineage,
    random_positive_dnf,
    star_join_lineage,
)


class TestWorkedExamples:
    def test_example11(self, example9_dnf):
        tree = compile_dnf(example9_dnf)
        assert exaban(tree, 0) == (3, 3)
        assert exaban(tree, 1) == (1, 3)

    def test_example13(self, example13_dnf):
        tree = compile_dnf(example13_dnf)
        banzhaf, count = exaban(tree, 0)
        assert banzhaf == 3
        assert count == 11

    def test_example7_lineage(self):
        # Lineage of Example 6/7.  The S facts have Banzhaf value 1 as the
        # paper reports; the R and T facts (appearing in both clauses) have
        # value 3 by Definition 1 (see the note in test_assignments).
        lineage = DNF([[0, 1, 3], [0, 2, 3]])
        values = exaban_all(compile_dnf(lineage))
        assert values[0] == 3 and values[3] == 3
        assert values[1] == 1 and values[2] == 1


class TestLeafCases:
    def test_literal_cases(self):
        assert exaban(LiteralLeaf(1), 1) == (1, 1)
        assert exaban(LiteralLeaf(1, negated=True), 1) == (-1, 1)
        assert exaban(LiteralLeaf(2), 1) == (0, 1)

    def test_constant_cases(self):
        assert exaban(TrueLeaf([1, 2]), 1) == (0, 4)
        from repro.dtree.nodes import FalseLeaf
        assert exaban(FalseLeaf([1, 2]), 1) == (0, 0)

    def test_incomplete_tree_rejected(self):
        compiler = IncrementalCompiler(DNF([[0, 1], [1, 2]]))
        with pytest.raises(IncompleteDTreeError):
            exaban(compiler.root, 0)
        with pytest.raises(IncompleteDTreeError):
            exaban_all(compiler.root)
        with pytest.raises(IncompleteDTreeError):
            model_count(compiler.root)


class TestCombinationRules:
    def test_decomp_and(self):
        node = DecompAnd([LiteralLeaf(1), TrueLeaf([2, 3])])
        assert exaban(node, 1) == (4, 4)

    def test_decomp_or(self):
        # x1 | (x2 & x3): Banzhaf(x1) = 2^2 - 1 = 3.
        node = DecompOr([LiteralLeaf(1),
                         DecompAnd([LiteralLeaf(2), LiteralLeaf(3)])])
        assert exaban(node, 1) == (3, 5)

    def test_exclusive_or(self):
        positive = DecompAnd([LiteralLeaf(1), TrueLeaf([2])])
        negative = DecompAnd([LiteralLeaf(1, negated=True), LiteralLeaf(2)])
        node = ExclusiveOr([positive, negative])
        assert exaban(node, 1)[1] == 3  # models: {1}, {1,2}, {2}


class TestAgainstBruteForce:
    def test_random_functions(self, rng):
        for _ in range(60):
            function = random_positive_dnf(rng, rng.randint(1, 7),
                                           rng.randint(1, 7), (1, 3))
            tree = compile_dnf(function)
            expected = banzhaf_all_brute_force(function)
            assert exaban_all(tree) == expected
            for variable in sorted(function.domain):
                assert exaban(tree, variable) == (expected[variable],
                                                  count_models(function))

    def test_structured_generators(self, rng):
        for function in (
            star_join_lineage(rng, 2, 2),
            chain_lineage(rng, 4),
            bipartite_lineage(rng, 3, 3, 0.5),
        ):
            tree = compile_dnf(function)
            for variable in sorted(function.variables):
                assert exaban(tree, variable)[0] == banzhaf_brute_force(
                    function, variable)

    def test_exaban_all_matches_single_variable_runs(self, rng):
        function = random_positive_dnf(rng, 8, 10, (2, 3))
        tree = compile_dnf(function)
        all_values = exaban_all(tree)
        for variable in sorted(function.domain):
            assert all_values[variable] == exaban(tree, variable)[0]


class TestConvenienceAPI:
    def test_banzhaf_exact_single_and_all(self, example9_dnf):
        assert banzhaf_exact(example9_dnf, 0) == 3
        assert banzhaf_exact(example9_dnf) == {0: 3, 1: 1, 2: 1}

    def test_penrose_power(self, example9_dnf):
        # 3 / 2^(3-1) = 3/4.
        from fractions import Fraction
        assert penrose_banzhaf_power(example9_dnf, 0) == Fraction(3, 4)

    def test_penrose_index_sums_to_one(self, example9_dnf):
        index = penrose_banzhaf_index(example9_dnf)
        assert sum(index.values()) == 1

    def test_penrose_index_of_false(self):
        index = penrose_banzhaf_index(DNF.false([0, 1]))
        assert all(value == 0 for value in index.values())
