"""Fault-injection tests for the concurrent serving front-end.

Every failure a production front-end meets must come back as a
*structured response* -- never a lost ticket, a hung client, or a dead
worker loop:

* malformed JSONL lines,
* an engine raising mid-computation (including mid-batch),
* queue-full / per-client-budget admission rejections,
* deadlines expiring in the queue and deadlines exhausted mid-compute
  (graceful degradation to best-effort partial bounds).

The injection point is :meth:`Engine.attribute` / ``attribute_many``
(class-level monkeypatch), which is exactly where the service's own
worker-side computation happens.
"""

import io
import json
import threading
import time

import pytest

from repro import Database
from repro.engine import EngineConfig
from repro.engine.engine import Engine
from repro.engine.frontend import (
    FrontendConfig,
    ServingFrontend,
    serve_jsonl_concurrent,
)
from repro.engine.serve import AttributionService

pytestmark = pytest.mark.concurrency

QUERY = "Q(X) :- R(X), S(X, Y)"
QUERY2 = "Q(X) :- R(X), T(X, Y)"
#: Non-read-once (non-hierarchical) shape: compilation must Shannon-expand,
#: so a zero-step budget exhausts deterministically.
HARD = "Q() :- R(X), S(X, Y), T(Y)"


@pytest.fixture
def database():
    db = Database()
    for value in ("a", "b", "c"):
        db.add_fact("R", (value,))
    for row in (("a", 1), ("b", 1), ("c", 2)):
        db.add_fact("S", row)
        db.add_fact("T", row)
    return db


@pytest.fixture
def hard_database():
    """Bipartite join forcing Shannon expansion (no read-once form)."""
    db = Database()
    for i in range(4):
        db.add_fact("R", (i,))
        db.add_fact("T", (i,))
        for j in range(4):
            db.add_fact("S", (i, j))
    return db


class _Gate:
    """Patch Engine.attribute so the worker blocks until released --
    the deterministic way to hold a queue slot or expire a deadline."""

    def __init__(self, monkeypatch):
        self.started = threading.Event()
        self.release = threading.Event()
        original = Engine.attribute

        def gated(engine, query, database, **kwargs):
            self.started.set()
            assert self.release.wait(timeout=30), "gate never released"
            return original(engine, query, database, **kwargs)

        monkeypatch.setattr(Engine, "attribute", gated)


class TestMalformedInput:
    def test_bad_jsonl_lines_become_error_responses(self, database):
        service = AttributionService(database)
        lines = [
            json.dumps({"op": "attribute", "query": QUERY, "id": 0}),
            "this is not json {",
            json.dumps({"op": "attribute", "query": QUERY2, "id": 1}),
            json.dumps({"op": "nonsense", "query": QUERY, "id": 2}),
            json.dumps({"op": "attribute", "query": QUERY, "id": 3}),
        ]
        output = io.StringIO()
        all_ok = serve_jsonl_concurrent(service, lines, output,
                                        FrontendConfig(workers=3))
        assert all_ok is False
        rows = [json.loads(line) for line in output.getvalue().splitlines()]
        assert len(rows) == 5  # one response per input line, in order
        assert [row.get("id") for row in rows] == [0, None, 1, 2, 3]
        assert [row["ok"] for row in rows] == [True, False, True, False,
                                               True]
        assert "error" in rows[1] and "error" in rows[3]
        report = service.stats()
        assert report["requests_served"] == 5
        assert report["request_errors"] == 2

    def test_invalid_request_rejected_at_admission(self, database):
        service = AttributionService(database)
        with ServingFrontend(service, FrontendConfig(workers=2)) as frontend:
            response = frontend.submit({"op": "attribute", "query": QUERY,
                                        "k": 3, "id": 9})
            assert response["ok"] is False
            assert response["id"] == 9
            assert "k" in response["error"]
            # The bad request never occupied a queue slot.
            assert frontend.stats()["rejected_invalid"] == 1
            assert frontend.stats()["submitted"] == 0


class TestEngineFaults:
    def test_mid_compute_raise_is_a_structured_response(self, database,
                                                        monkeypatch):
        service = AttributionService(database)
        broken = threading.Event()
        broken.set()
        original = Engine.attribute

        def flaky(engine, query, db, **kwargs):
            if broken.is_set():
                raise RuntimeError("injected mid-compute fault")
            return original(engine, query, db, **kwargs)

        monkeypatch.setattr(Engine, "attribute", flaky)
        frontend = ServingFrontend(service,
                                   FrontendConfig(workers=4, batch_max=1))
        try:
            # A storm of identical requests while the engine is broken:
            # coalescing must not let the leader's failure strand the
            # followers or poison the single-flight map.
            tickets = [frontend.submit_nowait(
                {"op": "attribute", "query": QUERY, "id": i})
                for i in range(8)]
            responses = [ticket.result(timeout=30) for ticket in tickets]
            assert all(r["ok"] is False for r in responses)
            assert all("error" in r for r in responses)
            assert sorted(r["id"] for r in responses) == list(range(8))

            # Heal the engine: the same key must compute fresh (the
            # failed flight was not cached and not left in-flight).
            broken.clear()
            healed = frontend.submit({"op": "attribute", "query": QUERY})
            assert healed["ok"] is True
            assert healed["answers"]
        finally:
            frontend.close()

    def test_mid_batch_raise_falls_back_per_request(self, database,
                                                    monkeypatch):
        service = AttributionService(database)
        original_many = Engine.attribute_many

        def broken_many(engine, queries, db, **kwargs):
            # Engine.attribute delegates here with a single query, so
            # only the *batched* pass (the one submit_batch issues) dies.
            queries = list(queries)
            if len(queries) > 1:
                raise RuntimeError("injected batch fault")
            return original_many(engine, queries, db, **kwargs)

        monkeypatch.setattr(Engine, "attribute_many", broken_many)
        gate = _Gate(monkeypatch)  # holds worker 0 so a batch can form
        frontend = ServingFrontend(
            service, FrontendConfig(workers=1, max_queue=8, coalesce=False))
        try:
            blocker = frontend.submit_nowait(
                {"op": "attribute", "query": QUERY2})
            assert gate.started.wait(timeout=30)
            tickets = [frontend.submit_nowait(
                {"op": "attribute", "query": QUERY, "id": i})
                for i in range(3)]
            gate.release.set()
            assert blocker.result(timeout=30)["ok"] is True
            # attribute_many died, but each batched request was re-run
            # individually and answered.
            responses = [ticket.result(timeout=30) for ticket in tickets]
            assert [r["id"] for r in responses] == [0, 1, 2]
            assert all(r["ok"] is True for r in responses)
        finally:
            frontend.close()


class TestAdmissionControl:
    def test_queue_full_rejects_with_structure(self, database, monkeypatch):
        service = AttributionService(database)
        gate = _Gate(monkeypatch)
        frontend = ServingFrontend(
            service, FrontendConfig(workers=1, max_queue=1, coalesce=False,
                                    batch_max=1))
        try:
            running = frontend.submit_nowait(
                {"op": "attribute", "query": QUERY, "id": "running"})
            assert gate.started.wait(timeout=30)  # worker busy
            queued = frontend.submit_nowait(
                {"op": "attribute", "query": QUERY, "id": "queued"})
            rejected = frontend.submit_nowait(
                {"op": "attribute", "query": QUERY, "id": "rejected"})
            # The overflow submission came back immediately as a dict,
            # not a ticket.
            assert isinstance(rejected, dict)
            assert rejected["ok"] is False
            assert rejected["rejected"] == "queue_full"
            assert rejected["id"] == "rejected"

            gate.release.set()
            assert running.result(timeout=30)["ok"] is True
            assert queued.result(timeout=30)["ok"] is True
            assert frontend.stats()["shed"]["queue_full"] == 1
            assert service.stats_counters.shed_requests == 1
        finally:
            frontend.close()

    def test_client_budget_rejects_only_the_hog(self, database,
                                                monkeypatch):
        service = AttributionService(database)
        gate = _Gate(monkeypatch)
        frontend = ServingFrontend(
            service, FrontendConfig(workers=1, max_queue=4, coalesce=False,
                                    batch_max=1,
                                    max_inflight_per_client=1))
        try:
            first = frontend.submit_nowait(
                {"op": "attribute", "query": QUERY, "client": "alice"})
            assert gate.started.wait(timeout=30)
            over_budget = frontend.submit_nowait(
                {"op": "attribute", "query": QUERY, "client": "alice",
                 "id": "second"})
            assert isinstance(over_budget, dict)
            assert over_budget["ok"] is False
            assert over_budget["rejected"] == "client_budget"
            # A different client is unaffected by alice's budget.
            other = frontend.submit_nowait(
                {"op": "attribute", "query": QUERY2, "client": "bob"})
            assert not isinstance(other, dict)

            gate.release.set()
            assert first.result(timeout=30)["ok"] is True
            assert other.result(timeout=30)["ok"] is True
            # Budget released with the response: alice may submit again.
            again = frontend.submit({"op": "attribute", "query": QUERY,
                                     "client": "alice"})
            assert again["ok"] is True
            assert frontend.stats()["shed"]["client_budget"] == 1
        finally:
            frontend.close()

    def test_deadline_expired_in_queue_is_shed(self, database, monkeypatch):
        service = AttributionService(database)
        gate = _Gate(monkeypatch)
        frontend = ServingFrontend(
            service, FrontendConfig(workers=1, max_queue=4, coalesce=False,
                                    batch_max=1))
        try:
            blocker = frontend.submit_nowait(
                {"op": "attribute", "query": QUERY})
            assert gate.started.wait(timeout=30)
            # 1ms budget, but the only worker is held: by the time the
            # ticket is dequeued its deadline is long gone.
            doomed = frontend.submit_nowait(
                {"op": "attribute", "query": QUERY2, "deadline_ms": 1,
                 "id": "late"})
            gate.release.set()
            assert blocker.result(timeout=30)["ok"] is True
            response = doomed.result(timeout=30)
            assert response["ok"] is False
            assert response["rejected"] == "deadline"
            assert response["id"] == "late"
            assert frontend.stats()["shed"]["deadline"] == 1
        finally:
            frontend.close()


class TestShutdownRaces:
    def test_submit_racing_close_is_settled_not_stranded(
            self, database, monkeypatch):
        """A submission that passes the closed-check but enqueues after
        close() drained the queue must still get a response.

        Regression: the ticket used to sit in the dead queue forever
        while its caller blocked in ``Ticket.result()``.  The window is
        validation (query parsing) between the closed-check and the
        enqueue; holding the submission there while close() runs to
        completion makes the race deterministic.
        """
        service = AttributionService(database)
        frontend = ServingFrontend(service, FrontendConfig(workers=2))
        in_validate = threading.Event()
        proceed = threading.Event()
        original = AttributionService.validate_request

        def slow_validate(self, request):
            in_validate.set()
            assert proceed.wait(timeout=30)
            return original(self, request)

        monkeypatch.setattr(AttributionService, "validate_request",
                            slow_validate)
        outcome = {}

        def late_client():
            outcome["response"] = frontend.submit(
                {"op": "attribute", "query": QUERY, "id": "late"})

        thread = threading.Thread(target=late_client)
        thread.start()
        assert in_validate.wait(timeout=30)
        frontend.close()  # completes while the submission is mid-validation
        proceed.set()
        thread.join(timeout=30)
        assert not thread.is_alive(), "late submission stranded its caller"
        response = outcome["response"]
        assert response["ok"] is False
        assert response["rejected"] == "shutdown"
        assert response["id"] == "late"

    def test_blocking_submitters_racing_close_never_hang(
            self, database, monkeypatch):
        """close() under a single worker and a full queue of blocking
        submitters must terminate, and every submitter must get an
        answer.

        Regression: the worker's micro-batch drain could consume the
        in-queue shutdown sentinel and block re-posting it into a queue
        that blocked submitters kept full -- the sole worker then never
        exited and close() hung in join().
        """
        service = AttributionService(database)
        gate = _Gate(monkeypatch)
        frontend = ServingFrontend(
            service, FrontendConfig(workers=1, max_queue=1, coalesce=False,
                                    batch_max=4))
        results = []
        lock = threading.Lock()

        def client(index):
            try:
                response = frontend.submit(
                    {"op": "attribute", "query": QUERY, "id": index},
                    block=True)
            except RuntimeError:
                response = {"ok": False, "rejected": "closed"}
            with lock:
                results.append(response)

        first = frontend.submit_nowait({"op": "attribute", "query": QUERY2})
        assert gate.started.wait(timeout=30)  # the only worker is busy
        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        time.sleep(0.1)  # let the submitters saturate the 1-slot queue
        closer = threading.Thread(target=frontend.close)
        closer.start()
        gate.release.set()
        closer.join(timeout=30)
        assert not closer.is_alive(), "close() hung"
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive(), "a blocking submitter hung"
        assert first.result(timeout=30)["ok"] is True
        assert len(results) == 4  # every submitter got exactly one answer


class TestDeadlineDegradation:
    """A zero-step Shannon budget makes compilation exhaustion
    deterministic: with a deadline the service degrades to best-effort
    IchiBan bounds; without one the exhaustion is a structured error."""

    @pytest.fixture
    def strict_service(self, hard_database):
        return AttributionService(
            hard_database, EngineConfig(method="exact",
                                        max_shannon_steps=0))

    def test_deadline_miss_degrades_to_partial_bounds(self, strict_service):
        response = strict_service.submit({"op": "attribute", "query": HARD,
                                          "deadline_ms": 60000, "id": 5})
        assert response["ok"] is True
        assert response["degraded"] is True
        assert response["partial"] is True
        assert response["id"] == 5
        for answer in response["answers"]:
            for entry in answer["attributions"]:
                assert entry["lower"] <= entry["float"] <= entry["upper"]
        assert strict_service.stats()["requests_degraded"] == 1

    def test_without_deadline_budget_exhaustion_is_an_error(
            self, strict_service):
        response = strict_service.submit({"op": "attribute", "query": HARD,
                                          "id": 6})
        assert response["ok"] is False
        assert response["id"] == 6
        assert "error" in response

    def test_degradation_through_the_frontend(self, strict_service):
        with ServingFrontend(strict_service,
                             FrontendConfig(workers=2)) as frontend:
            response = frontend.submit({"op": "attribute", "query": HARD,
                                        "deadline_ms": 60000})
            assert response["ok"] is True
            assert response["degraded"] is True
            assert frontend.stats()["degraded"] == 1

    def test_rank_degrades_under_deadline(self, strict_service):
        response = strict_service.submit({"op": "rank", "query": HARD,
                                          "deadline_ms": 60000})
        assert response["ok"] is True
        assert response["degraded"] is True
        for answer in response["answers"]:
            for entry in answer["ranking"]:
                assert entry["lower"] <= entry["upper"]
