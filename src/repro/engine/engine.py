"""The batched, cache-aware attribution engine.

This is the single execution path behind :func:`repro.attribute_facts`, the
CLI, the examples and the experiment runner.  Given queries (or raw
lineages) it runs a four-stage pipeline:

1. **evaluate** -- evaluate each query and build per-answer lineage DNFs
   (:mod:`repro.db.lineage`);
2. **canonicalize** -- rename each lineage into its variable-order-independent
   canonical form (:mod:`repro.engine.canonical`) and look it up in the
   lineage cache, deduplicating isomorphic answers within the batch;
3. **compute** -- for the distinct cache misses, compile d-trees and run the
   selected algorithm, either serially or fanned out over a
   ``concurrent.futures`` process pool with chunked scheduling and a
   transparent serial fallback;
4. **assemble** -- translate canonical-space values back through each
   answer's variable mapping and attach database facts.

Method selection mirrors the paper's fallback story (Tables 4 and 6):
``method="auto"`` tries exact ExaBan under a compilation budget and falls
back to anytime AdaBan with an epsilon guarantee when the budget is
exhausted.  The fallback shares the wall-clock budget; a lineage that
defeats both raises (``ApproximationTimeout``), which the experiment
runner records as a failure rather than a crash.

Typical use::

    from repro.engine import Engine, EngineConfig

    engine = Engine(EngineConfig(method="auto", max_workers=4))
    for query, results in engine.attribute_many(queries, database):
        ...
    print(engine.stats.as_dict())
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from fractions import Fraction
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Literal,
    Optional,
    Sequence,
    Tuple,
)

from repro.boolean.dnf import DNF
from repro.core.adaban import adaban_all
from repro.core.exaban import exaban_all
from repro.core.shapley import shapley_all
from repro.db.database import Database
from repro.db.lineage import AnswerLineage, DomainPolicy, lineage_of_answers
from repro.db.query import Query
from repro.dtree.compile import (
    CompilationBudget,
    CompilationLimitReached,
    compile_dnf,
)
from repro.engine.cache import CachedAttribution, LineageCache
from repro.engine.canonical import CanonicalLineage, canonicalize
from repro.engine.stats import EngineStats

EngineMethod = Literal["auto", "exact", "approximate", "shapley"]

#: Compilation budget used by ``auto`` when the config leaves the Shannon
#: budget unlimited: generous enough for every workload lineage that the
#: paper's prototype solves exactly, small enough that pathological
#: instances fall back to AdaBan instead of hanging.
_DEFAULT_AUTO_SHANNON_STEPS = 50_000

#: Deep d-trees (one Shannon expansion per level) need head-room beyond
#: CPython's default recursion limit; mirrored in worker processes.
_RECURSION_LIMIT = 100_000


def ensure_recursion_head_room() -> None:
    """Raise the interpreter recursion limit for deep d-tree traversals.

    Shared by the engine's serial path, its pool workers, and the
    experiment runner, so the head-room is defined in exactly one place.
    """
    if sys.getrecursionlimit() < _RECURSION_LIMIT:
        sys.setrecursionlimit(_RECURSION_LIMIT)


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs of the engine.

    Attributes
    ----------
    method:
        ``"auto"`` (exact with AdaBan fallback), ``"exact"``,
        ``"approximate"`` or ``"shapley"``.
    epsilon:
        Relative-error guarantee for approximate results (used by
        ``"approximate"`` and by the ``auto`` fallback).
    max_shannon_steps:
        Shannon-expansion budget for exact compilation.  ``None`` means
        unlimited for ``"exact"``/``"shapley"``; ``auto`` substitutes a
        generous default so the fallback can trigger.
    timeout_seconds:
        Per-lineage wall-clock budget for exact compilation (``None`` =
        unlimited).
    max_workers:
        Process-pool width for the compute stage.  ``0`` or ``1`` runs
        serially; values above 1 fan independent lineages out over
        ``concurrent.futures.ProcessPoolExecutor``.
    chunk_size:
        Number of lineages submitted per pool task, amortizing IPC overhead
        over several small computations.
    parallel_min_tasks:
        Minimum number of distinct cache misses before the pool is used at
        all; tiny batches stay serial (pool startup would dominate).
    cache_size:
        Capacity of the result cache (entries).
    dtree_cache_size:
        Capacity of the in-process compiled-d-tree cache; kept much
        smaller than the result cache because trees can be large object
        graphs.
    domain:
        Lineage domain policy, forwarded to
        :func:`repro.db.lineage.lineage_of_answers`.
    """

    method: EngineMethod = "auto"
    epsilon: float = 0.1
    max_shannon_steps: Optional[int] = None
    timeout_seconds: Optional[float] = None
    max_workers: int = 0
    chunk_size: int = 8
    parallel_min_tasks: int = 4
    cache_size: int = 4096
    dtree_cache_size: int = 256
    domain: DomainPolicy = "lineage"

    def __post_init__(self) -> None:
        if self.method not in ("auto", "exact", "approximate", "shapley"):
            raise ValueError(
                f"unknown engine method {self.method!r}; expected 'auto', "
                "'exact', 'approximate' or 'shapley'"
            )


@dataclass(frozen=True)
class LineageAttribution:
    """Attribution of one raw lineage, in *original* variable space.

    ``method_used`` records the algorithm that actually ran (relevant under
    ``auto``); ``bounds`` carries the certified interval per variable when
    the method provides one.
    """

    lineage: DNF
    method_used: str
    values: Dict[int, Fraction]
    bounds: Dict[int, Tuple[int, int]]


# --------------------------------------------------------------------- #
# The per-lineage computation, shared by the serial path and the workers
# --------------------------------------------------------------------- #


def _effective_shannon_steps(method: EngineMethod,
                             configured: Optional[int]) -> Optional[int]:
    if configured is not None:
        return configured
    return _DEFAULT_AUTO_SHANNON_STEPS if method == "auto" else None


def _approximate(function: DNF, epsilon: float,
                 timeout_seconds: Optional[float]) -> CachedAttribution:
    approx = adaban_all(function, epsilon=epsilon,
                        timeout_seconds=timeout_seconds)
    return CachedAttribution(
        method_used="approximate",
        values={v: Fraction(r.estimate) for v, r in approx.items()},
        bounds={v: (r.lower, r.upper) for v, r in approx.items()},
    )


def _compute_canonical(function: DNF, method: EngineMethod, epsilon: float,
                       max_shannon_steps: Optional[int],
                       timeout_seconds: Optional[float],
                       tree: object = None
                       ) -> Tuple[CachedAttribution, bool, object]:
    """Attribute one canonical lineage; returns (result, fell_back, tree).

    ``tree`` may carry an already compiled d-tree (from the in-process
    d-tree cache); it is only consulted for the exact method, and the tree
    that was compiled (if any) is handed back so the caller can cache it.
    """
    if method == "approximate":
        return _approximate(function, epsilon, timeout_seconds), False, None

    steps = _effective_shannon_steps(method, max_shannon_steps)
    budget = CompilationBudget(max_shannon_steps=steps,
                               timeout_seconds=timeout_seconds)
    if method == "shapley":
        values = shapley_all(function, budget=budget)
        return CachedAttribution(method_used="shapley",
                                 values=dict(values)), False, None

    started = time.monotonic()
    try:
        if tree is None:
            tree = compile_dnf(function, budget=budget)
        raw = exaban_all(tree)
    except (CompilationLimitReached, RecursionError):
        if method != "auto":
            raise
        # The fallback shares the wall-clock budget: AdaBan only gets what
        # the failed exact attempt left over.  If it cannot certify epsilon
        # in that remainder, ApproximationTimeout propagates (the
        # experiment runner records it as a failure, matching the paper's
        # Table 6 where AdaBan too fails on some instances).
        remaining = None
        if timeout_seconds is not None:
            remaining = max(0.0, timeout_seconds
                            - (time.monotonic() - started))
        return _approximate(function, epsilon, remaining), True, None
    return CachedAttribution(
        method_used="exact",
        values={v: Fraction(value) for v, value in raw.items()},
        bounds={v: (value, value) for v, value in raw.items()},
    ), False, tree


def _worker_compute_chunk(payload: Tuple) -> List[Tuple[int, CachedAttribution, bool]]:
    """Process-pool task: attribute a chunk of canonical lineages.

    The payload is fully picklable: clause tuples plus the scalar method
    configuration.  Exceptions propagate to the parent through the future.
    """
    chunk, method, epsilon, max_shannon_steps, timeout_seconds = payload
    ensure_recursion_head_room()
    results = []
    for index, num_variables, clauses in chunk:
        function = DNF(clauses, domain=range(num_variables))
        outcome, fell_back, _ = _compute_canonical(
            function, method, epsilon, max_shannon_steps, timeout_seconds)
        results.append((index, outcome, fell_back))
    return results


class Engine:
    """Batched attribution engine with a lineage cache and parallel fan-out.

    One engine instance owns one cache and one stats object; reuse the
    instance across queries to benefit from cross-query memoization.  Cache
    operations are individually lock-protected, so threads sharing an
    engine can at worst duplicate a computation (never corrupt state);
    stats counters are best-effort under concurrency.  The process pool is
    created per compute batch and always torn down before the batch
    returns.
    """

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()
        self.cache = LineageCache(self.config.cache_size,
                                  self.config.dtree_cache_size)
        self.stats = EngineStats()

    # ----------------------------------------------------------------- #
    # Public API
    # ----------------------------------------------------------------- #

    def attribute(self, query: Query, database: Database
                  ) -> List["AttributionResult"]:
        """Attribute every answer of one query (batched internally)."""
        for _, results in self.attribute_many([query], database):
            return results
        return []

    def attribute_many(self, queries: Iterable[Query], database: Database
                       ) -> Iterator[Tuple[Query, List["AttributionResult"]]]:
        """Attribute a stream of queries; yields ``(query, results)`` pairs.

        Results for each query are yielded as soon as that query's batch
        completes, so callers can start consuming attributions while later
        queries are still being computed.  The cache persists across the
        whole stream: queries sharing lineage structure pay for compilation
        once.
        """
        from repro.core.attribution import AttributionResult

        for query in queries:
            self.stats.queries += 1
            with self.stats.timed("evaluate"):
                answers = lineage_of_answers(query, database,
                                             domain=self.config.domain)
            outcomes = self._attribute_batch([a.lineage for a in answers])
            with self.stats.timed("assemble"):
                results = [
                    self._assemble(answer, outcome, database)
                    for answer, outcome in zip(answers, outcomes)
                ]
            yield query, results

    def attribute_lineages(self, lineages: Sequence[DNF]
                           ) -> List[LineageAttribution]:
        """Attribute raw lineage DNFs (the experiment-runner entry point).

        Skips query evaluation entirely; values and bounds come back in the
        lineages' own variable space.
        """
        outcomes = self._attribute_batch(lineages)
        attributions = []
        with self.stats.timed("assemble"):
            for lineage, (canonical, cached) in zip(lineages, outcomes):
                attributions.append(LineageAttribution(
                    lineage=lineage,
                    method_used=cached.method_used,
                    values=self._map_back(cached.values, canonical),
                    bounds={canonical.from_canonical[v]: bound
                            for v, bound in cached.bounds.items()},
                ))
        return attributions

    def reset_stats(self) -> None:
        """Zero the stats counters (the cache is left intact)."""
        self.stats.reset()

    # ----------------------------------------------------------------- #
    # Pipeline stages
    # ----------------------------------------------------------------- #

    def _attribute_batch(self, lineages: Sequence[DNF]
                         ) -> List[Tuple[CanonicalLineage, CachedAttribution]]:
        """Canonicalize, cache-check, compute and return per-lineage outcomes."""
        config = self.config
        self.stats.answers += len(lineages)

        with self.stats.timed("canonicalize"):
            canonicals = [canonicalize(lineage) for lineage in lineages]
            keys = [self.cache.result_key(c.key, config.method, config.epsilon)
                    for c in canonicals]
            cached: Dict[int, CachedAttribution] = {}
            pending: Dict[object, List[int]] = {}
            for index, key in enumerate(keys):
                hit = self.cache.results.get(key)
                if hit is not None:
                    cached[index] = hit
                    self.stats.cache_hits += 1
                elif key in pending:
                    # An isomorphic lineage earlier in this batch is already
                    # scheduled; share its computation.
                    pending[key].append(index)
                    self.stats.cache_hits += 1
                else:
                    pending[key] = [index]
                    self.stats.cache_misses += 1

        with self.stats.timed("compute"):
            tasks = [(key, indices[0]) for key, indices in pending.items()]
            # Cache each outcome as soon as it is computed: if a later task
            # fails (budget exhaustion on a pathological lineage), the work
            # already done stays reusable and a per-instance retry hits it.
            for position, outcome in self._compute_tasks(
                    [canonicals[index] for _, index in tasks]):
                key = tasks[position][0]
                self.cache.results.put(key, outcome)
                for index in pending[key]:
                    cached[index] = outcome

        return [(canonicals[index], cached[index])
                for index in range(len(lineages))]

    def _compute_tasks(self, tasks: Sequence[CanonicalLineage]
                       ) -> Iterator[Tuple[int, CachedAttribution]]:
        """Run the distinct cache misses, in the pool or serially.

        Yields ``(task position, outcome)`` pairs as they complete, so the
        caller can cache incrementally; ``compilations`` is counted per
        completed outcome, never for work a failure prevented.
        """
        if not tasks:
            return
        config = self.config
        done = set()
        if (config.max_workers > 1
                and len(tasks) >= config.parallel_min_tasks):
            try:
                for position, outcome in self._compute_parallel(tasks):
                    self.stats.compilations += 1
                    done.add(position)
                    yield position, outcome
                return
            except (OSError, ImportError, BrokenProcessPool):
                # Pool creation can fail in restricted environments, and a
                # worker can die mid-batch (OOM-killed on a huge d-tree);
                # the serial path computes identical results either way,
                # picking up where the pool left off.
                pass
        for position, canonical in enumerate(tasks):
            if position in done:
                continue
            outcome = self._compute_serial(canonical)
            self.stats.compilations += 1
            yield position, outcome

    def _compute_serial(self, canonical: CanonicalLineage) -> CachedAttribution:
        config = self.config
        tree = None
        if config.method in ("auto", "exact"):
            tree = self.cache.dtrees.get(canonical.key)
        ensure_recursion_head_room()
        outcome, fell_back, compiled = _compute_canonical(
            canonical.dnf, config.method, config.epsilon,
            config.max_shannon_steps, config.timeout_seconds, tree=tree)
        if fell_back:
            self.stats.fallbacks += 1
        if compiled is not None and tree is None:
            self.cache.dtrees.put(canonical.key, compiled)
        return outcome

    def _compute_parallel(self, tasks: Sequence[CanonicalLineage]
                          ) -> Iterator[Tuple[int, CachedAttribution]]:
        """Fan the tasks out over a process pool, yielding as chunks finish.

        The chunk size amortizes IPC over several small computations but is
        capped so every requested worker gets at least one chunk -- a fixed
        chunk size would silently throttle parallelism on mid-size batches.
        """
        config = self.config
        max_workers = min(config.max_workers, os.cpu_count() or 1)
        chunk_size = max(1, min(config.chunk_size,
                                -(-len(tasks) // max(1, max_workers))))
        chunks: List[List[Tuple[int, int, Tuple[Tuple[int, ...], ...]]]] = []
        for start in range(0, len(tasks), chunk_size):
            chunk = [
                (position, canonical.dnf.num_variables(), canonical.key[1])
                for position, canonical
                in enumerate(tasks[start:start + chunk_size], start)
            ]
            chunks.append(chunk)

        workers = min(config.max_workers, len(chunks), os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            payloads = [
                (chunk, config.method, config.epsilon,
                 config.max_shannon_steps, config.timeout_seconds)
                for chunk in chunks
            ]
            for chunk_results in pool.map(_worker_compute_chunk, payloads):
                for position, outcome, fell_back in chunk_results:
                    if fell_back:
                        self.stats.fallbacks += 1
                    yield position, outcome
        self.stats.parallel_batches += 1

    # ----------------------------------------------------------------- #
    # Assembly helpers
    # ----------------------------------------------------------------- #

    @staticmethod
    def _map_back(values: Dict[int, Fraction], canonical: CanonicalLineage
                  ) -> Dict[int, Fraction]:
        return {canonical.from_canonical[variable]: value
                for variable, value in values.items()}

    def _assemble(self, answer: AnswerLineage,
                  outcome: Tuple[CanonicalLineage, CachedAttribution],
                  database: Database) -> "AttributionResult":
        from repro.core.attribution import (
            AttributionResult,
            _attributions_from_values,
        )

        canonical, cached = outcome
        values = self._map_back(cached.values, canonical)
        bounds = {canonical.from_canonical[v]: bound
                  for v, bound in cached.bounds.items()}
        return AttributionResult(
            answer=answer.values,
            attributions=_attributions_from_values(values, database, bounds),
        )


def engine_for(method: EngineMethod = "auto", *,
               epsilon: float = 0.1,
               budget: Optional[CompilationBudget] = None,
               max_workers: int = 0) -> Engine:
    """Build an engine from the legacy per-call knobs of ``attribute_facts``."""
    config = EngineConfig(method=method, epsilon=epsilon,
                          max_workers=max_workers)
    if budget is not None:
        config = replace(config,
                         max_shannon_steps=budget.max_shannon_steps,
                         timeout_seconds=budget.timeout_seconds)
    return Engine(config)
