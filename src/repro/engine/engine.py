"""The batched, cache-aware attribution engine.

This is the single execution path behind :func:`repro.attribute_facts`, the
CLI, the examples and the experiment runner.  Given queries (or raw
lineages) it runs a four-stage pipeline:

1. **evaluate** -- evaluate each query and build per-answer lineage DNFs
   (:mod:`repro.db.lineage`);
2. **canonicalize** -- rename each lineage into its variable-order-independent
   canonical form (:mod:`repro.engine.canonical`) and look it up in the
   cache tiers -- the in-memory lineage cache first, then the optional
   persistent store (:mod:`repro.engine.store`) -- deduplicating
   isomorphic answers within the batch;
3. **compute**, split into **compile-once / evaluate-per-method** -- each
   distinct cache miss first obtains its lineage's
   :class:`~repro.engine.artifact.CompiledLineage` (memory artifact cache
   -> store artifact tier -> fresh), then the selected algorithm
   *evaluates* it: a complete artifact is evaluated exactly by every
   method, a partial one is resumed from its persisted frontier, and the
   updated artifact is written back so the compilation is paid at most
   once per canonical lineage -- across methods, epsilons, k values and
   (via the store) processes.  Batches may also fan out over a
   ``concurrent.futures`` process pool with chunked scheduling and a
   transparent serial fallback (artifacts never cross the pool boundary);
4. **assemble** -- translate canonical-space values back through each
   answer's variable mapping and attach database facts.

Freshly computed converged results -- and fresh or further-refined
compilation artifacts, converged or not -- are written back to every
configured tier, so a process with an
:class:`~repro.engine.store.DiskStore` leaves a warm cache behind for the
next process (see :meth:`Engine.save_cache`/:meth:`Engine.load_cache` for
the explicit warm-start flow, and :mod:`repro.engine.serve` for the
long-lived serving loop built on top).

Method selection mirrors the paper's fallback story (Tables 4 and 6):
``method="auto"`` tries exact ExaBan under a compilation budget and falls
back to anytime AdaBan with an epsilon guarantee when the budget is
exhausted.  The fallback shares the wall-clock budget; a lineage that
defeats both raises (``ApproximationTimeout``), which the experiment
runner records as a failure rather than a crash.

Ranking is first-class: ``method="rank"`` and ``method="topk"`` (with
``k``) run IchiBan (Section 4.1) through the same pipeline -- canonical
variable space, shared lineage cache, optional pool fan-out -- so
isomorphic answers share one anytime run and repeat ranking traffic is
served from the cache.  A cached complete d-tree short-circuits to an
exact ranking; budget exhaustion degrades to best-so-far intervals (see
:mod:`repro.engine.ranking`).  Read rankings through :meth:`Engine.rank`
/ :meth:`Engine.rank_many`.

Typical use::

    from repro.engine import Engine, EngineConfig

    engine = Engine(EngineConfig(method="auto", max_workers=4))
    for query, results in engine.attribute_many(queries, database):
        ...
    print(engine.stats.as_dict())

    ranker = Engine(EngineConfig(method="topk", k=5))
    for answer, entries in ranker.rank(query, database):
        ...
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from fractions import Fraction
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Literal,
    Optional,
    Sequence,
    Tuple,
)

from repro.boolean.dnf import DNF
from repro.core.adaban import adaban_over_state, shared_state
from repro.core.exaban import exaban_all
from repro.core.ichiban import RankedVariable, ranked_from_bounds
from repro.core.shapley import shapley_all
from repro.db.database import Database, Fact
from repro.db.lineage import AnswerLineage, DomainPolicy, lineage_of_answers
from repro.db.query import Query
from repro.dtree.compile import (
    CompilationBudget,
    CompilationLimitReached,
    compile_dnf,
)
from repro.dtree.kernels import (
    HAVE_NUMPY,
    KERNEL_NAMES,
    KernelUnavailableError,
    prewarm_arenas,
)
from repro.engine.artifact import CompiledLineage, complete_compilation
from repro.engine.cache import CachedAttribution, LineageCache
from repro.engine.canonical import CanonicalKey, CanonicalLineage, canonicalize
from repro.engine.logstore import STORE_BACKENDS, resolve_store
from repro.engine.ranking import compute_ranking
from repro.engine.stats import EngineStats
from repro.engine.store import (
    CacheStore,
    load_artifacts,
    load_results,
    save_artifacts,
    save_results,
)
from repro.reliability import faults
from repro.reliability.errors import WorkerCrash
from repro.reliability.faults import resolve_fault_plan
from repro.reliability.resilient import wrap_store
from repro.reliability.supervisor import SupervisedPool

EngineMethod = Literal["auto", "exact", "approximate", "shapley",
                       "rank", "topk"]

#: One per-answer ranking: the answer tuple plus (fact, entry) pairs in
#: rank order.
RankedAnswer = Tuple[Tuple[object, ...], List[Tuple[Fact, RankedVariable]]]

#: Compilation budget used by ``auto`` when the config leaves the Shannon
#: budget unlimited: generous enough for every workload lineage that the
#: paper's prototype solves exactly, small enough that pathological
#: instances fall back to AdaBan instead of hanging.
_DEFAULT_AUTO_SHANNON_STEPS = 50_000

#: Deep d-trees (one Shannon expansion per level) need head-room beyond
#: CPython's default recursion limit; mirrored in worker processes.
_RECURSION_LIMIT = 100_000


def ensure_recursion_head_room() -> None:
    """Raise the interpreter recursion limit for deep d-tree traversals.

    Shared by the engine's serial path, its pool workers, and the
    experiment runner, so the head-room is defined in exactly one place.
    """
    if sys.getrecursionlimit() < _RECURSION_LIMIT:
        sys.setrecursionlimit(_RECURSION_LIMIT)


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs of the engine.

    Attributes
    ----------
    method:
        ``"auto"`` (exact with AdaBan fallback), ``"exact"``,
        ``"approximate"``, ``"shapley"``, or the IchiBan ranking methods
        ``"rank"`` (full per-answer ranking) and ``"topk"`` (requires
        ``k``).
    epsilon:
        Relative-error guarantee for approximate results (used by
        ``"approximate"``, the ``auto`` fallback, and the ranking
        methods).  ``None`` is allowed for ``"rank"``/``"topk"`` only and
        demands certainty: pairwise-separated intervals for ``rank``, a
        decided top-k set for ``topk``.
    k:
        Top-k size for ``method="topk"``.  May be left ``None`` when every
        :meth:`Engine.rank` / :meth:`Engine.rank_many` call supplies its
        own ``k`` (the per-call override); must be ``None`` for every
        other method.
    max_shannon_steps:
        Shannon-expansion budget for exact compilation.  ``None`` means
        unlimited for ``"exact"``/``"shapley"``; ``auto`` substitutes a
        generous default so the fallback can trigger.  For the ranking
        methods the same number bounds the anytime run's bound
        evaluations (IchiBan's budget unit); exhaustion degrades to a
        best-so-far result instead of raising.
    timeout_seconds:
        Per-lineage wall-clock budget for exact compilation (``None`` =
        unlimited).
    max_workers:
        Process-pool width for the compute stage.  ``0`` or ``1`` runs
        serially; values above 1 fan independent lineages out over
        ``concurrent.futures.ProcessPoolExecutor``.
    chunk_size:
        Number of lineages submitted per pool task, amortizing IPC overhead
        over several small computations.
    parallel_min_tasks:
        Minimum number of distinct cache misses before the pool is used at
        all; tiny batches stay serial (pool startup would dominate).
    cache_size:
        Capacity of the result cache (entries).
    dtree_cache_size:
        Capacity of the in-memory compiled-lineage artifact cache
        (:class:`~repro.engine.artifact.CompiledLineage` entries, keyed
        by canonical lineage alone); kept much smaller than the result
        cache because trees can be large object graphs.  With a store
        configured, artifacts additionally persist to its artifact tier.
    domain:
        Lineage domain policy, forwarded to
        :func:`repro.db.lineage.lineage_of_answers`.
    store:
        Optional persistent result tier: a
        :class:`repro.engine.store.CacheStore` instance (e.g. a
        :class:`~repro.engine.store.DiskStore` or
        :class:`~repro.engine.logstore.LogStore`), or a *path string*
        naming a store root, opened via
        :func:`~repro.engine.logstore.open_store` with ``store_backend``.
        Memory misses fall through to the store before computing, and
        freshly computed converged results are written back, so
        canonical-space results survive process restarts.  ``None`` (the
        default) keeps the engine memory-only.
    store_backend:
        Backend name used when ``store`` is a path string: ``"disk"``
        (the legacy sharded-JSON :class:`~repro.engine.store.DiskStore`,
        default) or ``"log"`` (the append-only
        :class:`~repro.engine.logstore.LogStore`).  Only meaningful with
        a path-valued ``store``.
    numeric:
        Evaluation tier for the ranking methods: ``"exact"`` (default)
        runs IchiBan's exact-``Fraction`` interval refinement;
        ``"float"`` ranks by log-space float scores off the arena pass
        (:mod:`repro.dtree.arena`), falling back to exact evaluation
        only for boundary-straddling variables — and, for lineages whose
        compilation exhausts its budget, degrades to an order-only
        surrogate ranking instead of timing out.  Results are cached
        under a ``-float``-suffixed method, so the tiers never serve
        each other's entries.  Only meaningful for ``rank``/``topk``;
        :meth:`Engine.rank`/:meth:`Engine.rank_many` accept a per-call
        override.
    float_ulp_margin:
        Width multiplier (>= 1) applied to the float tier's per-variable
        relative-error bounds before straddler detection: larger margins
        fall back to exact arithmetic more eagerly.
    kernel:
        Arena evaluation backend (:mod:`repro.dtree.kernels`):
        ``"auto"`` (default) vectorizes fused passes over numpy whenever
        numpy is importable, the arena is inside the kernel envelope,
        and it is large enough to pay; ``"numpy"`` forces the kernel
        wherever sound and raises
        :class:`~repro.dtree.kernels.KernelUnavailableError` at
        construction when numpy is missing; ``"python"`` pins the
        pure-Python arena passes.  Exact results are bit-identical
        across backends; serial batches additionally *prewarm* eligible
        micro-batches in one stacked cross-request kernel sweep.
    store_retries:
        Extra attempts (with exponential backoff) granted to a transient
        store-I/O failure before it counts against the circuit breaker
        (:class:`~repro.reliability.resilient.ResilientStore`).  With
        both this and ``breaker_threshold`` at 0 the store is used
        unwrapped and I/O errors propagate as before.
    breaker_threshold:
        Consecutive terminal store failures that trip the circuit
        breaker, degrading the engine to memory-only caching (counted in
        ``EngineStats.store_degraded``) until a half-open probe
        re-attaches the store.
    pool_restarts:
        Worker-crash/hang budget of the supervised process pool: how
        many times the executor may be rebuilt (resubmitting only
        unfinished chunks) before the batch degrades to the serial path
        (:class:`~repro.reliability.supervisor.SupervisedPool`).
    pool_task_timeout:
        Per-task wall-clock watchdog of the supervised pool, in seconds:
        if no chunk completes within this window the pool is presumed
        hung and restarted (counted against ``pool_restarts``).
        ``None`` (default) disables the watchdog.
    fault_plan:
        Deterministic fault-injection plan for tests and chaos suites: a
        :class:`~repro.reliability.faults.FaultPlan`, a JSON string, or
        a dict/list spec (see :mod:`repro.reliability.faults`).  The
        plan is installed process-wide when the engine is constructed.
        ``None`` (the default) injects nothing and costs nothing.
    """

    method: EngineMethod = "auto"
    epsilon: Optional[float] = 0.1
    max_shannon_steps: Optional[int] = None
    timeout_seconds: Optional[float] = None
    max_workers: int = 0
    chunk_size: int = 8
    parallel_min_tasks: int = 4
    cache_size: int = 4096
    dtree_cache_size: int = 256
    domain: DomainPolicy = "lineage"
    k: Optional[int] = None
    store: Optional[object] = None
    store_backend: Optional[str] = None
    numeric: str = "exact"
    float_ulp_margin: int = 8
    kernel: str = "auto"
    store_retries: int = 2
    breaker_threshold: int = 5
    pool_restarts: int = 2
    pool_task_timeout: Optional[float] = None
    fault_plan: Optional[object] = None

    def __post_init__(self) -> None:
        if self.method not in ("auto", "exact", "approximate", "shapley",
                               "rank", "topk"):
            raise ValueError(
                f"unknown engine method {self.method!r}; expected 'auto', "
                "'exact', 'approximate', 'shapley', 'rank' or 'topk'"
            )
        if self.epsilon is None and self.method in ("auto", "approximate"):
            raise ValueError(
                f"method {self.method!r} needs an epsilon (None is only "
                "meaningful for the ranking methods, where it demands "
                "certainty)"
            )
        if self.method == "topk":
            if self.k is not None and self.k < 1:
                raise ValueError("k must be at least 1")
        elif self.k is not None:
            raise ValueError(
                f"k is only meaningful for method='topk', not "
                f"{self.method!r}"
            )
        if self.numeric not in ("exact", "float"):
            raise ValueError(
                f"numeric must be 'exact' or 'float', not {self.numeric!r}")
        if self.numeric == "float" and self.method not in ("rank", "topk"):
            raise ValueError(
                "numeric='float' is only meaningful for the ranking "
                f"methods ('rank'/'topk'), not {self.method!r}")
        if self.float_ulp_margin < 1:
            raise ValueError("float_ulp_margin must be at least 1")
        if self.kernel not in KERNEL_NAMES:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; expected one of "
                f"{KERNEL_NAMES}")
        if self.kernel == "numpy" and not HAVE_NUMPY:
            # Fail at configuration time, not mid-batch: a forced numpy
            # kernel without numpy can never compute anything.
            raise KernelUnavailableError(
                "EngineConfig(kernel='numpy') requires numpy "
                "(pip install repro[fast]); use kernel='auto' for "
                "best-available")
        if self.store_backend is not None:
            if self.store_backend not in STORE_BACKENDS:
                raise ValueError(
                    f"unknown store_backend {self.store_backend!r}; "
                    f"expected one of {STORE_BACKENDS}")
            if not isinstance(self.store, str):
                raise ValueError(
                    "store_backend only applies when store is a path "
                    "string; pass an already-opened CacheStore instead")
        if self.store_retries < 0:
            raise ValueError("store_retries must be >= 0")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be >= 0")
        if self.pool_restarts < 0:
            raise ValueError("pool_restarts must be >= 0")
        if self.pool_task_timeout is not None and self.pool_task_timeout <= 0:
            raise ValueError("pool_task_timeout must be positive when given")
        # Validate the plan spec at configuration time, not mid-batch.
        resolve_fault_plan(self.fault_plan)


@dataclass(frozen=True)
class LineageAttribution:
    """Attribution of one raw lineage, in *original* variable space.

    ``method_used`` records the algorithm that actually ran (relevant under
    ``auto``); ``bounds`` carries the certified interval per variable when
    the method provides one.
    """

    lineage: DNF
    method_used: str
    values: Dict[int, Fraction]
    bounds: Dict[int, Tuple[int, int]]


# --------------------------------------------------------------------- #
# The per-lineage computation, shared by the serial path and the workers
# --------------------------------------------------------------------- #


def _effective_shannon_steps(method: EngineMethod,
                             configured: Optional[int]) -> Optional[int]:
    if configured is not None:
        return configured
    return _DEFAULT_AUTO_SHANNON_STEPS if method == "auto" else None


def _approximate(function: DNF, epsilon: float,
                 timeout_seconds: Optional[float],
                 compiler=None,
                 artifact_sink=None
                 ) -> Tuple[CachedAttribution, CompiledLineage]:
    """AdaBan over an owned anytime state; returns (result, artifact).

    ``compiler`` resumes a partial compilation (fresh state otherwise);
    the state's tree survives either way -- returned as the artifact on
    success, handed to ``artifact_sink`` before an
    ``ApproximationTimeout`` propagates, so even a failed attempt leaves
    resumable progress behind.
    """
    state = shared_state(function, compiler=compiler)
    try:
        approx = adaban_over_state(state, epsilon=epsilon,
                                   timeout_seconds=timeout_seconds)
    except Exception:
        if artifact_sink is not None:
            artifact_sink(CompiledLineage.from_compiler(state.compiler))
        raise
    return CachedAttribution(
        method_used="approximate",
        values={v: Fraction(r.estimate) for v, r in approx.items()},
        bounds={v: (r.lower, r.upper) for v, r in approx.items()},
    ), CompiledLineage.from_compiler(state.compiler)


def _complete_artifact(function: DNF, artifact: Optional[CompiledLineage],
                       budget: CompilationBudget,
                       partial_slot: list) -> CompiledLineage:
    """Obtain a *complete* artifact: reuse, resume-and-finish, or compile.

    On budget exhaustion mid-resume the mid-flight compiler is left in
    ``partial_slot`` (a one-element list) so the caller can keep the
    progress -- feed it to the ``auto`` fallback, or persist it --
    before the ``CompilationLimitReached`` propagates.
    """
    if artifact is not None and artifact.complete:
        return artifact
    if artifact is not None:
        compiler = artifact.resume_compiler()
        partial_slot.append(compiler)
        complete_compilation(compiler, budget)
        return CompiledLineage.from_compiler(compiler)
    tree = compile_dnf(function, budget=budget)
    return CompiledLineage.from_complete_tree(
        tree, shannon_steps=budget.shannon_steps)


def _compute_canonical(function: DNF, method: EngineMethod,
                       epsilon: Optional[float],
                       max_shannon_steps: Optional[int],
                       timeout_seconds: Optional[float],
                       artifact: Optional[CompiledLineage] = None,
                       k: Optional[int] = None,
                       artifact_sink=None,
                       numeric: str = "exact",
                       float_ulp_margin: int = 8,
                       kernel: str = "python",
                       stats=None
                       ) -> Tuple[CachedAttribution, bool,
                                  Optional[CompiledLineage], int]:
    """Attribute one canonical lineage (the evaluate-per-method stage).

    Returns ``(result, fell_back, artifact, refinement_rounds)``.
    ``artifact`` may carry the lineage's compilation state from the
    artifact tier: every method evaluates a *complete* artifact directly
    (no compilation at all) and *resumes* a partial one from its
    frontier; the artifact handed back -- fresh, reused, or further
    refined -- is what the caller caches/persists.  ``artifact_sink``
    receives partial progress when a computation fails (budget
    exhaustion), so the work survives the raised exception.
    """
    faults.check("compile.step")
    if method in ("rank", "topk"):
        # The configured step budget bounds the anytime run's bound
        # evaluations -- the ranking analogue of the Shannon budget, so
        # a budgeted engine never runs a ranking unbounded either.
        computation = compute_ranking(function, method, k, epsilon,
                                      timeout_seconds, artifact=artifact,
                                      max_steps=max_shannon_steps,
                                      numeric=numeric,
                                      float_ulp_margin=float_ulp_margin,
                                      kernel=kernel, stats=stats)
        return (computation.outcome, False, computation.artifact,
                computation.rounds)
    if method == "approximate":
        if artifact is not None and artifact.complete:
            # A complete artifact makes any epsilon free: read the exact
            # values (a valid approximation for every epsilon) directly,
            # without cloning or re-persisting the tree.  As under
            # ``auto``, ``method_used`` records what actually ran.
            occurring = function.variables
            raw = exaban_all(artifact.root, counts=artifact.counts,
                             kernel=kernel, stats=stats)
            return CachedAttribution(
                method_used="exact",
                values={v: Fraction(value) for v, value in raw.items()
                        if v in occurring},
                bounds={v: (value, value) for v, value in raw.items()
                        if v in occurring},
            ), False, artifact, 0
        compiler = (artifact.resume_compiler() if artifact is not None
                    else None)
        outcome, artifact_out = _approximate(function, epsilon,
                                             timeout_seconds,
                                             compiler=compiler,
                                             artifact_sink=artifact_sink)
        return outcome, False, artifact_out, 0

    steps = _effective_shannon_steps(method, max_shannon_steps)
    budget = CompilationBudget(max_shannon_steps=steps,
                               timeout_seconds=timeout_seconds)
    started = time.monotonic()
    partial_slot: list = []
    try:
        artifact_out = _complete_artifact(function, artifact, budget,
                                          partial_slot)
        if method == "shapley":
            values = shapley_all(function, tree=artifact_out.root)
            return (CachedAttribution(method_used="shapley",
                                      values=dict(values)),
                    False, artifact_out, 0)
        raw = exaban_all(artifact_out.root, counts=artifact_out.counts,
                         kernel=kernel, stats=stats)
    except (CompilationLimitReached, RecursionError):
        compiler = partial_slot[0] if partial_slot else None
        if method != "auto":
            if compiler is not None and artifact_sink is not None:
                artifact_sink(CompiledLineage.from_compiler(compiler))
            raise
        # The fallback shares the wall-clock budget: AdaBan only gets what
        # the failed exact attempt left over -- and it *continues from*
        # the partial tree that attempt built (when there is one), so the
        # budget spent on the exact side is not thrown away.  If it cannot
        # certify epsilon in that remainder, ApproximationTimeout
        # propagates (the experiment runner records it as a failure,
        # matching the paper's Table 6 where AdaBan too fails on some
        # instances).
        remaining = None
        if timeout_seconds is not None:
            remaining = max(0.0, timeout_seconds
                            - (time.monotonic() - started))
        outcome, fallback_artifact = _approximate(function, epsilon,
                                                  remaining,
                                                  compiler=compiler,
                                                  artifact_sink=artifact_sink)
        return outcome, True, fallback_artifact, 0
    return CachedAttribution(
        method_used="exact",
        values={v: Fraction(value) for v, value in raw.items()},
        bounds={v: (value, value) for v, value in raw.items()},
    ), False, artifact_out, 0


def _worker_compute_chunk(payload: Tuple
                          ) -> List[Tuple[int, CachedAttribution, bool, int]]:
    """Process-pool task: attribute a chunk of canonical lineages.

    The payload is fully picklable: clause tuples plus the scalar method
    configuration.  Exceptions propagate to the parent through the future.
    """
    (chunk, method, epsilon, max_shannon_steps, timeout_seconds, k,
     numeric, float_ulp_margin, kernel) = payload
    ensure_recursion_head_room()
    # Inside the worker process: a ``kill`` rule here exercises the
    # supervised pool's crash recovery (plans reach workers by fork
    # inheritance or via the REPRO_FAULT_PLAN environment variable).
    faults.check("pool.task")
    results = []
    for index, num_variables, clauses in chunk:
        function = DNF(clauses, domain=range(num_variables))
        outcome, fell_back, _, rounds = _compute_canonical(
            function, method, epsilon, max_shannon_steps, timeout_seconds,
            k=k, numeric=numeric, float_ulp_margin=float_ulp_margin,
            kernel=kernel)
        results.append((index, outcome, fell_back, rounds))
    return results


class Engine:
    """Batched attribution engine with a lineage cache and parallel fan-out.

    One engine instance owns one cache and one stats object; reuse the
    instance across queries to benefit from cross-query memoization.  Cache
    operations are individually lock-protected, so threads sharing an
    engine can at worst duplicate a computation (never corrupt state), and
    stats counters go through :meth:`EngineStats.bump`, so concurrent
    increments are never dropped either (the concurrent front-end in
    :mod:`repro.engine.frontend` relies on both).  The process pool is
    created per compute batch and always torn down before the batch
    returns.
    """

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()
        self.cache = LineageCache(self.config.cache_size,
                                  self.config.dtree_cache_size)
        self.stats = EngineStats()
        faults.install(resolve_fault_plan(self.config.fault_plan))
        #: The persistent result tier (or ``None``).  Mutable on purpose:
        #: a service can attach one store to several engines after
        #: construction.  A path-valued config opens its backend here,
        #: exactly once per engine (LogStore's writer lock makes
        #: accidental double-opening loud).  Wrapped in a
        #: :class:`~repro.reliability.resilient.ResilientStore` (retry +
        #: circuit breaker) unless both reliability knobs are 0.
        self.store: Optional[CacheStore] = wrap_store(
            resolve_store(self.config.store, self.config.store_backend),
            retries=self.config.store_retries,
            breaker_threshold=self.config.breaker_threshold,
            on_counter=lambda **deltas: self.stats.bump(**deltas))

    # ----------------------------------------------------------------- #
    # Public API
    # ----------------------------------------------------------------- #

    def attribute(self, query: Query, database: Database
                  ) -> List["AttributionResult"]:
        """Attribute every answer of one query (batched internally).

        Parameters
        ----------
        query:
            A conjunctive query or union of conjunctive queries
            (fact-space: evaluated against ``database``).
        database:
            The database with its endogenous/exogenous fact partition.

        Returns
        -------
        list of AttributionResult
            One entry per answer tuple, with per-fact values mapped back
            from canonical space into fact space.
        """
        for _, results in self.attribute_many([query], database):
            return results
        return []

    def attribute_many(self, queries: Iterable[Query], database: Database
                       ) -> Iterator[Tuple[Query, List["AttributionResult"]]]:
        """Attribute a stream of queries; yields ``(query, results)`` pairs.

        Results for each query are yielded as soon as that query's batch
        completes, so callers can start consuming attributions while later
        queries are still being computed.  The cache persists across the
        whole stream: queries sharing lineage structure pay for compilation
        once.  Inputs and outputs are fact-space; canonical variable space
        is an internal detail of the cache tiers.
        """
        from repro.core.attribution import AttributionResult

        for query in queries:
            self.stats.bump(queries=1)
            with self.stats.timed("evaluate"):
                answers = lineage_of_answers(query, database,
                                             domain=self.config.domain)
            outcomes = self._attribute_batch([a.lineage for a in answers])
            with self.stats.timed("assemble"):
                results = [
                    self._assemble(answer, outcome, database)
                    for answer, outcome in zip(answers, outcomes)
                ]
            yield query, results

    def rank_many(self, queries: Iterable[Query], database: Database,
                  k: Optional[int] = None,
                  numeric: Optional[str] = None
                  ) -> Iterator[Tuple[Query, List[RankedAnswer]]]:
        """Rank the facts of every answer of a query stream (IchiBan).

        Requires a ``"rank"`` or ``"topk"`` engine.  Yields ``(query,
        rankings)`` pairs, where each ranking is ``(answer values, [(fact,
        RankedVariable), ...])`` in rank order -- truncated to ``k`` under
        ``"topk"``.  ``k`` overrides ``config.k`` per call; because results
        are cached per ``(canonical lineage, epsilon, k)`` and completed
        d-trees are shared across k values, one engine can serve mixed-k
        traffic.  ``numeric`` likewise overrides ``config.numeric`` per
        call (``"float"`` ranks by the log-space float tier; see
        :class:`EngineConfig`), and the tiers cache separately while
        still sharing compiled d-trees.
        """
        if self.config.method not in ("rank", "topk"):
            raise ValueError(
                "rank()/rank_many() need an engine configured with "
                f"method='rank' or 'topk', not {self.config.method!r}"
            )
        for query in queries:
            self.stats.bump(queries=1)
            with self.stats.timed("evaluate"):
                answers = lineage_of_answers(query, database,
                                             domain=self.config.domain)
            outcomes = self._attribute_batch([a.lineage for a in answers],
                                             k=k, numeric=numeric)
            with self.stats.timed("assemble"):
                rankings = [
                    (answer.values,
                     self._ranked_facts(outcome, database, k))
                    for answer, outcome in zip(answers, outcomes)
                ]
            yield query, rankings

    def rank(self, query: Query, database: Database,
             k: Optional[int] = None,
             numeric: Optional[str] = None) -> List[RankedAnswer]:
        """Rank every answer of one query (see :meth:`rank_many`)."""
        _, rankings = next(self.rank_many([query], database, k=k,
                                          numeric=numeric))
        return rankings

    def attribute_lineages(self, lineages: Sequence[DNF]
                           ) -> List[LineageAttribution]:
        """Attribute raw lineage DNFs (the experiment-runner entry point).

        Skips query evaluation entirely; values and bounds come back in the
        lineages' own variable space.  Under the ranking methods the values
        are interval midpoints for *all* occurring variables (the certified
        intervals are in ``bounds``); use :meth:`rank` when the ordered
        top-k set itself is wanted.
        """
        outcomes = self._attribute_batch(lineages)
        attributions = []
        with self.stats.timed("assemble"):
            for lineage, (canonical, cached) in zip(lineages, outcomes):
                attributions.append(LineageAttribution(
                    lineage=lineage,
                    method_used=cached.method_used,
                    values=self._map_back(cached.values, canonical),
                    bounds={canonical.from_canonical[v]: bound
                            for v, bound in cached.bounds.items()},
                ))
        return attributions

    def reset_stats(self) -> None:
        """Zero the stats counters (the cache is left intact)."""
        self.stats.reset()

    def save_cache(self, store: Optional[CacheStore] = None) -> int:
        """Persist the warm in-memory tiers (results + artifacts) to a store.

        Writes every *converged* result entry of the memory cache into
        ``store`` (default: the engine's configured store) and flushes it;
        compiled-lineage artifacts -- complete trees and resumable
        partial frontiers alike -- are persisted alongside.  Together
        with :meth:`load_cache` this is the explicit warm-start flow
        behind ``repro cache save``/``repro cache load``.

        Parameters
        ----------
        store:
            Target :class:`~repro.engine.store.CacheStore`; falls back to
            the configured ``store``.

        Returns
        -------
        int
            Number of entries written.

        Raises
        ------
        ValueError
            If no store was given and none is configured.
        """
        target = store if store is not None else self.store
        if target is None:
            raise ValueError(
                "save_cache needs a store: pass one or configure "
                "EngineConfig(store=...)"
            )
        save_artifacts(self.cache.artifacts.snapshot(), target)
        return save_results(self.cache.results.snapshot(), target)

    def load_cache(self, store: Optional[CacheStore] = None) -> int:
        """Warm-start the in-memory tiers (results + artifacts) from a store.

        Loads every converged store entry into the memory cache -- and
        every persisted compilation artifact into the artifact cache, so
        a fresh process *resumes* partial compilations instead of
        restarting them.  Entries beyond the memory capacities simply
        evict the earliest-loaded ones; the store itself is untouched.
        Returns the number of *result* entries loaded (see
        :meth:`save_cache` for the parameters/errors contract).
        """
        source = store if store is not None else self.store
        if source is None:
            raise ValueError(
                "load_cache needs a store: pass one or configure "
                "EngineConfig(store=...)"
            )
        load_artifacts(source, self.cache.artifacts)
        return load_results(source, self.cache.results)

    # ----------------------------------------------------------------- #
    # Pipeline stages
    # ----------------------------------------------------------------- #

    def _attribute_batch(self, lineages: Sequence[DNF],
                         k: Optional[int] = None,
                         numeric: Optional[str] = None
                         ) -> List[Tuple[CanonicalLineage, CachedAttribution]]:
        """Canonicalize, cache-check, compute and return per-lineage outcomes."""
        config = self.config
        if k is None:
            k = config.k
        elif config.method != "topk":
            raise ValueError("a per-call k needs method='topk'")
        elif k < 1:
            raise ValueError("k must be at least 1")
        if config.method == "topk" and k is None:
            raise ValueError(
                "method 'topk' needs k: set EngineConfig.k or pass k "
                "per call"
            )
        if numeric is None:
            numeric = config.numeric
        elif numeric not in ("exact", "float"):
            raise ValueError(
                f"numeric must be 'exact' or 'float', not {numeric!r}")
        elif config.method not in ("rank", "topk"):
            raise ValueError("a per-call numeric needs method='rank' or "
                             "'topk'")
        # Float-tier results live under a suffixed method key: the tiers
        # produce different certificates, so they must never alias.
        key_method = (config.method if numeric == "exact"
                      else f"{config.method}-float")
        self.stats.bump(answers=len(lineages))

        with self.stats.timed("canonicalize"):
            canonicals = [canonicalize(lineage) for lineage in lineages]
            keys = [self.cache.result_key(c.key, key_method,
                                          config.epsilon, k)
                    for c in canonicals]
            cached: Dict[int, CachedAttribution] = {}
            pending: Dict[object, List[int]] = {}
            for index, key in enumerate(keys):
                hit = self.cache.results.get(key)
                if hit is not None:
                    cached[index] = hit
                    self.stats.bump(cache_hits=1)
                    continue
                if key in pending:
                    # An isomorphic lineage earlier in this batch is already
                    # scheduled; share its computation.
                    pending[key].append(index)
                    self.stats.bump(cache_hits=1)
                    continue
                if self.store is not None:
                    stored = self.store.get(key)
                    if stored is not None and stored.converged:
                        # Promote the store hit into the memory tier so
                        # the rest of this process serves it for free.
                        self.cache.results.put(key, stored)
                        cached[index] = stored
                        self.stats.bump(store_hits=1)
                        continue
                pending[key] = [index]
                self.stats.bump(cache_misses=1)

        with self.stats.timed("compute"):
            tasks = [(key, indices[0]) for key, indices in pending.items()]
            # Cache each outcome as soon as it is computed: if a later task
            # fails (budget exhaustion on a pathological lineage), the work
            # already done stays reusable and a per-instance retry hits it.
            # Unconverged ranking results (best-so-far intervals) are
            # reported but never cached -- a later call deserves a fresh
            # attempt (e.g. against a d-tree cached in the meantime).
            try:
                for position, outcome in self._compute_tasks(
                        [canonicals[index] for _, index in tasks], k,
                        numeric):
                    key = tasks[position][0]
                    if outcome.converged:
                        self.cache.results.put(key, outcome)
                        if self.store is not None:
                            self.store.put(key, outcome)
                    for index in pending[key]:
                        cached[index] = outcome
            finally:
                # One durability point per batch: buffered writes become
                # shard rewrites here, not once per lineage.  In a
                # ``finally`` so that a failing computation's sunk
                # partial artifact (and every result already computed
                # this batch) still becomes durable before the
                # exception propagates.
                if tasks and self.store is not None:
                    self.store.flush()

        return [(canonicals[index], cached[index])
                for index in range(len(lineages))]

    def _effective_workers(self) -> int:
        """Worker processes the pool could actually run in parallel.

        ``max_workers`` is clamped to the machine's core count *before*
        deciding whether to use the pool at all: a 4-worker request on a
        1-core host would otherwise build a 1-worker pool and pay
        pickling/IPC for zero parallelism.
        """
        return max(1, min(self.config.max_workers, os.cpu_count() or 1))

    def _compute_tasks(self, tasks: Sequence[CanonicalLineage],
                       k: Optional[int], numeric: str = "exact"
                       ) -> Iterator[Tuple[int, CachedAttribution]]:
        """Run the distinct cache misses, in the pool or serially.

        Yields ``(task position, outcome)`` pairs as they complete, so the
        caller can cache incrementally; ``compilations`` is counted per
        completed outcome, never for work a failure prevented.
        """
        if not tasks:
            return
        config = self.config
        done = set()
        if (self._effective_workers() > 1
                and len(tasks) >= config.parallel_min_tasks):
            try:
                for position, outcome in self._compute_parallel(tasks, k,
                                                                numeric):
                    self.stats.bump(compilations=1)
                    done.add(position)
                    yield position, outcome
                return
            except (OSError, ImportError, BrokenProcessPool, WorkerCrash):
                # Terminal degradation: pool creation failed in a
                # restricted environment, or the supervised pool burned
                # through its restart budget (workers kept dying or
                # hanging).  The serial path computes identical results
                # either way, picking up where the pool left off -- and
                # the degradation is counted, never silent.
                self.stats.bump(pool_fallbacks=1)
        self._prewarm_batch([task for position, task in enumerate(tasks)
                             if position not in done], numeric)
        for position, canonical in enumerate(tasks):
            if position in done:
                continue
            outcome = self._compute_serial(canonical, k, numeric)
            self.stats.bump(compilations=1)
            yield position, outcome

    def _prewarm_batch(self, tasks: Sequence[CanonicalLineage],
                       numeric: str) -> None:
        """Cross-request batched kernel sweep over the serial batch.

        Before the per-task serial loop, the arenas of every task whose
        compiled-lineage artifact is already complete in the memory tier
        are stacked into one fused column block and evaluated in a
        single kernel sweep (:func:`repro.dtree.kernels.prewarm_arenas`)
        — the per-task evaluation then hits the scattered memos.  A
        no-op under ``kernel="python"``, for sub-2-task batches, and for
        methods that do not read the fused count/Banzhaf passes.
        """
        config = self.config
        if len(tasks) < 2 or config.kernel == "python":
            return
        if config.method == "shapley":
            return
        tier = ("float" if config.method in ("rank", "topk")
                and numeric == "float" else "exact")
        arenas = []
        for canonical in tasks:
            # Peek without stats bumps: `_artifact_for` runs (and
            # accounts) the real lookup during the per-task evaluation.
            artifact = self.cache.artifacts.get(canonical.key)
            if artifact is not None and artifact.complete:
                arenas.append(artifact.arena())
        prewarm_arenas(arenas, tier=tier, kernel=config.kernel,
                       stats=self.stats)

    def _artifact_for(self, key: CanonicalKey) -> Optional[CompiledLineage]:
        """The compile-once stage: fetch the lineage's compilation state.

        Falls through memory artifact cache -> store artifact tier ->
        ``None`` (compile from scratch), promoting store hits into memory
        and keeping the per-tier artifact counters honest.
        """
        artifact = self.cache.artifacts.get(key)
        if artifact is not None:
            self.stats.bump(artifact_hits=1)
            return artifact
        store = self.store
        if store is not None and hasattr(store, "get_artifact"):
            artifact = store.get_artifact(key)
            if artifact is not None:
                self.stats.bump(artifact_store_hits=1)
                self.cache.artifacts.put(key, artifact)
                return artifact
        return None

    def _remember_artifact(self, key: CanonicalKey,
                           artifact: Optional[CompiledLineage],
                           known: Optional[CompiledLineage] = None) -> None:
        """Write a computation's artifact back to the artifact tiers.

        ``known`` is the artifact the computation started from: handing
        the same object back means nothing changed (a complete-artifact
        reuse), so only the memory LRU recency is refreshed.  Trivial
        partials (an undecomposed frontier with zero expansions) are not
        persisted -- there is nothing worth resuming in them.
        """
        if artifact is None:
            return
        self.cache.artifacts.put(key, artifact)
        if artifact is known:
            return
        if not artifact.complete and artifact.expansion_steps == 0:
            return
        store = self.store
        if store is not None and hasattr(store, "put_artifact"):
            store.put_artifact(key, artifact)

    def _compute_serial(self, canonical: CanonicalLineage,
                        k: Optional[int] = None,
                        numeric: str = "exact") -> CachedAttribution:
        config = self.config
        artifact = self._artifact_for(canonical.key)
        if artifact is None:
            self.stats.bump(tree_compilations=1)
        elif not artifact.complete:
            self.stats.bump(artifact_resumes=1)
        elif artifact.counts:
            # A complete artifact whose subtree-count memo is already warm:
            # the evaluation below will not recount a single subtree.
            self.stats.bump(count_memo_hits=1)
        ensure_recursion_head_room()

        def sink(partial: CompiledLineage) -> None:
            # Failed computations still hand their partial progress back,
            # so a per-instance retry resumes instead of restarting.
            self._remember_artifact(canonical.key, partial, known=artifact)

        outcome, fell_back, artifact_out, rounds = _compute_canonical(
            canonical.dnf, config.method, config.epsilon,
            config.max_shannon_steps, config.timeout_seconds,
            artifact=artifact, k=k, artifact_sink=sink, numeric=numeric,
            float_ulp_margin=config.float_ulp_margin,
            kernel=config.kernel, stats=self.stats)
        self._record_outcome(outcome, fell_back, rounds)
        self._remember_artifact(canonical.key, artifact_out, known=artifact)
        return outcome

    def _record_outcome(self, outcome: CachedAttribution, fell_back: bool,
                        rounds: int) -> None:
        if fell_back:
            self.stats.bump(fallbacks=1)
        self.stats.bump(refinement_rounds=rounds)
        if not outcome.converged:
            self.stats.bump(partial_results=1)

    def _compute_parallel(self, tasks: Sequence[CanonicalLineage],
                          k: Optional[int], numeric: str = "exact"
                          ) -> Iterator[Tuple[int, CachedAttribution]]:
        """Fan the tasks out over a supervised pool, yielding as chunks finish.

        The chunk size amortizes IPC over several small computations but is
        capped so every effective worker gets at least one chunk -- a fixed
        chunk size would silently throttle parallelism on mid-size batches.

        The pool is supervised: a dead or hung worker rebuilds the
        executor and resubmits only the unfinished chunks (each event is
        counted in ``pool_worker_crashes``), bounded by
        ``config.pool_restarts``; past the budget
        :class:`~repro.reliability.errors.WorkerCrash` propagates and
        the caller degrades to the serial path.  Chunks are idempotent
        pure functions of their payload, so a resubmitted chunk yields
        bit-identical results and already-yielded chunks never recompute.
        """
        config = self.config
        max_workers = self._effective_workers()
        chunk_size = max(1, min(config.chunk_size,
                                -(-len(tasks) // max_workers)))
        chunks: List[List[Tuple[int, int, Tuple[Tuple[int, ...], ...]]]] = []
        for start in range(0, len(tasks), chunk_size):
            chunk = [
                (position, canonical.dnf.num_variables(), canonical.key[1])
                for position, canonical
                in enumerate(tasks[start:start + chunk_size], start)
            ]
            chunks.append(chunk)

        payloads = [
            (chunk, config.method, config.epsilon,
             config.max_shannon_steps, config.timeout_seconds, k,
             numeric, config.float_ulp_margin, config.kernel)
            for chunk in chunks
        ]
        pool = SupervisedPool(
            _worker_compute_chunk,
            max_workers=min(max_workers, len(chunks)),
            max_restarts=config.pool_restarts,
            task_timeout=config.pool_task_timeout,
            on_crash=lambda kind: self.stats.bump(pool_worker_crashes=1),
        )
        for _chunk_index, chunk_results in pool.run(payloads):
            for position, outcome, fell_back, rounds in chunk_results:
                self._record_outcome(outcome, fell_back, rounds)
                # Artifacts never cross the pool boundary: every
                # worker computation compiles from scratch.
                self.stats.bump(tree_compilations=1)
                yield position, outcome
        self.stats.bump(parallel_batches=1)

    # ----------------------------------------------------------------- #
    # Assembly helpers
    # ----------------------------------------------------------------- #

    @staticmethod
    def _map_back(values: Dict[int, Fraction], canonical: CanonicalLineage
                  ) -> Dict[int, Fraction]:
        return {canonical.from_canonical[variable]: value
                for variable, value in values.items()}

    def _ranked_facts(self, outcome: Tuple[CanonicalLineage, CachedAttribution],
                      database: Database, k: Optional[int]
                      ) -> List[Tuple[Fact, RankedVariable]]:
        """Order one answer's facts by the cached interval evidence."""
        canonical, cached = outcome
        bounds = {canonical.from_canonical[variable]: bound
                  for variable, bound in cached.bounds.items()}
        if self.config.method == "topk":
            effective_k: Optional[int] = self.config.k if k is None else k
        else:
            effective_k = None
        return [(database.fact_of(entry.variable), entry)
                for entry in ranked_from_bounds(bounds, effective_k)]

    def _assemble(self, answer: AnswerLineage,
                  outcome: Tuple[CanonicalLineage, CachedAttribution],
                  database: Database) -> "AttributionResult":
        from repro.core.attribution import (
            AttributionResult,
            _attributions_from_values,
        )

        canonical, cached = outcome
        values = self._map_back(cached.values, canonical)
        bounds = {canonical.from_canonical[v]: bound
                  for v, bound in cached.bounds.items()}
        return AttributionResult(
            answer=answer.values,
            attributions=_attributions_from_values(values, database, bounds),
        )


def engine_for(method: EngineMethod = "auto", *,
               epsilon: Optional[float] = 0.1,
               budget: Optional[CompilationBudget] = None,
               max_workers: int = 0,
               k: Optional[int] = None) -> Engine:
    """Build an engine from the legacy per-call knobs of ``attribute_facts``."""
    config = EngineConfig(method=method, epsilon=epsilon,
                          max_workers=max_workers, k=k)
    if budget is not None:
        config = replace(config,
                         max_shannon_steps=budget.max_shannon_steps,
                         timeout_seconds=budget.timeout_seconds)
    return Engine(config)
