"""Persistent cache stores: the engine's second, cross-process tier.

The in-memory :class:`~repro.engine.cache.LineageCache` dies with the
process, so every deployment starts cold.  This module adds a pluggable
*store* tier behind it: on a memory miss the engine consults the
configured :class:`CacheStore`, and freshly computed (converged) results
are written back, so canonical-space attributions survive process
restarts and can be shared between a warm-up job and a serving process.

Two backends are provided:

* :class:`MemoryStore` -- a dict-backed passthrough with the same
  interface, for tests and for composing a serving tier without touching
  disk;
* :class:`DiskStore` -- a sharded on-disk store.  Entries are serialized
  to a **versioned JSON format** (exact ``Fraction`` round-trip -- a
  warm-started engine returns bit-identical values), grouped into shard
  files by a stable hash of the result key, written **atomically**
  (temp file + ``os.replace``), and evicted oldest-first against a
  configurable entry bound.  Corrupted or old-version shard files are
  ignored -- the engine just recomputes -- never raised.

Everything in a store lives in **canonical variable space** keyed by
:data:`~repro.engine.cache.ResultKey` (canonical lineage, method,
epsilon, k), exactly like the in-memory result cache; compiled d-trees
are deliberately *not* persisted (they are linked object graphs whose
pickle cost exceeds recompilation for typical lineages).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import zlib
from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Protocol, Tuple

from repro.engine.cache import CachedAttribution, ResultKey

#: On-disk format version; bumped on any incompatible change.  Shards
#: recording a different version are ignored wholesale (treated as empty),
#: so a format bump silently invalidates stale caches instead of crashing.
STORE_FORMAT_VERSION = 1


class CacheStore(Protocol):
    """What the engine needs from a persistent result store.

    Implementations must be safe to call from one process at a time;
    :class:`DiskStore` additionally tolerates concurrent *readers* of the
    same directory (shard writes are atomic).

    Methods
    -------
    get(key):
        Return the stored :class:`CachedAttribution` for ``key`` (a
        canonical-space :data:`ResultKey`) or ``None``.
    put(key, value):
        Insert or overwrite one entry.  May buffer; durability is only
        guaranteed after :meth:`flush`.
    flush():
        Make every buffered ``put`` durable.
    items():
        Iterate ``(key, value)`` pairs over the whole store (used by
        warm-start loading and ``repro cache stats``).
    stats():
        A plain-dict summary (entry counts, backend details) for
        reporting.
    """

    def get(self, key: ResultKey) -> Optional[CachedAttribution]: ...

    def put(self, key: ResultKey, value: CachedAttribution) -> None: ...

    def flush(self) -> None: ...

    def items(self) -> Iterator[Tuple[ResultKey, CachedAttribution]]: ...

    def stats(self) -> Dict[str, object]: ...


# --------------------------------------------------------------------- #
# Exact JSON serialization of keys and entries
# --------------------------------------------------------------------- #


def _encode_number(value) -> object:
    """Encode an int (JSON int, arbitrary precision) or Fraction (``"n/d"``).

    The two cases stay distinguishable so decoding restores the exact
    original type: bounds are ints, values are ``Fraction``.
    """
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, int):
        return value
    raise TypeError(f"cannot serialize numeric type {type(value).__name__}")


def _decode_number(encoded):
    if isinstance(encoded, str):
        numerator, _, denominator = encoded.partition("/")
        return Fraction(int(numerator), int(denominator))
    if isinstance(encoded, int):
        return encoded
    raise ValueError(f"malformed stored number {encoded!r}")


def encode_key(key: ResultKey) -> str:
    """Deterministic string form of a :data:`ResultKey` (the shard-entry key).

    The canonical clause tuples become nested JSON lists; method, epsilon
    and k pass through (``repr`` round-trip of floats is exact under
    ``json``).
    """
    (num_variables, clauses), method, epsilon, k = key
    return json.dumps(
        [num_variables, [list(clause) for clause in clauses],
         method, epsilon, k],
        separators=(",", ":"),
    )


def decode_key(encoded: str) -> ResultKey:
    """Inverse of :func:`encode_key` (raises ``ValueError`` on malformed input)."""
    try:
        num_variables, clauses, method, epsilon, k = json.loads(encoded)
        canonical = (int(num_variables),
                     tuple(tuple(int(v) for v in clause)
                           for clause in clauses))
        if not isinstance(method, str):
            raise ValueError(f"malformed method {method!r}")
        return (canonical, method,
                None if epsilon is None else float(epsilon),
                None if k is None else int(k))
    except (TypeError, json.JSONDecodeError) as error:
        raise ValueError(f"malformed stored key {encoded!r}") from error


def encode_entry(value: CachedAttribution) -> Dict[str, object]:
    """JSON-serializable form of one :class:`CachedAttribution`."""
    return {
        "method_used": value.method_used,
        "converged": value.converged,
        "values": [[variable, _encode_number(fraction)]
                   for variable, fraction in sorted(value.values.items())],
        "bounds": [[variable, [_encode_number(lower), _encode_number(upper)]]
                   for variable, (lower, upper) in sorted(value.bounds.items())],
    }


def decode_entry(encoded: Dict[str, object]) -> CachedAttribution:
    """Inverse of :func:`encode_entry` (raises ``ValueError``/``KeyError``)."""
    values = {int(variable): Fraction(_decode_number(number))
              for variable, number in encoded["values"]}
    bounds = {int(variable): (_decode_number(lower), _decode_number(upper))
              for variable, (lower, upper) in encoded["bounds"]}
    return CachedAttribution(
        method_used=str(encoded["method_used"]),
        values=values,
        bounds=bounds,
        converged=bool(encoded["converged"]),
    )


# --------------------------------------------------------------------- #
# Backends
# --------------------------------------------------------------------- #


class MemoryStore:
    """Dict-backed :class:`CacheStore` (no persistence).

    Useful in tests and for wiring a store-shaped tier -- e.g. one shared
    by several engines of a service -- without touching disk.  ``flush``
    is a no-op; there is nothing to make durable.
    """

    def __init__(self) -> None:
        self._entries: Dict[ResultKey, CachedAttribution] = {}
        self._lock = threading.Lock()
        self.gets = 0
        self.puts = 0

    def get(self, key: ResultKey) -> Optional[CachedAttribution]:
        with self._lock:
            self.gets += 1
            return self._entries.get(key)

    def put(self, key: ResultKey, value: CachedAttribution) -> None:
        with self._lock:
            self.puts += 1
            self._entries[key] = value

    def flush(self) -> None:
        """No-op (a memory store is always 'durable' for its lifetime)."""

    def items(self) -> Iterator[Tuple[ResultKey, CachedAttribution]]:
        with self._lock:
            snapshot = list(self._entries.items())
        return iter(snapshot)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, object]:
        """Entry count plus raw get/put counters."""
        with self._lock:
            return {"backend": "memory", "entries": len(self._entries),
                    "gets": self.gets, "puts": self.puts}


class DiskStore:
    """Sharded on-disk :class:`CacheStore` with a versioned JSON format.

    Layout: ``<path>/shard-<index>.json``, one JSON document per shard::

        {"version": 1, "entries": {"<encoded key>": {"stamp": 7, ...}}}

    Entries are routed to shards by a stable CRC32 of their encoded key,
    so a given :data:`ResultKey` always lands in the same shard file
    across processes.  Shards are loaded lazily and kept in memory;
    ``put`` buffers (marking the shard dirty) and :meth:`flush` rewrites
    dirty shards atomically -- the new content is written to a temp file
    in the same directory and ``os.replace``d over the old one, so a
    crash mid-write leaves the previous shard intact.

    Durability-vs-throughput is explicit: the engine flushes once per
    batch, a service can flush per request or on shutdown.

    Eviction is size-bounded and oldest-first: every entry carries a
    monotonic insertion ``stamp`` (persisted in a small ``meta.json``,
    and re-derived from shard contents when that file is lost), and at
    flush time each shard is trimmed to its share of ``max_entries``
    (``max_entries // shards``) by dropping the lowest stamps.  The
    shard count is clamped to ``max_entries`` so the total can never
    exceed the bound; per-shard rounding only makes it stricter.

    Robustness: a shard that fails to parse, fails structural validation,
    or records a different :data:`STORE_FORMAT_VERSION` is treated as
    empty (counted in ``corrupt_shards``) -- the engine recomputes and
    the next flush overwrites the bad file.  No read path ever raises on
    bad content.
    """

    def __init__(self, path: str, max_entries: int = 65_536,
                 shards: int = 16) -> None:
        if max_entries < 1:
            raise ValueError("store capacity must be positive")
        if shards < 1:
            raise ValueError("shard count must be positive")
        self.path = path
        self.max_entries = max_entries
        # Clamped so `shards * per_shard <= max_entries` always holds;
        # an unclamped tiny capacity (max_entries < shards) would retain
        # one entry per shard and overshoot the bound.  Deterministic in
        # the constructor arguments, so every process opening the same
        # directory with the same configuration routes keys identically.
        self.shards = min(shards, max_entries)
        self._per_shard = max(1, max_entries // self.shards)
        #: shard index -> {encoded key:
        #:   {"stamp": int, "entry": dict, "decoded": CachedAttribution}}
        self._loaded: Dict[int, Dict[str, Dict[str, object]]] = {}
        self._dirty: set = set()
        self._lock = threading.Lock()
        self.corrupt_shards = 0
        os.makedirs(path, exist_ok=True)
        self._stamp = self._load_stamp()

    # -- paths and shard IO ------------------------------------------- #

    def _shard_index(self, encoded_key: str) -> int:
        return zlib.crc32(encoded_key.encode("utf-8")) % self.shards

    def _shard_path(self, index: int) -> str:
        return os.path.join(self.path, f"shard-{index:04d}.json")

    def _meta_path(self) -> str:
        return os.path.join(self.path, "meta.json")

    def _load_stamp(self) -> int:
        try:
            with open(self._meta_path(), "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            if meta.get("version") != STORE_FORMAT_VERSION:
                return 0
            return int(meta["stamp"])
        except (OSError, ValueError, KeyError, TypeError):
            return 0

    def _atomic_write(self, path: str, document: Dict[str, object]) -> None:
        descriptor, temp_path = tempfile.mkstemp(
            dir=self.path, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(document, handle, separators=(",", ":"))
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def _load_shard(self, index: int) -> Dict[str, Dict[str, object]]:
        """Read one shard from disk, treating any damage as an empty shard."""
        shard = self._loaded.get(index)
        if shard is not None:
            return shard
        shard = {}
        path = self._shard_path(index)
        if os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    document = json.load(handle)
                if document.get("version") != STORE_FORMAT_VERSION:
                    raise ValueError(
                        f"format version {document.get('version')!r}")
                entries = document["entries"]
                if not isinstance(entries, dict):
                    raise ValueError("entries is not an object")
                for encoded_key, record in entries.items():
                    # Validate eagerly so one bad record cannot surface
                    # later as a crash inside the engine's hot path; the
                    # decoded entry is kept, so get()/items() never pay
                    # for deserialization twice.
                    decode_key(encoded_key)
                    decoded = decode_entry(record["entry"])
                    shard[encoded_key] = {"stamp": int(record["stamp"]),
                                          "entry": record["entry"],
                                          "decoded": decoded}
            except (OSError, ValueError, KeyError, TypeError,
                    json.JSONDecodeError):
                self.corrupt_shards += 1
                shard = {}
        if shard:
            # Keep the insertion counter ahead of every entry we have
            # seen: if meta.json was lost or stale, new puts must still
            # stamp higher than existing entries, or oldest-first
            # eviction would drop fresh results instead of stale ones.
            newest = max(record["stamp"] for record in shard.values())
            if newest > self._stamp:
                self._stamp = newest
        self._loaded[index] = shard
        return shard

    # -- CacheStore interface ----------------------------------------- #

    def get(self, key: ResultKey) -> Optional[CachedAttribution]:
        """Look one result up (loading its shard on first touch)."""
        encoded = encode_key(key)
        with self._lock:
            shard = self._load_shard(self._shard_index(encoded))
            record = shard.get(encoded)
            if record is None:
                return None
            return record["decoded"]

    def put(self, key: ResultKey, value: CachedAttribution) -> None:
        """Buffer one entry (durable after the next :meth:`flush`)."""
        encoded = encode_key(key)
        with self._lock:
            index = self._shard_index(encoded)
            shard = self._load_shard(index)
            self._stamp += 1
            shard[encoded] = {"stamp": self._stamp,
                              "entry": encode_entry(value),
                              "decoded": value}
            self._dirty.add(index)

    def flush(self) -> None:
        """Atomically rewrite every dirty shard, evicting past the bound."""
        with self._lock:
            if not self._dirty:
                return
            for index in sorted(self._dirty):
                shard = self._loaded.get(index, {})
                if len(shard) > self._per_shard:
                    keep = sorted(shard.items(),
                                  key=lambda item: item[1]["stamp"],
                                  reverse=True)[:self._per_shard]
                    shard = dict(keep)
                    self._loaded[index] = shard
                serializable = {
                    encoded_key: {"stamp": record["stamp"],
                                  "entry": record["entry"]}
                    for encoded_key, record in shard.items()
                }
                self._atomic_write(self._shard_path(index),
                                   {"version": STORE_FORMAT_VERSION,
                                    "entries": serializable})
            self._dirty.clear()
            self._atomic_write(self._meta_path(),
                               {"version": STORE_FORMAT_VERSION,
                                "stamp": self._stamp})

    def items(self) -> Iterator[Tuple[ResultKey, CachedAttribution]]:
        """Iterate every entry of every shard (loading all of them).

        The snapshot is taken under the lock before anything is yielded,
        so consumers may call :meth:`put`/:meth:`get` mid-iteration.
        """
        with self._lock:
            records: List[Tuple[str, Dict[str, object]]] = []
            for index in range(self.shards):
                records.extend(self._load_shard(index).items())
        for encoded_key, record in records:
            yield decode_key(encoded_key), record["decoded"]

    def __len__(self) -> int:
        with self._lock:
            return sum(len(self._load_shard(index))
                       for index in range(self.shards))

    def stats(self) -> Dict[str, object]:
        """Entry/shard counts, capacity, and on-disk footprint."""
        entries = len(self)
        shard_files = 0
        total_bytes = 0
        for index in range(self.shards):
            path = self._shard_path(index)
            try:
                total_bytes += os.path.getsize(path)
                shard_files += 1
            except OSError:
                continue
        return {
            "backend": "disk",
            "path": self.path,
            "format_version": STORE_FORMAT_VERSION,
            "entries": entries,
            "max_entries": self.max_entries,
            "shards": self.shards,
            "shard_files": shard_files,
            "corrupt_shards": self.corrupt_shards,
            "disk_bytes": total_bytes,
        }


def save_results(cache_entries, store: CacheStore) -> int:
    """Write ``(key, value)`` result pairs into ``store`` and flush.

    Skips unconverged entries (a persisted best-so-far would mask a later,
    better attempt).  Returns the number of entries written.  This is the
    workhorse behind :meth:`repro.engine.engine.Engine.save_cache` and
    ``repro cache save``.
    """
    written = 0
    for key, value in cache_entries:
        if value.converged:
            store.put(key, value)
            written += 1
    store.flush()
    return written


def load_results(store: CacheStore, cache) -> int:
    """Load every converged store entry into an in-memory result cache.

    ``cache`` is an :class:`~repro.engine.cache.LRUCache` (the engine's
    ``cache.results``); loading more entries than its capacity simply
    evicts the earliest-loaded ones.  Returns the number of entries
    loaded.
    """
    loaded = 0
    for key, value in store.items():
        if value.converged:
            cache.put(key, value)
            loaded += 1
    return loaded


__all__ = [
    "STORE_FORMAT_VERSION",
    "CacheStore",
    "DiskStore",
    "MemoryStore",
    "decode_entry",
    "decode_key",
    "encode_entry",
    "encode_key",
    "load_results",
    "save_results",
]
