"""Persistent cache stores: the engine's cross-process tiers.

The in-memory :class:`~repro.engine.cache.LineageCache` dies with the
process, so every deployment starts cold.  This module adds a pluggable
*store* tier behind it: on a memory miss the engine consults the
configured :class:`CacheStore`, and freshly computed (converged) results
are written back, so canonical-space attributions survive process
restarts and can be shared between a warm-up job and a serving process.

Stores carry **two artifact kinds**:

* **results** -- one :class:`~repro.engine.cache.CachedAttribution` per
  :data:`~repro.engine.cache.ResultKey` (canonical lineage, method,
  canonical epsilon, k);
* **compiled-lineage artifacts** -- one
  :class:`~repro.engine.artifact.CompiledLineage` per canonical lineage
  alone (method/epsilon/k independent): a complete d-tree, or a partial
  one whose ``DNFLeaf`` frontier a warm-started process *resumes*
  instead of recompiling.  Serialized exactly via
  :mod:`repro.dtree.serialize`.

Two backends are provided:

* :class:`MemoryStore` -- a dict-backed passthrough with the same
  interface, for tests and for composing a serving tier without touching
  disk;
* :class:`DiskStore` -- a sharded on-disk store.  Entries are serialized
  to a **versioned JSON format** (exact ``Fraction`` round-trip -- a
  warm-started engine returns bit-identical values), grouped into shard
  files by a stable hash of the encoded key (``shard-*.json`` for
  results, ``trees-*.json`` for artifacts), written **atomically**
  (temp file + ``os.replace``), and evicted oldest-first against
  per-kind entry bounds.  Corrupted or old-version shard files are
  ignored -- the engine just recomputes -- never raised.

Result keys encode epsilon through the **canonical exact encoding**
(:func:`~repro.engine.cache.canonical_epsilon`: an exact ``Fraction``,
written as ``"n/d"``), shared with the memory tier, so float-repr drift
can never split or alias equivalent entries across processes.  Shards
written before this encoding (raw JSON floats) stay readable: their keys
decode to the canonical form, and lookups fall back to the legacy
encoding -- migrating hits to the canonical one on the next flush.
"""

from __future__ import annotations

import heapq
import json
import os
import tempfile
import threading
import zlib
from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Protocol, Tuple

from repro.engine.artifact import (
    ARTIFACT_COMPAT_VERSIONS,
    ARTIFACT_FORMAT_VERSION,
    CompiledLineage,
    decode_artifact,
    encode_artifact,
)
from repro.engine.cache import CachedAttribution, ResultKey, canonical_epsilon
from repro.engine.canonical import CanonicalKey
from repro.reliability import faults

#: On-disk format version; bumped on any incompatible change.  Shards
#: recording a different version are ignored wholesale (treated as empty),
#: so a format bump silently invalidates stale caches instead of crashing.
STORE_FORMAT_VERSION = 1


class CacheStore(Protocol):
    """What the engine needs from a persistent store.

    Implementations must be safe to call from one process at a time;
    :class:`DiskStore` additionally tolerates concurrent *readers* of the
    same directory (shard writes are atomic).  The artifact methods are
    optional -- the engine probes for them with ``hasattr`` -- so a
    minimal result-only store still plugs in.

    Methods
    -------
    get(key):
        Return the stored :class:`CachedAttribution` for ``key`` (a
        canonical-space :data:`ResultKey`) or ``None``.
    put(key, value):
        Insert or overwrite one entry.  May buffer; durability is only
        guaranteed after :meth:`flush`.
    flush():
        Make every buffered ``put``/``put_artifact`` durable.
    items():
        Iterate ``(key, value)`` pairs over the whole store (used by
        warm-start loading and ``repro cache stats``).
    get_artifact(key) / put_artifact(key, value) / artifact_items():
        Same contract for compiled-lineage artifacts, keyed by
        :data:`~repro.engine.canonical.CanonicalKey` alone.
    stats():
        A plain-dict summary (per-kind entry counts, backend details)
        for reporting.
    """

    def get(self, key: ResultKey) -> Optional[CachedAttribution]: ...

    def put(self, key: ResultKey, value: CachedAttribution) -> None: ...

    def flush(self) -> None: ...

    def items(self) -> Iterator[Tuple[ResultKey, CachedAttribution]]: ...

    def stats(self) -> Dict[str, object]: ...


# --------------------------------------------------------------------- #
# Exact JSON serialization of keys and entries
# --------------------------------------------------------------------- #


def _encode_number(value) -> object:
    """Encode an int (JSON int, arbitrary precision) or Fraction (``"n/d"``).

    The two cases stay distinguishable so decoding restores the exact
    original type: bounds are ints, values are ``Fraction``.
    """
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, int):
        return value
    raise TypeError(f"cannot serialize numeric type {type(value).__name__}")


def _decode_number(encoded):
    if isinstance(encoded, str):
        numerator, _, denominator = encoded.partition("/")
        return Fraction(int(numerator), int(denominator))
    if isinstance(encoded, int):
        return encoded
    raise ValueError(f"malformed stored number {encoded!r}")


def encode_key(key: ResultKey) -> str:
    """Deterministic string form of a :data:`ResultKey` (the shard-entry key).

    The canonical clause tuples become nested JSON lists; epsilon is
    normalized through :func:`~repro.engine.cache.canonical_epsilon` and
    written as the exact ``"n/d"`` string, so every process encodes an
    equivalent key identically regardless of the numeric type it held.
    """
    (num_variables, clauses), method, epsilon, k = key
    fraction = canonical_epsilon(epsilon)
    return json.dumps(
        [num_variables, [list(clause) for clause in clauses], method,
         None if fraction is None else _encode_number(fraction), k],
        separators=(",", ":"),
    )


def _legacy_encode_key(key: ResultKey) -> Optional[str]:
    """The pre-canonical encoding (epsilon as a raw JSON float), if any.

    Returns ``None`` when no legacy form can exist: a ``None`` epsilon
    encodes identically in both formats, and an epsilon that is not
    exactly float-representable cannot have been written by the old
    float-keyed format at all.
    """
    (num_variables, clauses), method, epsilon, k = key
    if epsilon is None:
        return None
    fraction = canonical_epsilon(epsilon)
    as_float = float(fraction)
    if Fraction(as_float) != fraction:
        return None
    return json.dumps(
        [num_variables, [list(clause) for clause in clauses], method,
         as_float, k],
        separators=(",", ":"),
    )


def decode_key(encoded: str) -> ResultKey:
    """Inverse of :func:`encode_key` (raises ``ValueError`` on malformed input).

    Accepts both the canonical ``"n/d"`` epsilon encoding and the legacy
    raw-float one (old shards); either decodes to the canonical
    ``Fraction``-keyed :data:`ResultKey`.
    """
    try:
        num_variables, clauses, method, epsilon, k = json.loads(encoded)
        canonical = (int(num_variables),
                     tuple(tuple(int(v) for v in clause)
                           for clause in clauses))
        if not isinstance(method, str):
            raise ValueError(f"malformed method {method!r}")
        if epsilon is None:
            fraction = None
        elif isinstance(epsilon, str):
            fraction = _decode_number(epsilon)
            if not isinstance(fraction, Fraction):
                raise ValueError(f"malformed epsilon {epsilon!r}")
        elif isinstance(epsilon, (int, float)) and not isinstance(epsilon, bool):
            fraction = canonical_epsilon(epsilon)
        else:
            raise ValueError(f"malformed epsilon {epsilon!r}")
        return (canonical, method, fraction,
                None if k is None else int(k))
    except (TypeError, json.JSONDecodeError) as error:
        raise ValueError(f"malformed stored key {encoded!r}") from error


def encode_canonical_key(key: CanonicalKey) -> str:
    """Deterministic string form of a bare canonical lineage key."""
    num_variables, clauses = key
    return json.dumps(
        [num_variables, [list(clause) for clause in clauses]],
        separators=(",", ":"),
    )


def decode_canonical_key(encoded: str) -> CanonicalKey:
    """Inverse of :func:`encode_canonical_key` (``ValueError`` on damage)."""
    try:
        num_variables, clauses = json.loads(encoded)
        return (int(num_variables),
                tuple(tuple(int(v) for v in clause) for clause in clauses))
    except (TypeError, json.JSONDecodeError) as error:
        raise ValueError(
            f"malformed stored canonical key {encoded!r}") from error


def encode_entry(value: CachedAttribution) -> Dict[str, object]:
    """JSON-serializable form of one :class:`CachedAttribution`."""
    return {
        "method_used": value.method_used,
        "converged": value.converged,
        "values": [[variable, _encode_number(fraction)]
                   for variable, fraction in sorted(value.values.items())],
        "bounds": [[variable, [_encode_number(lower), _encode_number(upper)]]
                   for variable, (lower, upper) in sorted(value.bounds.items())],
    }


def decode_entry(encoded: Dict[str, object]) -> CachedAttribution:
    """Inverse of :func:`encode_entry` (raises ``ValueError``/``KeyError``)."""
    values = {int(variable): Fraction(_decode_number(number))
              for variable, number in encoded["values"]}
    bounds = {int(variable): (_decode_number(lower), _decode_number(upper))
              for variable, (lower, upper) in encoded["bounds"]}
    return CachedAttribution(
        method_used=str(encoded["method_used"]),
        values=values,
        bounds=bounds,
        converged=bool(encoded["converged"]),
    )


# --------------------------------------------------------------------- #
# Backends
# --------------------------------------------------------------------- #


class MemoryStore:
    """Dict-backed :class:`CacheStore` (no persistence).

    Useful in tests and for wiring a store-shaped tier -- e.g. one shared
    by several engines of a service -- without touching disk.  ``flush``
    is a no-op; there is nothing to make durable.  Carries both kinds:
    results and compiled-lineage artifacts.
    """

    def __init__(self) -> None:
        self._entries: Dict[ResultKey, CachedAttribution] = {}
        self._artifacts: Dict[CanonicalKey, CompiledLineage] = {}
        self._lock = threading.Lock()
        self.gets = 0
        self.puts = 0

    def get(self, key: ResultKey) -> Optional[CachedAttribution]:
        with self._lock:
            self.gets += 1
            return self._entries.get(key)

    def put(self, key: ResultKey, value: CachedAttribution) -> None:
        with self._lock:
            self.puts += 1
            self._entries[key] = value

    def get_artifact(self, key: CanonicalKey) -> Optional[CompiledLineage]:
        with self._lock:
            return self._artifacts.get(key)

    def put_artifact(self, key: CanonicalKey,
                     value: CompiledLineage) -> None:
        with self._lock:
            self._artifacts[key] = value

    def flush(self) -> None:
        """No-op (a memory store is always 'durable' for its lifetime)."""

    def items(self) -> Iterator[Tuple[ResultKey, CachedAttribution]]:
        with self._lock:
            snapshot = list(self._entries.items())
        return iter(snapshot)

    def artifact_items(self) -> Iterator[Tuple[CanonicalKey, CompiledLineage]]:
        with self._lock:
            snapshot = list(self._artifacts.items())
        return iter(snapshot)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, object]:
        """Per-kind entry counts plus raw get/put counters."""
        with self._lock:
            return {"backend": "memory", "entries": len(self._entries),
                    "artifacts": len(self._artifacts),
                    "gets": self.gets, "puts": self.puts}


class DiskStore:
    """Sharded on-disk :class:`CacheStore` with a versioned JSON format.

    Layout: ``<path>/shard-<index>.json`` for results and
    ``<path>/trees-<index>.json`` for compiled-lineage artifacts, one
    JSON document per shard::

        {"version": 1, "entries": {"<encoded key>": {"stamp": 7, ...}}}

    Entries are routed to shards by a stable CRC32 of their encoded key,
    so a given key always lands in the same shard file across processes.
    Shards are loaded lazily and kept in memory; ``put``/``put_artifact``
    buffer (marking the shard dirty) and :meth:`flush` rewrites dirty
    shards atomically -- the new content is written to a temp file in
    the same directory and ``os.replace``d over the old one, so a crash
    mid-write leaves the previous shard intact.

    Durability-vs-throughput is explicit: the engine flushes once per
    batch, a service can flush per request or on shutdown.

    Eviction is size-bounded and oldest-first, independently per kind:
    every entry carries a monotonic insertion ``stamp`` (persisted in a
    small ``meta.json``, and re-derived from shard contents when that
    file is lost), and at flush time each shard is trimmed to its share
    of the kind's bound (``max_entries`` for results, ``max_artifacts``
    for trees) by dropping the lowest stamps.  Shard counts are clamped
    to the bounds so the totals can never exceed them; per-shard
    rounding only makes it stricter.

    Robustness: a shard that fails to parse, fails structural validation,
    or records a different format version is treated as empty (counted
    in ``corrupt_shards``) -- the engine recomputes and the next flush
    overwrites the bad file.  No read path ever raises on bad content.
    Artifact trees are additionally validated on decode
    (:func:`repro.dtree.serialize.decode_tree` runs the structural
    invariants), so a tampered tree can never reach an evaluator.
    """

    def __init__(self, path: str, max_entries: int = 65_536,
                 shards: int = 16, max_artifacts: int = 4_096,
                 tree_shards: int = 8) -> None:
        if max_entries < 1 or max_artifacts < 1:
            raise ValueError("store capacity must be positive")
        if shards < 1 or tree_shards < 1:
            raise ValueError("shard count must be positive")
        self.path = path
        self.max_entries = max_entries
        self.max_artifacts = max_artifacts
        # Clamped so `shards * per_shard <= bound` always holds; an
        # unclamped tiny capacity (bound < shards) would retain one entry
        # per shard and overshoot.  Deterministic in the constructor
        # arguments, so every process opening the same directory with the
        # same configuration routes keys identically.
        self.shards = min(shards, max_entries)
        self.tree_shards = min(tree_shards, max_artifacts)
        self._per_shard = max(1, max_entries // self.shards)
        self._per_tree_shard = max(1, max_artifacts // self.tree_shards)
        #: shard index -> {encoded key:
        #:   {"stamp": int, "entry": dict, "decoded": CachedAttribution}}
        self._loaded: Dict[int, Dict[str, Dict[str, object]]] = {}
        #: tree-shard index -> {encoded canonical key:
        #:   {"stamp": int, "entry": dict, "decoded": CompiledLineage}}
        self._tree_loaded: Dict[int, Dict[str, Dict[str, object]]] = {}
        self._dirty: set = set()
        self._tree_dirty: set = set()
        self._lock = threading.Lock()
        self.corrupt_shards = 0
        #: Write-amplification observability: shard files parsed from
        #: disk, shard files rewritten by flushes, and bytes those
        #: rewrites produced.  The regression tests pin these.
        self.shard_loads = 0
        self.flush_writes = 0
        self.bytes_flushed = 0
        os.makedirs(path, exist_ok=True)
        #: Advisory per-shard entry counts persisted in meta.json, so
        #: sizing (`len`, `artifact_count`, `stats`) does not have to
        #: parse every shard file of a freshly opened store.  A missing
        #: index (legacy metas) falls back to loading that one shard;
        #: counts are corrected whenever a shard is actually loaded, so
        #: a stale count (crash between shard and meta writes)
        #: self-heals.
        self._shard_counts: Dict[int, int] = {}
        self._tree_shard_counts: Dict[int, int] = {}
        self._stamp, self._tree_stamp = self._load_stamps()

    # -- paths and shard IO ------------------------------------------- #

    @staticmethod
    def _route(encoded_key: str, shard_count: int) -> int:
        return zlib.crc32(encoded_key.encode("utf-8")) % shard_count

    def _shard_path(self, index: int) -> str:
        return os.path.join(self.path, f"shard-{index:04d}.json")

    def _tree_shard_path(self, index: int) -> str:
        return os.path.join(self.path, f"trees-{index:04d}.json")

    def _meta_path(self) -> str:
        return os.path.join(self.path, "meta.json")

    def _load_stamps(self) -> Tuple[int, int]:
        try:
            with open(self._meta_path(), "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            if meta.get("version") != STORE_FORMAT_VERSION:
                return 0, 0
            self._shard_counts.update(self._decode_counts(
                meta.get("shard_counts"), self.shards))
            self._tree_shard_counts.update(self._decode_counts(
                meta.get("tree_shard_counts"), self.tree_shards))
            # Older metas predate the artifact tier and carry no
            # tree_stamp; 0 is safe (re-derived from shard contents).
            return int(meta["stamp"]), int(meta.get("tree_stamp", 0))
        except (OSError, ValueError, KeyError, TypeError):
            return 0, 0

    @staticmethod
    def _decode_counts(raw, shard_count: int) -> Dict[int, int]:
        """Parse meta.json's per-shard counts; empty for legacy metas.

        Counts recorded under a different shard layout are discarded --
        they would attribute entries to the wrong files.
        """
        if not isinstance(raw, dict):
            return {}
        try:
            counts = {int(index): int(count) for index, count in raw.items()}
        except (ValueError, TypeError):
            return {}
        if any(index < 0 or index >= shard_count or count < 0
               for index, count in counts.items()):
            return {}
        return counts

    def _atomic_write(self, path: str, document: Dict[str, object]) -> int:
        """Write one document atomically; returns the bytes written."""
        descriptor, temp_path = tempfile.mkstemp(
            dir=self.path, prefix=".tmp-", suffix=".json")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(document, handle, separators=(",", ":"))
                written = handle.tell()
            os.replace(temp_path, path)
            return written
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def _read_shard_document(self, path: str, version
                             ) -> Optional[Dict[str, object]]:
        """Parse one shard file; ``None`` for missing/damaged/old files.

        ``version`` is the accepted format version — an ``int`` for an
        exact match, or a set of ints for readers that keep decoding
        known-compatible older shards (the artifact tier accepts both
        the v1 object-tree and v2 arena codecs).
        """
        if not os.path.exists(path):
            return None
        accepted = version if isinstance(version, frozenset) else \
            frozenset({version})
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            if document.get("version") not in accepted:
                raise ValueError(f"format version {document.get('version')!r}")
            entries = document["entries"]
            if not isinstance(entries, dict):
                raise ValueError("entries is not an object")
            return document
        except (OSError, ValueError, KeyError, TypeError,
                json.JSONDecodeError):
            self.corrupt_shards += 1
            return None

    def _load_shard(self, index: int) -> Dict[str, Dict[str, object]]:
        """Read one result shard, treating any damage as an empty shard."""
        shard = self._loaded.get(index)
        if shard is not None:
            return shard
        shard = {}
        if os.path.exists(self._shard_path(index)):
            self.shard_loads += 1  # counts real file parses only
        document = self._read_shard_document(self._shard_path(index),
                                             STORE_FORMAT_VERSION)
        if document is not None:
            try:
                for encoded_key, record in document["entries"].items():
                    # Validate eagerly so one bad record cannot surface
                    # later as a crash inside the engine's hot path; the
                    # decoded entry is kept, so get()/items() never pay
                    # for deserialization twice.
                    decode_key(encoded_key)
                    decoded = decode_entry(record["entry"])
                    shard[encoded_key] = {"stamp": int(record["stamp"]),
                                          "entry": record["entry"],
                                          "decoded": decoded}
            except (ValueError, KeyError, TypeError, ZeroDivisionError):
                self.corrupt_shards += 1
                shard = {}
        if shard:
            # Keep the insertion counter ahead of every entry we have
            # seen: if meta.json was lost or stale, new puts must still
            # stamp higher than existing entries, or oldest-first
            # eviction would drop fresh results instead of stale ones.
            newest = max(record["stamp"] for record in shard.values())
            if newest > self._stamp:
                self._stamp = newest
        self._loaded[index] = shard
        self._shard_counts[index] = len(shard)
        return shard

    def _load_tree_shard(self, index: int) -> Dict[str, Dict[str, object]]:
        """Read one artifact shard, treating any damage as an empty shard."""
        shard = self._tree_loaded.get(index)
        if shard is not None:
            return shard
        shard = {}
        if os.path.exists(self._tree_shard_path(index)):
            self.shard_loads += 1  # counts real file parses only
        document = self._read_shard_document(self._tree_shard_path(index),
                                             ARTIFACT_COMPAT_VERSIONS)
        if document is not None:
            try:
                for encoded_key, record in document["entries"].items():
                    decode_canonical_key(encoded_key)
                    decoded = decode_artifact(record["entry"])
                    shard[encoded_key] = {"stamp": int(record["stamp"]),
                                          "entry": record["entry"],
                                          "decoded": decoded}
            except (ValueError, KeyError, TypeError, ZeroDivisionError):
                self.corrupt_shards += 1
                shard = {}
        if shard:
            newest = max(record["stamp"] for record in shard.values())
            if newest > self._tree_stamp:
                self._tree_stamp = newest
        self._tree_loaded[index] = shard
        self._tree_shard_counts[index] = len(shard)
        return shard

    # -- CacheStore interface: results -------------------------------- #

    def get(self, key: ResultKey) -> Optional[CachedAttribution]:
        """Look one result up (loading its shard on first touch).

        Falls back to the legacy float-epsilon encoding for entries
        written by older processes, migrating hits to the canonical
        encoding (rewritten at the next flush).
        """
        faults.check("store.read")
        encoded = encode_key(key)
        with self._lock:
            index = self._route(encoded, self.shards)
            shard = self._load_shard(index)
            record = shard.get(encoded)
            if record is not None:
                return record["decoded"]
            legacy = _legacy_encode_key(key)
            if legacy is None or legacy == encoded:
                return None
            legacy_index = self._route(legacy, self.shards)
            legacy_shard = self._load_shard(legacy_index)
            record = legacy_shard.pop(legacy, None)
            if record is None:
                return None
            shard[encoded] = record
            self._dirty.add(index)
            self._dirty.add(legacy_index)
            self._shard_counts[index] = len(shard)
            self._shard_counts[legacy_index] = len(legacy_shard)
            return record["decoded"]

    def put(self, key: ResultKey, value: CachedAttribution) -> None:
        """Buffer one entry (durable after the next :meth:`flush`)."""
        encoded = encode_key(key)
        with self._lock:
            index = self._route(encoded, self.shards)
            shard = self._load_shard(index)
            entry = encode_entry(value)
            record = shard.get(encoded)
            if record is not None and record["entry"] == entry:
                # Identical re-put: nothing new to persist, so do not
                # dirty the shard (no rewrite at flush) and keep the
                # original insertion stamp (eviction stays
                # insertion-ordered; gets never bumped stamps either).
                record["decoded"] = value
                return
            self._stamp += 1
            shard[encoded] = {"stamp": self._stamp,
                              "entry": entry,
                              "decoded": value}
            self._dirty.add(index)
            self._shard_counts[index] = len(shard)

    # -- CacheStore interface: compiled-lineage artifacts -------------- #

    def get_artifact(self, key: CanonicalKey) -> Optional[CompiledLineage]:
        """Look one compiled-lineage artifact up (lazy shard load)."""
        encoded = encode_canonical_key(key)
        with self._lock:
            shard = self._load_tree_shard(
                self._route(encoded, self.tree_shards))
            record = shard.get(encoded)
            if record is None:
                return None
            return record["decoded"]

    def put_artifact(self, key: CanonicalKey,
                     value: CompiledLineage) -> None:
        """Buffer one artifact (durable after the next :meth:`flush`)."""
        encoded = encode_canonical_key(key)
        with self._lock:
            index = self._route(encoded, self.tree_shards)
            shard = self._load_tree_shard(index)
            entry = encode_artifact(value)
            record = shard.get(encoded)
            if record is not None and record["entry"] == entry:
                record["decoded"] = value
                return
            self._tree_stamp += 1
            shard[encoded] = {"stamp": self._tree_stamp,
                              "entry": entry,
                              "decoded": value}
            self._tree_dirty.add(index)
            self._tree_shard_counts[index] = len(shard)

    # -- flushing and iteration ---------------------------------------- #

    def _flush_kind(self, dirty: set, loaded: Dict[int, Dict],
                    per_shard: int, path_of, version: int,
                    counts: Dict[int, int]) -> None:
        for index in sorted(dirty):
            shard = loaded.get(index, {})
            if len(shard) > per_shard:
                # Incremental eviction: only this over-bound shard is
                # touched, and the survivors are selected with a heap
                # (O(n log k)) instead of a full sort.
                keep = heapq.nlargest(per_shard, shard.items(),
                                      key=lambda item: item[1]["stamp"])
                shard = dict(keep)
                loaded[index] = shard
            counts[index] = len(shard)
            serializable = {
                encoded_key: {"stamp": record["stamp"],
                              "entry": record["entry"]}
                for encoded_key, record in shard.items()
            }
            self.bytes_flushed += self._atomic_write(
                path_of(index), {"version": version,
                                 "entries": serializable})
            self.flush_writes += 1
        dirty.clear()

    def flush(self) -> None:
        """Atomically rewrite every *dirty* shard, evicting past the bounds.

        Clean shards -- including ones that only saw identical re-puts
        -- are not rewritten; ``flush_writes``/``bytes_flushed`` expose
        exactly how much was.

        A failing write leaves previously flushed shards intact (each
        shard rewrite is atomic) and the failed shard still dirty, so a
        retried flush after the fault clears persists everything.
        """
        faults.check("store.flush")
        with self._lock:
            if not self._dirty and not self._tree_dirty:
                return
            self._flush_kind(self._dirty, self._loaded, self._per_shard,
                             self._shard_path, STORE_FORMAT_VERSION,
                             self._shard_counts)
            self._flush_kind(self._tree_dirty, self._tree_loaded,
                             self._per_tree_shard, self._tree_shard_path,
                             ARTIFACT_FORMAT_VERSION,
                             self._tree_shard_counts)
            self._atomic_write(
                self._meta_path(),
                {"version": STORE_FORMAT_VERSION,
                 "stamp": self._stamp,
                 "tree_stamp": self._tree_stamp,
                 "shard_counts": {str(index): count for index, count
                                  in sorted(self._shard_counts.items())},
                 "tree_shard_counts": {
                     str(index): count for index, count
                     in sorted(self._tree_shard_counts.items())}})

    def items(self) -> Iterator[Tuple[ResultKey, CachedAttribution]]:
        """Iterate every result of every shard (loading all of them).

        The snapshot is taken under the lock before anything is yielded,
        so consumers may call :meth:`put`/:meth:`get` mid-iteration.
        """
        with self._lock:
            records: List[Tuple[str, Dict[str, object]]] = []
            for index in range(self.shards):
                records.extend(self._load_shard(index).items())
        for encoded_key, record in records:
            yield decode_key(encoded_key), record["decoded"]

    def artifact_items(self) -> Iterator[Tuple[CanonicalKey, CompiledLineage]]:
        """Iterate every compiled-lineage artifact (snapshot under lock)."""
        with self._lock:
            records = []
            for index in range(self.tree_shards):
                records.extend(self._load_tree_shard(index).items())
        for encoded_key, record in records:
            yield decode_canonical_key(encoded_key), record["decoded"]

    def _count_kind(self, shard_count: int, loaded: Dict[int, Dict],
                    counts: Dict[int, int], load_one) -> int:
        """Sum entry counts without parsing every shard file.

        Loaded shards are authoritative; unloaded ones use the advisory
        count persisted in meta.json; only shards missing from both
        (legacy metas) are actually read.
        """
        total = 0
        for index in range(shard_count):
            shard = loaded.get(index)
            if shard is not None:
                total += len(shard)
            elif index in counts:
                total += counts[index]
            else:
                total += len(load_one(index))
        return total

    def __len__(self) -> int:
        with self._lock:
            return self._count_kind(self.shards, self._loaded,
                                    self._shard_counts, self._load_shard)

    def artifact_count(self) -> int:
        """Number of persisted compiled-lineage artifacts."""
        with self._lock:
            return self._count_kind(self.tree_shards, self._tree_loaded,
                                    self._tree_shard_counts,
                                    self._load_tree_shard)

    def _kind_footprint(self, shard_count: int, path_of
                        ) -> Tuple[int, int]:
        shard_files = 0
        total_bytes = 0
        for index in range(shard_count):
            try:
                total_bytes += os.path.getsize(path_of(index))
                shard_files += 1
            except OSError:
                continue
        return shard_files, total_bytes

    def stats(self) -> Dict[str, object]:
        """Per-kind entry/shard counts, capacities, and on-disk footprint."""
        entries = len(self)
        artifacts = self.artifact_count()
        shard_files, result_bytes = self._kind_footprint(
            self.shards, self._shard_path)
        tree_files, tree_bytes = self._kind_footprint(
            self.tree_shards, self._tree_shard_path)
        return {
            "backend": "disk",
            "path": self.path,
            "format_version": STORE_FORMAT_VERSION,
            "entries": entries,
            "max_entries": self.max_entries,
            "shards": self.shards,
            "shard_files": shard_files,
            "corrupt_shards": self.corrupt_shards,
            "shard_loads": self.shard_loads,
            "flush_writes": self.flush_writes,
            "bytes_flushed": self.bytes_flushed,
            "disk_bytes": result_bytes + tree_bytes,
            "kinds": {
                "results": {
                    "entries": entries,
                    "max_entries": self.max_entries,
                    "shard_files": shard_files,
                    "disk_bytes": result_bytes,
                },
                "compiled_trees": {
                    "entries": artifacts,
                    "max_entries": self.max_artifacts,
                    "shard_files": tree_files,
                    "disk_bytes": tree_bytes,
                },
            },
        }


def save_results(cache_entries, store: CacheStore) -> int:
    """Write ``(key, value)`` result pairs into ``store`` and flush.

    Skips unconverged entries (a persisted best-so-far would mask a later,
    better attempt).  Returns the number of entries written.  This is the
    workhorse behind :meth:`repro.engine.engine.Engine.save_cache` and
    ``repro cache save``.
    """
    written = 0
    for key, value in cache_entries:
        if value.converged:
            store.put(key, value)
            written += 1
    store.flush()
    return written


def load_results(store: CacheStore, cache) -> int:
    """Load every converged store entry into an in-memory result cache.

    ``cache`` is an :class:`~repro.engine.cache.LRUCache` (the engine's
    ``cache.results``); loading more entries than its capacity simply
    evicts the earliest-loaded ones.  Returns the number of entries
    loaded.
    """
    loaded = 0
    for key, value in store.items():
        if value.converged:
            cache.put(key, value)
            loaded += 1
    return loaded


def save_artifacts(artifact_entries, store: CacheStore) -> int:
    """Write ``(canonical key, CompiledLineage)`` pairs into ``store``.

    Tolerates result-only stores (returns 0); skips trivial partials (an
    undecomposed frontier with zero expansions carries nothing worth
    resuming).  Flushes on completion.
    """
    if not hasattr(store, "put_artifact"):
        return 0
    written = 0
    for key, artifact in artifact_entries:
        if artifact.complete or artifact.expansion_steps > 0:
            store.put_artifact(key, artifact)
            written += 1
    store.flush()
    return written


def load_artifacts(store: CacheStore, cache) -> int:
    """Load every persisted artifact into an in-memory artifact cache.

    ``cache`` is the engine's ``cache.artifacts`` LRU; result-only
    stores load nothing.  Returns the number of artifacts loaded.
    """
    if not hasattr(store, "artifact_items"):
        return 0
    loaded = 0
    for key, artifact in store.artifact_items():
        cache.put(key, artifact)
        loaded += 1
    return loaded


__all__ = [
    "STORE_FORMAT_VERSION",
    "CacheStore",
    "DiskStore",
    "MemoryStore",
    "decode_canonical_key",
    "decode_entry",
    "decode_key",
    "encode_canonical_key",
    "encode_entry",
    "encode_key",
    "load_artifacts",
    "load_results",
    "save_artifacts",
    "save_results",
]
