"""Engine-native IchiBan: ranking and top-k in canonical variable space.

The engine's ``rank`` and ``topk`` methods run the paper's IchiBan
algorithm (Section 4.1) on *canonical* lineages, so isomorphic answers --
the bulk of ranking-style repeat traffic -- share a single anytime run, and
the resulting per-variable intervals are memoized in the
:class:`~repro.engine.cache.LineageCache` exactly like exact/approximate
attributions (keyed additionally by epsilon and, for top-k, by k).
Converged ranking entries also flow through the persistent store tier
(:mod:`repro.engine.store`) when one is configured: because the interval
maps are canonical-space and exact (``Fraction``/int endpoints), a
warm-started process serves repeat ranking traffic from disk with
bit-identical intervals -- only unconverged best-so-far results are
excluded from both tiers.

Two paths mirror the engine's ``auto`` story:

* a complete d-tree cached by an earlier computation over the same
  canonical lineage (an exact attribution, or a ranking run that happened
  to finish its tree) yields an *exact* ranking via one ExaBan pass -- no
  anytime refinement at all.  Like the d-tree cache in general, this
  applies to the engine's serial compute path (the default): trees are
  in-process object graphs that are never shipped to or from pool
  workers;
* an anytime run that exhausts its wall-clock budget degrades gracefully:
  the best-so-far intervals carried by
  :class:`~repro.core.ichiban.IchiBanTimeout` become an uncertified
  (``converged=False``) result, which the engine reports but never caches.

Cached values are interval midpoints; the certified interval itself lives
in ``bounds``.  Rankings should be read through
:meth:`repro.engine.engine.Engine.rank` (or
:func:`repro.core.ichiban.ranked_from_intervals`), which orders by the
interval evidence -- for top-k, a certainly-out variable can keep a wide
interval with a large midpoint, so sorting the midpoints alone may
mis-rank it.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro.boolean.dnf import DNF
from repro.core.exaban import exaban_all
from repro.core.ichiban import (
    IchiBanTimeout,
    _IchiBanRun,
    _rank_controller,
    _topk_controller,
)
from repro.core.intervals import Interval
from repro.dtree.heuristics import Heuristic, select_most_frequent
from repro.engine.cache import CachedAttribution


@dataclass(frozen=True)
class RankingComputation:
    """Outcome of ranking one canonical lineage.

    ``rounds`` counts the IchiBan refinement rounds actually run (0 on the
    d-tree fast path); ``tree`` carries the completed d-tree when the
    anytime run happened to finish it -- worth caching, because it turns
    every later ranking of the same canonical lineage (any epsilon, any k)
    into an exact one.
    """

    outcome: CachedAttribution
    rounds: int = 0
    tree: object = None


def _from_intervals(method: str, intervals: Dict[int, Interval],
                    converged: bool) -> CachedAttribution:
    return CachedAttribution(
        method_used=method if converged else f"{method}-partial",
        values={v: interval.midpoint() for v, interval in intervals.items()},
        bounds={v: (interval.lower, interval.upper)
                for v, interval in intervals.items()},
        converged=converged,
    )


def _exact_ranking(function: DNF, tree: object) -> RankingComputation:
    """Read an exact ranking off a complete d-tree (one ExaBan pass).

    Restricted to the occurring variables, matching IchiBan's scope
    (silent domain variables have Banzhaf value 0 and never rank).
    """
    occurring = function.variables
    values = {v: value for v, value in exaban_all(tree).items()
              if v in occurring}
    return RankingComputation(outcome=CachedAttribution(
        method_used="exact",
        values={v: Fraction(value) for v, value in values.items()},
        bounds={v: (value, value) for v, value in values.items()},
    ))


def compute_ranking(function: DNF, method: str, k: Optional[int],
                    epsilon: Optional[float],
                    timeout_seconds: Optional[float],
                    tree: object = None,
                    max_steps: Optional[int] = None,
                    heuristic: Heuristic = select_most_frequent
                    ) -> RankingComputation:
    """Rank one canonical lineage (``method`` is ``"rank"`` or ``"topk"``).

    ``epsilon=None`` demands certainty (pairwise separation for ``rank``,
    a decided top-k set for ``topk``); otherwise the run may also stop at
    the certified relative error.  ``max_steps`` bounds the anytime run's
    bound evaluations (IchiBan's budget unit); either budget exhausting
    produces the degraded best-so-far result.  A ``tree`` (complete
    d-tree) bypasses the anytime run entirely.
    """
    if method not in ("rank", "topk"):
        raise ValueError(
            f"compute_ranking handles method 'rank' or 'topk', not "
            f"{method!r}"
        )
    if method == "topk" and (k is None or k < 1):
        raise ValueError("method 'topk' needs k >= 1")
    if tree is not None:
        return _exact_ranking(function, tree)
    if method == "topk":
        controller = _topk_controller(k, epsilon)
    else:
        controller = _rank_controller(epsilon)
    run = _IchiBanRun(function, heuristic)
    try:
        intervals = run.run(controller, max_steps, timeout_seconds)
    except IchiBanTimeout as timeout:
        return RankingComputation(
            outcome=_from_intervals(method, timeout.intervals,
                                    converged=False),
            rounds=timeout.rounds,
        )
    return RankingComputation(
        outcome=_from_intervals(method, intervals, converged=True),
        rounds=run.rounds,
        tree=run.state.compiler.root if run.state.is_complete() else None,
    )
