"""Engine-native IchiBan: ranking and top-k in canonical variable space.

The engine's ``rank`` and ``topk`` methods run the paper's IchiBan
algorithm (Section 4.1) on *canonical* lineages, so isomorphic answers --
the bulk of ranking-style repeat traffic -- share a single anytime run, and
the resulting per-variable intervals are memoized in the
:class:`~repro.engine.cache.LineageCache` exactly like exact/approximate
attributions (keyed additionally by epsilon and, for top-k, by k).
Converged ranking entries also flow through the persistent store tier
(:mod:`repro.engine.store`) when one is configured: because the interval
maps are canonical-space and exact (``Fraction``/int endpoints), a
warm-started process serves repeat ranking traffic from disk with
bit-identical intervals -- only unconverged best-so-far results are
excluded from both tiers.

Compilation state flows through the **compiled-lineage artifact**
(:class:`~repro.engine.artifact.CompiledLineage`), mirroring the engine's
compile-once / evaluate-per-method split:

* a **complete** artifact -- compiled by an exact attribution, a Shapley
  run, or a ranking run that happened to finish its tree, in this process
  or (via the store tier) a previous one -- yields an *exact* ranking via
  one ExaBan pass: no anytime refinement at all, any epsilon, any k;
* a **partial** artifact is *resumed*: the anytime run restarts bound
  refinement from the persisted frontier instead of from the undecomposed
  lineage, so work paid by an earlier method, epsilon, k, or process is
  never redone.  The artifact's tree itself is never mutated -- resuming
  clones it (see :meth:`CompiledLineage.resume_compiler`);
* every computation hands its compilation state back: budget exhaustion
  degrades to an uncertified (``converged=False``) best-so-far result the
  engine reports but never caches as a *result* -- yet the partial tree
  it built **is** returned as an artifact, so the next attempt resumes
  rather than restarts.

Cached values are interval midpoints; the certified interval itself lives
in ``bounds``.  Rankings should be read through
:meth:`repro.engine.engine.Engine.rank` (or
:func:`repro.core.ichiban.ranked_from_intervals`), which orders by the
interval evidence -- for top-k, a certainly-out variable can keep a wide
interval with a large midpoint, so sorting the midpoints alone may
mis-rank it.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro.boolean.dnf import DNF
from repro.core.exaban import exaban_all
from repro.core.ichiban import (
    IchiBanTimeout,
    _IchiBanRun,
    _rank_controller,
    _topk_controller,
)
from repro.core.intervals import Interval
from repro.dtree.heuristics import Heuristic, select_most_frequent
from repro.engine.artifact import CompiledLineage
from repro.engine.cache import CachedAttribution


@dataclass(frozen=True)
class RankingComputation:
    """Outcome of ranking one canonical lineage.

    ``rounds`` counts the IchiBan refinement rounds actually run (0 on the
    complete-artifact fast path); ``artifact`` carries the compilation
    state after the run -- complete when the tree was finished (turning
    every later evaluation of the same canonical lineage, any method or
    epsilon or k, into an exact one), partial-and-resumable otherwise.
    """

    outcome: CachedAttribution
    rounds: int = 0
    artifact: Optional[CompiledLineage] = None


def _from_intervals(method: str, intervals: Dict[int, Interval],
                    converged: bool) -> CachedAttribution:
    return CachedAttribution(
        method_used=method if converged else f"{method}-partial",
        values={v: interval.midpoint() for v, interval in intervals.items()},
        bounds={v: (interval.lower, interval.upper)
                for v, interval in intervals.items()},
        converged=converged,
    )


def _exact_ranking(function: DNF,
                   artifact: CompiledLineage) -> RankingComputation:
    """Read an exact ranking off a complete artifact (one ExaBan pass).

    Restricted to the occurring variables, matching IchiBan's scope
    (silent domain variables have Banzhaf value 0 and never rank).
    """
    occurring = function.variables
    values = {v: value
              for v, value in exaban_all(artifact.root,
                                         counts=artifact.counts).items()
              if v in occurring}
    return RankingComputation(outcome=CachedAttribution(
        method_used="exact",
        values={v: Fraction(value) for v, value in values.items()},
        bounds={v: (value, value) for v, value in values.items()},
    ), artifact=artifact)


def compute_ranking(function: DNF, method: str, k: Optional[int],
                    epsilon: Optional[float],
                    timeout_seconds: Optional[float],
                    artifact: Optional[CompiledLineage] = None,
                    max_steps: Optional[int] = None,
                    heuristic: Heuristic = select_most_frequent
                    ) -> RankingComputation:
    """Rank one canonical lineage (``method`` is ``"rank"`` or ``"topk"``).

    ``epsilon=None`` demands certainty (pairwise separation for ``rank``,
    a decided top-k set for ``topk``); otherwise the run may also stop at
    the certified relative error.  ``max_steps`` bounds the anytime run's
    bound evaluations (IchiBan's budget unit); either budget exhausting
    produces the degraded best-so-far result -- whose partial tree still
    comes back as a resumable artifact.  A complete ``artifact`` bypasses
    the anytime run entirely; a partial one seeds it.
    """
    if method not in ("rank", "topk"):
        raise ValueError(
            f"compute_ranking handles method 'rank' or 'topk', not "
            f"{method!r}"
        )
    if method == "topk" and (k is None or k < 1):
        raise ValueError("method 'topk' needs k >= 1")
    if artifact is not None and artifact.complete:
        return _exact_ranking(function, artifact)
    if method == "topk":
        controller = _topk_controller(k, epsilon)
    else:
        controller = _rank_controller(epsilon)
    compiler = (artifact.resume_compiler(heuristic)
                if artifact is not None else None)
    run = _IchiBanRun(function, heuristic, compiler=compiler)
    try:
        intervals = run.run(controller, max_steps, timeout_seconds)
    except IchiBanTimeout as timeout:
        return RankingComputation(
            outcome=_from_intervals(method, timeout.intervals,
                                    converged=False),
            rounds=timeout.rounds,
            artifact=CompiledLineage.from_compiler(run.state.compiler),
        )
    return RankingComputation(
        outcome=_from_intervals(method, intervals, converged=True),
        rounds=run.rounds,
        artifact=CompiledLineage.from_compiler(run.state.compiler),
    )
