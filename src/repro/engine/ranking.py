"""Engine-native IchiBan: ranking and top-k in canonical variable space.

The engine's ``rank`` and ``topk`` methods run the paper's IchiBan
algorithm (Section 4.1) on *canonical* lineages, so isomorphic answers --
the bulk of ranking-style repeat traffic -- share a single anytime run, and
the resulting per-variable intervals are memoized in the
:class:`~repro.engine.cache.LineageCache` exactly like exact/approximate
attributions (keyed additionally by epsilon and, for top-k, by k).
Converged ranking entries also flow through the persistent store tier
(:mod:`repro.engine.store`) when one is configured: because the interval
maps are canonical-space and exact (``Fraction``/int endpoints), a
warm-started process serves repeat ranking traffic from disk with
bit-identical intervals -- only unconverged best-so-far results are
excluded from both tiers.

Compilation state flows through the **compiled-lineage artifact**
(:class:`~repro.engine.artifact.CompiledLineage`), mirroring the engine's
compile-once / evaluate-per-method split:

* a **complete** artifact -- compiled by an exact attribution, a Shapley
  run, or a ranking run that happened to finish its tree, in this process
  or (via the store tier) a previous one -- yields an *exact* ranking via
  one ExaBan pass: no anytime refinement at all, any epsilon, any k;
* a **partial** artifact is *resumed*: the anytime run restarts bound
  refinement from the persisted frontier instead of from the undecomposed
  lineage, so work paid by an earlier method, epsilon, k, or process is
  never redone.  The artifact's tree itself is never mutated -- resuming
  clones it (see :meth:`CompiledLineage.resume_compiler`);
* every computation hands its compilation state back: budget exhaustion
  degrades to an uncertified (``converged=False``) best-so-far result the
  engine reports but never caches as a *result* -- yet the partial tree
  it built **is** returned as an artifact, so the next attempt resumes
  rather than restarts.

Cached values are interval midpoints; the certified interval itself lives
in ``bounds``.  Rankings should be read through
:meth:`repro.engine.engine.Engine.rank` (or
:func:`repro.core.ichiban.ranked_from_intervals`), which orders by the
interval evidence -- for top-k, a certainly-out variable can keep a wide
interval with a large midpoint, so sorting the midpoints alone may
mis-rank it.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro.boolean.dnf import DNF
from repro.core.exaban import exaban_all
from repro.core.ichiban import (
    IchiBanTimeout,
    _IchiBanRun,
    _rank_controller,
    _topk_controller,
    float_straddlers,
)
from repro.core.intervals import Interval
from repro.dtree.arena import arena_of, pow2_int
from repro.dtree.compile import CompilationBudget, CompilationLimitReached
from repro.dtree.heuristics import Heuristic, select_most_frequent
from repro.dtree.incremental import IncrementalCompiler
from repro.dtree.kernels import (
    banzhaf_pass,
    float_banzhaf_pass,
    float_surrogate_pass,
)
from repro.engine.artifact import CompiledLineage, complete_compilation
from repro.engine.cache import CachedAttribution


@dataclass(frozen=True)
class RankingComputation:
    """Outcome of ranking one canonical lineage.

    ``rounds`` counts the IchiBan refinement rounds actually run (0 on the
    complete-artifact fast path); ``artifact`` carries the compilation
    state after the run -- complete when the tree was finished (turning
    every later evaluation of the same canonical lineage, any method or
    epsilon or k, into an exact one), partial-and-resumable otherwise.
    """

    outcome: CachedAttribution
    rounds: int = 0
    artifact: Optional[CompiledLineage] = None


def _from_intervals(method: str, intervals: Dict[int, Interval],
                    converged: bool) -> CachedAttribution:
    return CachedAttribution(
        method_used=method if converged else f"{method}-partial",
        values={v: interval.midpoint() for v, interval in intervals.items()},
        bounds={v: (interval.lower, interval.upper)
                for v, interval in intervals.items()},
        converged=converged,
    )


def _exact_ranking(function: DNF, artifact: CompiledLineage,
                   kernel: str = "python", stats=None) -> RankingComputation:
    """Read an exact ranking off a complete artifact (one ExaBan pass).

    Restricted to the occurring variables, matching IchiBan's scope
    (silent domain variables have Banzhaf value 0 and never rank).
    """
    occurring = function.variables
    values = {v: value
              for v, value in exaban_all(artifact.root,
                                         counts=artifact.counts,
                                         kernel=kernel, stats=stats).items()
              if v in occurring}
    return RankingComputation(outcome=CachedAttribution(
        method_used="exact",
        values={v: Fraction(value) for v, value in values.items()},
        bounds={v: (value, value) for v, value in values.items()},
    ), artifact=artifact)


#: Widest enclosure half-width (in bits) the float tier will materialize
#: as exact integer bounds.  ``2**±4096`` around any score in this
#: codebase is already vacuously wide; anything wider certifies nothing
#: and only costs memory (``pow2_int`` allocates ``width`` bits).
MAX_ENCLOSURE_BITS = 4096.0

_LN2 = math.log(2.0)


def uncertified_enclosure(log: float, err: float, margin: int) -> bool:
    """True when ``(log, err)`` has no materializable integer enclosure.

    Exact zeros (``log == -inf``) are exactly representable and always
    certified.  Otherwise an unbounded relative error, or one whose
    widened log2 half-width exceeds :data:`MAX_ENCLOSURE_BITS`, means the
    enclosure is vacuous -- the caller must fall back to the exact pass
    instead of asking :func:`~repro.dtree.arena.pow2_int` for it.
    """
    if log == -math.inf:
        return False
    return (not math.isfinite(err)
            or margin * err / _LN2 > MAX_ENCLOSURE_BITS)


def _float_ranking(function: DNF, artifact: CompiledLineage, method: str,
                   float_ulp_margin: int, kernel: str = "python",
                   stats=None) -> RankingComputation:
    """Float-tier ranking off a complete artifact (log2 arena pass).

    Scores come from the fused float Banzhaf pass
    (:func:`~repro.dtree.kernels.float_banzhaf_pass` — vectorized or
    pure-Python per ``kernel``) with per-variable relative-error bounds;
    variables whose widened score intervals overlap another's
    (``float_straddlers``) fall back to the exact arena pass and get
    point bounds, the rest get certified integer enclosures
    ``[floor(2^(log-w)), ceil(2^(log+w))]`` — so the reported bounds
    always contain the exact Banzhaf value and the order read off them
    matches the exact order, while the common case never touches bignum
    arithmetic.

    A score whose enclosure cannot be *materialized* -- unbounded error,
    or a half-width beyond :data:`MAX_ENCLOSURE_BITS` (deep trees
    legitimately accumulate relative errors up to ~1e307) -- is treated
    as a straddler even when no other interval overlaps it (e.g. a
    single-variable lineage): ``pow2_int`` on such a width would build
    an integer with ``err / ln 2`` bits.
    """
    arena = artifact.arena()
    occurring = function.variables
    scores = {v: s
              for v, s in float_banzhaf_pass(arena, kernel=kernel,
                                             stats=stats).items()
              if v in occurring}
    straddlers = float_straddlers(scores, float_ulp_margin)
    straddlers.update(v for v, (log, err) in scores.items()
                      if uncertified_enclosure(log, err, float_ulp_margin))
    exact = (banzhaf_pass(arena, kernel=kernel, stats=stats)
             if straddlers else {})
    values: Dict[int, Fraction] = {}
    bounds: Dict[int, tuple] = {}
    for variable, (log, err) in scores.items():
        if variable in straddlers:
            point = exact[variable]
            values[variable] = Fraction(point)
            bounds[variable] = (point, point)
        else:
            lower = pow2_int(log, float_ulp_margin * err)
            upper = pow2_int(log, float_ulp_margin * err, ceil=True)
            values[variable] = Fraction(lower + upper, 2)
            bounds[variable] = (lower, upper)
    return RankingComputation(outcome=CachedAttribution(
        method_used=f"{method}-float",
        values=values,
        bounds=bounds,
    ), artifact=artifact)


def _surrogate_ranking(function: DNF, artifact: CompiledLineage,
                       method: str, kernel: str = "python",
                       stats=None) -> RankingComputation:
    """Order-only surrogate ranking off a partial tree's float pass.

    For instances whose compilation exhausts its budget even in float
    mode, :func:`~repro.dtree.arena.arena_float_surrogate` estimates
    every variable's Banzhaf score from the partial tree (undecomposed
    leaves contribute closed-form independence estimates).  The result
    carries **order information only**: bounds are the honest
    ``(0, 2 * estimate)`` — their midpoints reproduce the surrogate
    order for :func:`~repro.core.ichiban.ranked_from_bounds`, while the
    interval width states that no value is certified.  Never converged,
    never cached; the partial artifact comes back resumable.
    """
    estimates = {v: e
                 for v, e in float_surrogate_pass(arena_of(artifact.root),
                                                  kernel=kernel,
                                                  stats=stats).items()
                 if v in function.variables}
    values: Dict[int, Fraction] = {}
    bounds: Dict[int, tuple] = {}
    for variable, log in estimates.items():
        upper = 2 * pow2_int(log, ceil=True)
        values[variable] = Fraction(upper, 2)
        bounds[variable] = (0, upper)
    return RankingComputation(outcome=CachedAttribution(
        method_used=f"{method}-float-surrogate",
        values=values,
        bounds=bounds,
        converged=False,
    ), artifact=artifact)


def _timed_compile(stats):
    """``stats.timed_pass("compile")`` when stats are carried, else no-op."""
    if stats is None:
        return nullcontext()
    return stats.timed_pass("compile")


def _float_tier(function: DNF, method: str,
                timeout_seconds: Optional[float],
                artifact: Optional[CompiledLineage],
                max_steps: Optional[int],
                heuristic: Heuristic,
                float_ulp_margin: int, kernel: str = "python",
                stats=None) -> RankingComputation:
    """Float-mode dispatch: exact-free ranking with a compile budget.

    A complete artifact ranks by float order immediately.  Otherwise one
    budgeted compile attempt is made (resuming a partial artifact's
    frontier); on success the float ranking runs over the finished tree,
    on budget exhaustion the partial tree yields a surrogate ranking —
    the float tier never enters the per-variable IchiBan refinement
    loop, which is what times out on wide instances.
    """
    if artifact is not None and artifact.complete:
        return _float_ranking(function, artifact, method, float_ulp_margin,
                              kernel=kernel, stats=stats)
    compiler = (artifact.resume_compiler(heuristic)
                if artifact is not None
                else IncrementalCompiler(function, heuristic))
    budget = CompilationBudget(max_shannon_steps=max_steps,
                               timeout_seconds=timeout_seconds)
    try:
        with _timed_compile(stats):
            complete_compilation(compiler, budget)
    except CompilationLimitReached:
        return _surrogate_ranking(
            function, CompiledLineage.from_compiler(compiler), method,
            kernel=kernel, stats=stats)
    return _float_ranking(function, CompiledLineage.from_compiler(compiler),
                          method, float_ulp_margin, kernel=kernel,
                          stats=stats)


def compute_ranking(function: DNF, method: str, k: Optional[int],
                    epsilon: Optional[float],
                    timeout_seconds: Optional[float],
                    artifact: Optional[CompiledLineage] = None,
                    max_steps: Optional[int] = None,
                    heuristic: Heuristic = select_most_frequent,
                    numeric: str = "exact",
                    float_ulp_margin: int = 8,
                    kernel: str = "python",
                    stats=None) -> RankingComputation:
    """Rank one canonical lineage (``method`` is ``"rank"`` or ``"topk"``).

    ``epsilon=None`` demands certainty (pairwise separation for ``rank``,
    a decided top-k set for ``topk``); otherwise the run may also stop at
    the certified relative error.  ``max_steps`` bounds the anytime run's
    bound evaluations (IchiBan's budget unit); either budget exhausting
    produces the degraded best-so-far result -- whose partial tree still
    comes back as a resumable artifact.  A complete ``artifact`` bypasses
    the anytime run entirely; a partial one seeds it.

    ``numeric="float"`` selects the log-space float tier: scores are
    log2-domain floats off the arena pass, top-k membership is decided
    by float order, and only boundary-straddling variables (float
    intervals overlapping within ``float_ulp_margin`` error units) fall
    back to exact arena evaluation.  Instead of anytime interval
    refinement, incomplete lineages get **one budgeted compile attempt**
    (``max_steps`` Shannon expansions / ``timeout_seconds``); on
    exhaustion the partial tree produces an order-only surrogate ranking
    (``method_used`` suffix ``-float-surrogate``, never converged).

    ``kernel`` selects the arena evaluation backend for the fused
    passes (``"python"`` | ``"auto"`` | ``"numpy"``, see
    :mod:`repro.dtree.kernels`); ``stats`` is an optional
    :class:`~repro.engine.stats.EngineStats` receiving kernel counters
    and per-pass timings.
    """
    if method not in ("rank", "topk"):
        raise ValueError(
            f"compute_ranking handles method 'rank' or 'topk', not "
            f"{method!r}"
        )
    if method == "topk" and (k is None or k < 1):
        raise ValueError("method 'topk' needs k >= 1")
    if numeric not in ("exact", "float"):
        raise ValueError(f"numeric must be 'exact' or 'float', "
                         f"not {numeric!r}")
    if numeric == "float":
        return _float_tier(function, method, timeout_seconds, artifact,
                           max_steps, heuristic, float_ulp_margin,
                           kernel=kernel, stats=stats)
    if artifact is not None and artifact.complete:
        return _exact_ranking(function, artifact, kernel=kernel, stats=stats)
    if method == "topk":
        controller = _topk_controller(k, epsilon)
    else:
        controller = _rank_controller(epsilon)
    compiler = (artifact.resume_compiler(heuristic)
                if artifact is not None else None)
    run = _IchiBanRun(function, heuristic, compiler=compiler)
    try:
        intervals = run.run(controller, max_steps, timeout_seconds)
    except IchiBanTimeout as timeout:
        return RankingComputation(
            outcome=_from_intervals(method, timeout.intervals,
                                    converged=False),
            rounds=timeout.rounds,
            artifact=CompiledLineage.from_compiler(run.state.compiler),
        )
    return RankingComputation(
        outcome=_from_intervals(method, intervals, converged=True),
        rounds=run.rounds,
        artifact=CompiledLineage.from_compiler(run.state.compiler),
    )
