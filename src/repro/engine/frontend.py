"""The concurrent SLO-aware serving front-end.

:class:`ServingFrontend` puts a thread pool, an admission-controlled
queue, and two work-sharing mechanisms in front of one (thread-safe)
:class:`~repro.engine.serve.AttributionService`, turning the
single-threaded serving loop into the concurrent front-end the ROADMAP's
"heavy traffic" north star asks for.  Any number of client threads call
:meth:`ServingFrontend.submit` concurrently; each gets exactly one
response dict -- a result, a structured rejection, or a structured error
-- never an exception and never silence.

The request lifecycle::

    client -> [admission] -> bounded queue -> [worker] -> response
                 |                               |
                 |- invalid ........ error       |- deadline expired .. shed
                 |- queue full ..... shed        |- single-flight
                 |- client budget .. shed        |     follower ....... wait,
                 |- deadline <= 0 .. shed        |     then cache hit
                                                 |- leader: micro-batch
                                                 |     compatible queued
                                                 |     requests
                                                 |- deadline scoped:
                                                       degrade to partial

**Admission control** happens on the *client's* thread, before a queue
slot is taken: malformed requests are answered immediately (they must
not occupy capacity), and a full queue, an exhausted per-client budget,
or an already-expired deadline yields a structured rejection
(``{"ok": false, "rejected": "<reason>", ...}``) -- counted as
``shed_requests`` in the shared engine stats, never silently dropped.

**In-flight coalescing (single-flight).**  Concurrent requests whose
computations are identical -- same op and method parameters over
WL-*isomorphic* answer lineages, per
:meth:`AttributionService.coalesce_key` -- share one computation.  The
first worker to take a key becomes its *leader* and computes through the
service (populating the shared result cache); *followers* wait on the
leader's event and then serve themselves from the now-warm cache.  The
leader always pops the key and sets the event in a ``finally``, so a
failing computation can never poison the map or strand a follower, and
each follower still produces its own fact-space response (isomorphic
lineages over *different* facts coalesce compute, not answers).

**Micro-batching.**  A worker that picks up an ``attribute`` request
drains up to ``batch_max - 1`` further compatible requests (same method,
no deadline) from the queue and runs them through one
:meth:`AttributionService.submit_batch` call -- one engine batch, one
store flush, and in-batch isomorph deduplication for free.  Under
``EngineConfig(kernel="auto"|"numpy")`` the engine additionally stacks
the batch's compiled arenas into one fused column block and evaluates
them in a single cross-request kernel sweep
(:func:`repro.dtree.kernels.prewarm_arenas`; the ``kernel`` block of
:meth:`stats` reports sweeps, batched trees, and fallbacks).

**Deadlines.**  A request's ``deadline_ms`` (or the configured default)
is measured from admission.  Expiry while queued sheds the request; a
request picked up in time runs with its *remaining* budget on a
deadline-scoped engine and degrades to a best-effort partial instead of
erroring when the budget runs out mid-compute (see
:meth:`AttributionService.submit`).  Deadline-carrying requests skip
coalescing and batching: their partial results are never cached, so
there is nothing for a follower to reuse.

Typical use::

    service = AttributionService(db, store=DiskStore(path))
    with ServingFrontend(service, FrontendConfig(workers=8)) as frontend:
        response = frontend.submit({"op": "attribute", "query": "..."})

``repro serve --workers N`` drives :func:`serve_jsonl_concurrent`, the
JSON-Lines loop over this front-end (responses streamed in input order
as they finish, backpressure instead of shedding -- a file is a patient
client).
"""

from __future__ import annotations

import json
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, TextIO, Tuple, Union

from repro.engine.serve import (
    AttributionService,
    ParsedRequest,
    RequestError,
)
from repro.reliability import faults


@dataclass(frozen=True)
class FrontendConfig:
    """Tuning knobs of the concurrent front-end.

    Attributes
    ----------
    workers:
        Worker threads serving the queue (>= 1).
    max_queue:
        Bound of the admission queue; a full queue sheds (non-blocking
        admission) or backpressures (blocking admission) new requests.
    batch_max:
        Upper bound of one micro-batch, including the request that
        started it; ``1`` disables batching.
    coalesce:
        Enable in-flight coalescing of isomorphic computations.
        Disabling it (``repro serve --no-coalesce``; the load benchmark's
        baseline) makes every request compute independently.
    deadline_ms:
        Default per-request deadline applied when a request carries no
        ``deadline_ms`` of its own; ``None`` = no default (requests are
        unbounded unless they say otherwise).
    max_inflight_per_client:
        Per-``client`` admission budget: a client tag may have at most
        this many requests admitted-but-unanswered at once; further ones
        are shed with ``rejected: "client_budget"``.  ``None`` disables
        the budget; requests without a ``client`` tag are never budgeted.
    """

    workers: int = 4
    max_queue: int = 64
    batch_max: int = 8
    coalesce: bool = True
    deadline_ms: Optional[float] = None
    max_inflight_per_client: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if self.batch_max < 1:
            raise ValueError("batch_max must be at least 1")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if (self.max_inflight_per_client is not None
                and self.max_inflight_per_client < 1):
            raise ValueError("max_inflight_per_client must be at least 1")


class Ticket:
    """One admitted request's future response.

    Returned by :meth:`ServingFrontend.submit_nowait`; :meth:`result`
    blocks until a worker finished the request.  Every admitted ticket is
    finished exactly once -- workers wrap serving in a catch-all, so even
    a request that makes the engine raise produces a structured error
    response here.
    """

    __slots__ = ("request", "parsed", "deadline_at", "enqueued_at",
                 "_done", "_response", "_claim_lock")

    def __init__(self, request: Dict[str, object], parsed: ParsedRequest,
                 deadline_at: Optional[float]) -> None:
        self.request = request
        self.parsed = parsed
        self.deadline_at = deadline_at
        self.enqueued_at = time.monotonic()
        self._done = threading.Event()
        self._response: Optional[Dict[str, object]] = None
        self._claim_lock = threading.Lock()

    def result(self, timeout: Optional[float] = None) -> Dict[str, object]:
        """Block until the response is ready and return it."""
        if not self._done.wait(timeout):
            raise TimeoutError("ticket not finished within timeout")
        assert self._response is not None
        return self._response

    def done(self) -> bool:
        return self._done.is_set()

    def _claim(self) -> bool:
        """Atomically claim the right to finish this ticket.

        Returns ``True`` exactly once.  Several actors may legitimately
        race to answer one ticket (a worker, the ``close()`` drain, and a
        submitter that detects it raced ``close()``); whoever claims
        produces the single response, everyone else backs off.
        """
        return self._claim_lock.acquire(blocking=False)

    def _finish(self, response: Dict[str, object]) -> None:
        self._response = response
        self._done.set()


class ServingFrontend:
    """Concurrent request front-end over one :class:`AttributionService`.

    See the module docstring for the mechanism; thread-safety of the
    underlying tiers is the service's contract (shared LRU caches, the
    store, and :class:`~repro.engine.stats.EngineStats` all lock
    internally).  Close the front-end (or use it as a context manager) to
    drain the queue, stop the workers, and flush the store.
    """

    def __init__(self, service: AttributionService,
                 config: Optional[FrontendConfig] = None) -> None:
        self.service = service
        self.config = config or FrontendConfig()
        self._queue: "queue.Queue[object]" = queue.Queue(
            maxsize=self.config.max_queue)
        self._inflight: Dict[Tuple[object, ...], threading.Event] = {}
        self._inflight_lock = threading.Lock()
        self._client_inflight: Dict[str, int] = {}
        self._client_lock = threading.Lock()
        self._counters = {
            "submitted": 0, "completed": 0, "coalesced": 0,
            "rejected_invalid": 0, "shed_queue_full": 0,
            "shed_client_budget": 0, "shed_deadline": 0,
            "batches": 0, "batched_requests": 0, "degraded": 0,
        }
        self._counters_lock = threading.Lock()
        self._closed = False
        self._close_lock = threading.Lock()
        self._stop = threading.Event()
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"repro-serve-{index}", daemon=True)
            for index in range(self.config.workers)
        ]
        for worker in self._workers:
            worker.start()

    # ----------------------------------------------------------------- #
    # Client side: admission
    # ----------------------------------------------------------------- #

    def submit(self, request: Dict[str, object],
               block: bool = False) -> Dict[str, object]:
        """Serve one request, blocking the caller until its response.

        The client-facing call: admission (validation, budgets, queue
        capacity) happens on the calling thread, then the caller blocks
        until a worker finished the request.  ``block=True`` turns a full
        queue into backpressure (wait for a slot) instead of shedding.
        """
        outcome = self.submit_nowait(request, block=block)
        if isinstance(outcome, dict):
            return outcome
        return outcome.result()

    def submit_nowait(self, request: Dict[str, object], block: bool = False
                      ) -> Union[Ticket, Dict[str, object]]:
        """Admit one request without waiting for its computation.

        Returns a :class:`Ticket` on admission, or the immediate response
        dict when admission already settled the request (validation
        error, shed).  Either way the caller ends up with exactly one
        response per request.
        """
        if self._closed:
            raise RuntimeError("the front-end is closed")
        try:
            parsed = self.service.validate_request(request)
        except RequestError as error:
            self._count("rejected_invalid")
            self.service.record_rejection()
            return self._attach_id({"ok": False, "error": str(error)},
                                   request)

        deadline_seconds = parsed.deadline_seconds
        if deadline_seconds is None and self.config.deadline_ms is not None:
            deadline_seconds = self.config.deadline_ms / 1000.0
        deadline_at = (time.monotonic() + deadline_seconds
                       if deadline_seconds is not None else None)

        if not self._admit_client(parsed.client):
            return self._shed(request, "client_budget",
                              f"client {parsed.client!r} has too many "
                              "requests in flight")
        ticket = Ticket(request, parsed, deadline_at)
        try:
            self._queue.put(ticket, block=block)
        except queue.Full:
            self._release_client(parsed.client)
            return self._shed(request, "queue_full",
                              "the admission queue is full")
        self._count("submitted")
        if self._closed:
            # We raced close(): its final drain may already have run, in
            # which case nobody would ever serve this ticket.  Settle it
            # with the shutdown rejection ourselves -- the ticket's claim
            # makes this a no-op if a worker or the drain got there first.
            self._finish_shutdown(ticket)
        return ticket

    def _admit_client(self, client: Optional[str]) -> bool:
        budget = self.config.max_inflight_per_client
        if client is None or budget is None:
            return True
        with self._client_lock:
            inflight = self._client_inflight.get(client, 0)
            if inflight >= budget:
                return False
            self._client_inflight[client] = inflight + 1
            return True

    def _release_client(self, client: Optional[str]) -> None:
        if client is None or self.config.max_inflight_per_client is None:
            return
        with self._client_lock:
            remaining = self._client_inflight.get(client, 1) - 1
            if remaining <= 0:
                self._client_inflight.pop(client, None)
            else:
                self._client_inflight[client] = remaining

    def _shed(self, request: Dict[str, object], reason: str,
              detail: str) -> Dict[str, object]:
        """A structured rejection: the admission-control answer is still
        an answer."""
        self._count(f"shed_{reason}")
        self.service.stats_counters.bump(shed_requests=1)
        self.service.record_rejection()
        return self._attach_id(
            {"ok": False, "rejected": reason, "error": detail}, request)

    @staticmethod
    def _attach_id(response: Dict[str, object],
                   request: object) -> Dict[str, object]:
        if isinstance(request, dict) and "id" in request:
            response["id"] = request["id"]
        return response

    def _count(self, name: str, delta: int = 1) -> None:
        with self._counters_lock:
            self._counters[name] += delta

    # ----------------------------------------------------------------- #
    # Worker side
    # ----------------------------------------------------------------- #

    def _worker_loop(self) -> None:
        # The poll timeout is the shutdown latency bound: workers exit as
        # soon as the queue stays empty with the stop flag set.  There is
        # deliberately no in-queue shutdown sentinel -- a sentinel that
        # micro-batch draining consumes would have to be re-posted into a
        # queue that blocked submitters may keep full.
        while True:
            try:
                item = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            assert isinstance(item, Ticket)
            self._serve_safely(item, allow_batch=True)

    def _serve_safely(self, ticket: Ticket, allow_batch: bool) -> None:
        # Serving an "attribute" ticket may drain one incompatible
        # request from the queue (see _drain_batchmates); it is served
        # here after the original ticket fully settled -- in particular
        # after _serve_coalesced released its single-flight key, so a
        # leftover that becomes a follower can never wait on a key this
        # worker still holds (that cross-worker wait cycle is a deadlock).
        pending: Optional[Ticket] = ticket
        while pending is not None:
            current, pending = pending, None
            try:
                pending = self._serve_ticket(current, allow_batch)
            except Exception as error:
                # The loop must survive anything a request does.
                self._finish(current, self._attach_id(
                    {"ok": False,
                     "error": f"{type(error).__name__}: {error}"},
                    current.request))
            allow_batch = False

    def _finish(self, ticket: Ticket,
                response: Dict[str, object]) -> bool:
        """Answer a ticket; exactly one racing call wins, the rest no-op."""
        if not ticket._claim():
            return False
        self._release_client(ticket.parsed.client)
        if response.get("degraded"):
            self._count("degraded")
        self._count("completed")
        ticket._finish(response)
        return True

    def _finish_shutdown(self, ticket: Ticket) -> None:
        response = self._attach_id(
            {"ok": False, "rejected": "shutdown",
             "error": "the front-end closed before serving this request"},
            ticket.request)
        if self._finish(ticket, response):
            self._count("shed_queue_full")
            self.service.stats_counters.bump(shed_requests=1)

    def _remaining(self, ticket: Ticket) -> Optional[float]:
        if ticket.deadline_at is None:
            return None
        return ticket.deadline_at - time.monotonic()

    def _serve_ticket(self, ticket: Ticket,
                      allow_batch: bool) -> Optional[Ticket]:
        """Serve one ticket; returns the drained-but-incompatible
        "leftover" ticket, if any, for the caller to serve *after* every
        resource of this ticket (notably its single-flight key) is
        released."""
        remaining = self._remaining(ticket)
        if remaining is not None:
            if remaining <= 0:
                # Expired while queued: shedding now is cheaper for
                # everyone than computing an answer nobody awaits.
                self._count("shed_deadline")
                self.service.stats_counters.bump(shed_requests=1)
                self.service.record_rejection()
                self._finish(ticket, self._attach_id(
                    {"ok": False, "rejected": "deadline",
                     "error": "deadline expired while queued"},
                    ticket.request))
                return None
            # Deadline requests run alone: their best-effort partials are
            # never cached, so coalescing/batching would share nothing.
            self._finish(ticket, self.service.submit(
                ticket.request, deadline_seconds=remaining))
            return None

        if self.config.coalesce:
            return self._serve_coalesced(ticket, allow_batch)
        return self._serve_leader(ticket, allow_batch)

    def _serve_coalesced(self, ticket: Ticket,
                         allow_batch: bool) -> Optional[Ticket]:
        key = self.service.coalesce_key(ticket.parsed)
        with self._inflight_lock:
            leader_done = self._inflight.get(key)
            if leader_done is None:
                self._inflight[key] = threading.Event()
        if leader_done is not None:
            # Follower: ride on the leader's computation, then serve this
            # request's own fact-space response off the warm cache.
            leader_done.wait()
            self._count("coalesced")
            self.service.stats_counters.bump(coalesced_requests=1)
            self._finish(ticket, self.service.submit(ticket.request))
            return None
        try:
            return self._serve_leader(ticket, allow_batch)
        finally:
            # Always un-register and wake the followers -- even when the
            # computation failed, so an error can never poison the map.
            # This runs before the returned leftover is served: a leftover
            # waiting on another worker's key while this worker still held
            # its own would deadlock the moment two workers do it to each
            # other.
            with self._inflight_lock:
                event = self._inflight.pop(key)
            event.set()

    def _serve_leader(self, ticket: Ticket,
                      allow_batch: bool) -> Optional[Ticket]:
        batchmates: List[Ticket] = []
        leftover: Optional[Ticket] = None
        if allow_batch:
            batchmates, leftover = self._drain_batchmates(ticket)
        try:
            if not batchmates:
                self._finish(ticket, self.service.submit(ticket.request))
            else:
                self._serve_batch([ticket] + batchmates)
        except Exception as error:
            # service.submit/_serve_batch answer failures themselves; this
            # catch-all keeps a bug above that layer from losing both the
            # group's responses and the leftover waiting to be served.
            for member in [ticket] + batchmates:
                self._finish(member, self._attach_id(
                    {"ok": False,
                     "error": f"{type(error).__name__}: {error}"},
                    member.request))
        return leftover

    def _serve_batch(self, group: List[Ticket]) -> None:
        self._count("batches")
        self._count("batched_requests", len(group))
        if self.config.coalesce:
            # In-batch dedup is coalescing too: members beyond the first
            # of each computation identity share its work.  Count textual
            # duplicates only -- that is free, whereas computing coalesce
            # keys here would re-evaluate every member's query just for
            # accounting (attribute_many evaluates them again right
            # after).  Isomorphic-but-differently-spelled batchmates still
            # share compute through the canonical cache tiers; they just
            # surface as cache hits rather than coalesced requests.
            identities = {(member.parsed.method, member.parsed.query_text)
                          for member in group}
            duplicates = len(group) - len(identities)
            if duplicates:
                self._count("coalesced", duplicates)
                self.service.stats_counters.bump(
                    coalesced_requests=duplicates)
        try:
            # Front-end-level injection point: a raise here exercises the
            # catch-all below, which must still answer every member.
            faults.check("serve.batch")
            responses = self.service.submit_batch(
                [member.request for member in group])
            for member, response in zip(group, responses):
                self._finish(member, response)
        except Exception as error:
            # submit_batch itself degrades per-request failures to error
            # responses; this catches bugs above that layer.  Whatever
            # happened, every member still gets a response.
            for member in group:
                if not member.done():
                    self._finish(member, self._attach_id(
                        {"ok": False,
                         "error": f"{type(error).__name__}: {error}"},
                        member.request))

    def _drain_batchmates(self, ticket: Ticket
                          ) -> Tuple[List[Ticket], Optional[Ticket]]:
        """Pull queued requests that can join this ticket's engine batch.

        Only ``attribute`` requests of the same method without deadlines
        are compatible (matching :meth:`AttributionService.submit_batch`'s
        contract).  Draining stops at the first incompatible request,
        which is returned as the ``leftover`` for the caller to serve
        individually -- handing it back to the queue could block on a
        full queue, and dropping it is out of the question.
        """
        limit = self.config.batch_max - 1
        if limit <= 0 or ticket.parsed.op != "attribute":
            return [], None
        batchmates: List[Ticket] = []
        leftover: Optional[Ticket] = None
        while len(batchmates) < limit:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            assert isinstance(item, Ticket)
            if (item.parsed.op == "attribute"
                    and item.deadline_at is None
                    and item.parsed.method == ticket.parsed.method):
                batchmates.append(item)
            else:
                leftover = item
                break
        return batchmates, leftover

    # ----------------------------------------------------------------- #
    # Lifecycle and reporting
    # ----------------------------------------------------------------- #

    def close(self) -> None:
        """Drain the queue, stop the workers, flush the store.

        Every request in the queue when ``close`` starts is still served
        (workers keep draining until the queue is empty before honoring
        the stop flag); new submissions raise, and a submission that
        raced past the closed-check is settled with a ``"shutdown"``
        rejection rather than stranding its caller.  Idempotent.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        for worker in self._workers:
            worker.join()
        # A submission racing close() may have landed after the workers
        # exited; reject it rather than strand its caller (its submitter
        # may settle it concurrently -- the ticket claim arbitrates).
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            assert isinstance(item, Ticket)
            self._finish_shutdown(item)
        self.service.flush()

    def __enter__(self) -> "ServingFrontend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def stats(self) -> Dict[str, object]:
        """Front-end counters (admission, sharing, degradation) plus the
        live queue depth; the engine-side counters live in
        :meth:`AttributionService.stats`."""
        with self._counters_lock:
            counters = dict(self._counters)
        shed = {reason: counters.pop(f"shed_{reason}")
                for reason in ("queue_full", "client_budget", "deadline")}
        report: Dict[str, object] = dict(counters)
        report["shed"] = shed
        report["workers"] = self.config.workers
        report["queue_depth"] = self._queue.qsize()
        report["max_queue"] = self.config.max_queue
        report["coalesce"] = self.config.coalesce
        report["batch_max"] = self.config.batch_max
        # The arena backend micro-batches evaluate under; the matching
        # sweep/fallback counters live in the engine-side stats.
        report["kernel"] = self.service._base.kernel
        return report


def serve_jsonl_concurrent(service: AttributionService,
                           lines: Iterable[str], output: TextIO,
                           config: Optional[FrontendConfig] = None) -> bool:
    """Drive a front-end from JSON Lines, streaming responses in input
    order.

    The concurrent sibling of :func:`repro.engine.serve.serve_jsonl`:
    requests fan out over the front-end's workers, but responses are
    written in input order (clients of the file protocol correlate by
    line, not by id) -- and *incrementally*: a dedicated writer thread
    emits each response as soon as it and everything before it finished,
    so a pipe or an interactive client sees answers while later lines
    are still being read, and memory stays bounded by the hand-off
    buffer instead of growing with input length.  A full queue
    backpressures the reader instead of shedding -- a file is a patient
    client; admission *validation* and deadline semantics still apply.
    Blank lines and ``#`` comments are skipped; an unparseable line
    yields an error response.  Returns ``True`` when every served
    request succeeded.
    """
    frontend = ServingFrontend(service, config)
    # The reader -> writer hand-off carries outcomes in input order; its
    # bound is the writer's backpressure (a stalled output pauses the
    # reader once admission capacity plus this buffer are full).
    pending: "queue.Queue[object]" = queue.Queue(
        maxsize=2 * frontend.config.max_queue)
    state = {"all_ok": True, "error": None}

    def write_responses() -> None:
        while True:
            outcome = pending.get()
            if outcome is None:
                return
            if state["error"] is not None:
                continue  # keep draining so the reader never blocks
            try:
                response = (outcome if isinstance(outcome, dict)
                            else outcome.result())
                state["all_ok"] = (state["all_ok"]
                                   and bool(response.get("ok")))
                print(json.dumps(response), file=output, flush=True)
            except BaseException as error:  # surfaced after join
                state["error"] = error

    writer = threading.Thread(target=write_responses,
                              name="repro-serve-writer", daemon=True)
    writer.start()
    try:
        for line in lines:
            if state["error"] is not None:
                break  # a dead writer cannot deliver; stop reading
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                request = json.loads(text)
            except json.JSONDecodeError as error:
                service.record_malformed_line()
                pending.put({
                    "ok": False,
                    "error": f"unparseable request line: {error}"})
                continue
            pending.put(frontend.submit_nowait(request, block=True))
    finally:
        # Closing first guarantees every admitted ticket is finished, so
        # the writer's result() calls can never block indefinitely.
        frontend.close()
        pending.put(None)
        writer.join()
    if state["error"] is not None:
        raise state["error"]
    return state["all_ok"]


__all__ = [
    "FrontendConfig",
    "ServingFrontend",
    "Ticket",
    "serve_jsonl_concurrent",
]
