"""The warm-start serving loop: a long-lived attribution service.

:class:`AttributionService` is the deployment shape the engine exists
for: one process that stays up, owns warm cache tiers, and answers a
stream of attribute / rank / top-k requests against a fixed database.
Internally it keeps one :class:`~repro.engine.engine.Engine` per method
actually requested, but all of them share a single in-memory
:class:`~repro.engine.cache.LineageCache`, a single optional persistent
:class:`~repro.engine.store.CacheStore`, and a single
:class:`~repro.engine.stats.EngineStats` -- sharing is sound because
result-cache keys embed the method, epsilon and k, so entries of
different methods never collide.  The shared cache includes the
compiled-lineage artifact tier (keyed by canonical lineage alone), which
is where the service earns its keep on mixed traffic: an ``attribute``
request that compiles a d-tree makes the later ``rank``/``topk``
requests over isomorphic lineages *exact* and compilation-free, in this
process and -- through the store's artifact shards -- in every
warm-started successor.

Requests and responses are plain dicts (JSON-serializable end to end;
the ``repro serve --requests FILE`` CLI feeds them from JSON Lines)::

    {"op": "attribute", "query": "Q(X) :- R(X, Y)"}
    {"op": "attribute", "query": "...", "method": "approximate"}
    {"op": "rank",      "query": "..."}
    {"op": "topk",      "query": "...", "k": 3}
    {"op": "attribute", "query": "...", "id": 7, "client": "tenant-a",
     "deadline_ms": 250}

Every response reports ``ok`` plus either the per-answer payload (exact
values as ``"n/d"`` strings -- fact-space, mapped back from canonical
space -- alongside floats for convenience) or an ``error`` string, and
always echoes the request's ``id`` when one was given; a malformed
request never takes the loop down.  A request carrying ``deadline_ms``
gets a wall-clock compute budget: when exact compilation blows through
it the service **degrades** to a best-effort answer (one IchiBan bounds
pass over whatever partial d-tree the failed attempt left behind)
instead of erroring, flagging the response with ``degraded``/``partial``
-- see :meth:`AttributionService.submit`.  ``id``/``client`` are the
hooks the concurrent front-end (:mod:`repro.engine.frontend`) builds
its response routing and per-client admission control on; the service
itself is also directly thread-safe, so the front-end's workers drive
one shared instance.  :meth:`AttributionService.stats` reports the
shared engine counters including the per-tier hit rates (memory / store
/ compute), the answer to "is the warm start working?".
"""

from __future__ import annotations

import json
import threading
import warnings
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, TextIO, Tuple

from repro.core.adaban import ApproximationTimeout
from repro.db.database import Database
from repro.db.datalog import parse_query
from repro.db.lineage import lineage_of_answers
from repro.db.query import Query
from repro.dtree.compile import CompilationLimitReached
from repro.engine.cache import LineageCache
from repro.engine.canonical import canonicalize
from repro.engine.engine import Engine, EngineConfig
from repro.engine.logstore import StoreLockedError, resolve_store
from repro.engine.stats import EngineStats
from repro.engine.store import CacheStore
from repro.reliability import faults
from repro.reliability.errors import CircuitOpenError, TransientStoreError
from repro.reliability.resilient import wrap_store

#: Ops a request may carry.
OPS = ("attribute", "rank", "topk")

#: Attribution methods a request may select per call.
ATTRIBUTE_METHODS = ("auto", "exact", "approximate", "shapley")

#: Exceptions that mean "the compute budget ran out mid-request" -- the
#: triggers for deadline degradation (``RecursionError`` covers d-trees
#: too deep to finish even inside the raised interpreter limit).
_BUDGET_EXHAUSTED = (ApproximationTimeout, CompilationLimitReached,
                     RecursionError)

#: Exceptions that mean "the persistent tier is unavailable" -- surfaced
#: as structured ``{"ok": false, "degraded": true}`` responses (the
#: request may well be answerable once the store recovers or memory-only
#: caching warms up), never as tracebacks.
_STORE_UNAVAILABLE = (StoreLockedError, CircuitOpenError,
                      TransientStoreError)


class RequestError(ValueError):
    """A malformed service request (reported in the response, not raised
    out of the serving loop)."""


@dataclass(frozen=True)
class ParsedRequest:
    """A validated request, ready to execute.

    Produced by :meth:`AttributionService.validate_request`; the
    concurrent front-end validates at admission time (rejections must
    not wait in the queue) and executes later, so validation and
    execution are separate steps with this as the hand-off.
    """

    op: str
    query_text: str
    query: Query
    #: Attribution method for ``op="attribute"``; ``None`` for the
    #: ranking ops (they always run IchiBan).
    method: Optional[str]
    #: Top-k size for ``op="topk"``; ``None`` otherwise.
    k: Optional[int]
    #: Echoed verbatim into the response (``None`` = no id given).
    request_id: Optional[object]
    #: Client tag for per-client admission budgets (``None`` = anonymous).
    client: Optional[str]
    #: Per-request wall-clock compute budget (``None`` = unbounded).
    deadline_seconds: Optional[float]


class AttributionService:
    """A long-lived serving loop over one database and shared cache tiers.

    The service is thread-safe: request counters are lock-protected,
    engine creation is serialized, and the shared tiers
    (:class:`~repro.engine.cache.LRUCache`, the store, the
    :class:`~repro.engine.stats.EngineStats` counters) lock internally,
    so any number of threads may call :meth:`submit` concurrently --
    that is exactly what the workers of
    :class:`~repro.engine.frontend.ServingFrontend` do.

    Parameters
    ----------
    database:
        The database every request is evaluated against (fact-space).
    config:
        Base :class:`EngineConfig`.  Its ``method`` is the default for
        ``attribute`` requests (must not be a ranking method); epsilon,
        budgets, and cache sizes apply to every request.  The config's
        ``store`` is honored if ``store`` is not passed explicitly.
    store:
        Optional persistent tier shared by every method engine.
    warm_start:
        When true (and a store is present), preload the store's entries
        -- results and compilation artifacts -- into the shared
        in-memory tiers at construction, so even the very first batch
        hits memory and partial compilations resume instead of
        restarting.  The number of result entries loaded is reported by
        :meth:`stats` as ``warm_loaded``.  A store that fails to load
        (corrupt shards, permissions) degrades to a cold start with a
        ``RuntimeWarning`` instead of aborting: a serving process must
        come up even when its warm state is damaged.

    Examples
    --------
    >>> from repro import Database
    >>> db = Database()
    >>> _ = [db.add_fact("R", (i,)) for i in range(3)]
    >>> service = AttributionService(db)
    >>> response = service.submit({"op": "attribute",
    ...                            "query": "Q(X) :- R(X)"})
    >>> response["ok"]
    True
    """

    def __init__(self, database: Database,
                 config: Optional[EngineConfig] = None,
                 store: Optional[CacheStore] = None,
                 warm_start: bool = False) -> None:
        base = config or EngineConfig()
        if base.method in ("rank", "topk"):
            raise ValueError(
                "the service config's method is the default for "
                "'attribute' requests and cannot be a ranking method; "
                "rank/topk engines are created per request op"
            )
        self.database = database
        self._base = replace(base, store=None, store_backend=None, k=None)
        self.cache = LineageCache(base.cache_size, base.dtree_cache_size)
        self.stats_counters = EngineStats()
        # A path-valued config store opens its backend exactly once,
        # here, and is then shared by every method engine (per-engine
        # resolution would trip LogStore's single-writer lock).  The
        # shared handle is wrapped with the service's retry + breaker
        # policy (a no-op when both knobs are 0 or the caller passed an
        # already-wrapped store), counting into the shared stats.
        self.store = wrap_store(
            store if store is not None else resolve_store(
                base.store, base.store_backend),
            retries=base.store_retries,
            breaker_threshold=base.breaker_threshold,
            on_counter=self.stats_counters.bump)
        self._engines: Dict[str, Engine] = {}
        self._engines_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self.requests_served = 0
        self.request_errors = 0
        self.requests_degraded = 0
        self.warm_loaded = 0
        self.warm_start_failed = False
        if warm_start and self.store is not None:
            try:
                self.warm_loaded = self._engine(
                    self._base.method).load_cache(self.store)
            except Exception as error:
                # A damaged store must not keep the service down; it
                # simply starts cold and recomputes (writing fresh
                # entries back as it goes).
                self.warm_start_failed = True
                warnings.warn(
                    f"warm start failed ({type(error).__name__}: {error}); "
                    "serving cold", RuntimeWarning, stacklevel=2)

    # ----------------------------------------------------------------- #
    # Engines
    # ----------------------------------------------------------------- #

    def _engine_epsilon(self, method: str) -> Optional[float]:
        epsilon = self._base.epsilon
        if method in ("auto", "approximate") and epsilon is None:
            return 0.1
        return epsilon

    def _attach_tiers(self, engine: Engine,
                      private_stats: bool = False) -> Engine:
        """Point an engine at the service's shared cache/store tiers."""
        engine.cache = self.cache
        if not private_stats:
            engine.stats = self.stats_counters
        engine.store = self.store
        return engine

    def _engine(self, method: str) -> Engine:
        """The shared-tier engine for one method (created on first use)."""
        with self._engines_lock:
            engine = self._engines.get(method)
            if engine is None:
                engine = Engine(replace(
                    self._base, method=method,
                    epsilon=self._engine_epsilon(method)))
                # Share the tiers and the counters: keys embed (method,
                # epsilon, k), so one cache safely serves every engine.
                self._attach_tiers(engine)
                self._engines[method] = engine
        return engine

    def _scoped_engine(self, method: str,
                       deadline_seconds: float) -> Engine:
        """A throw-away engine whose compute budget is one request's deadline.

        Shares the cache/store tiers (so its work benefits everyone) but
        accumulates into a *private* stats object: the caller inspects
        what this one request did (did it degrade? was it partial?) and
        merges the counters into the shared ones afterwards.
        """
        timeout = deadline_seconds
        if self._base.timeout_seconds is not None:
            timeout = min(timeout, self._base.timeout_seconds)
        engine = Engine(replace(self._base, method=method,
                                epsilon=self._engine_epsilon(method),
                                timeout_seconds=timeout))
        return self._attach_tiers(engine, private_stats=True)

    def _best_effort_engine(self, op: str) -> Engine:
        """The degraded path: one IchiBan bounds pass, then best-so-far.

        ``max_shannon_steps=0`` lets the anytime run do exactly one
        bound evaluation over the (possibly partial) d-tree the failed
        attempt left in the shared artifact tier, then surface the
        resulting intervals as an uncertified partial -- unless the
        artifact happens to be complete, in which case the pass is an
        exact read.  Either way it is cheap: no Shannon expansion at all.
        """
        method = "topk" if op == "topk" else "rank"
        engine = Engine(replace(self._base, method=method,
                                epsilon=self._base.epsilon,
                                max_shannon_steps=0, timeout_seconds=None))
        return self._attach_tiers(engine, private_stats=True)

    # ----------------------------------------------------------------- #
    # The serving loop
    # ----------------------------------------------------------------- #

    def serve(self, requests: Iterable[Dict[str, object]]
              ) -> Iterator[Dict[str, object]]:
        """Serve a request stream lazily; yields one response per request."""
        for request in requests:
            yield self.submit(request)

    def submit(self, request: Dict[str, object],
               deadline_seconds: Optional[float] = None
               ) -> Dict[str, object]:
        """Serve one request dict; never raises on a malformed request.

        ``deadline_seconds`` overrides the request's own ``deadline_ms``
        (the front-end passes the *remaining* budget after queueing).
        When a deadline is in force the request runs on a deadline-scoped
        engine; blowing the budget degrades to a best-effort partial
        response (``degraded: true``) rather than an error.
        """
        with self._counter_lock:
            self.requests_served += 1
        try:
            parsed = self.validate_request(request)
        except RequestError as error:
            with self._counter_lock:
                self.request_errors += 1
            return self._attach_id({"ok": False, "error": str(error)},
                                   request)
        if deadline_seconds is None:
            deadline_seconds = parsed.deadline_seconds
        return self._submit_parsed(parsed, deadline_seconds)

    def submit_batch(self, requests: List[Dict[str, object]]
                     ) -> List[Dict[str, object]]:
        """Serve several ``attribute`` requests as one engine batch.

        The micro-batching hook of the concurrent front-end: all valid
        requests run through a single
        :meth:`~repro.engine.engine.Engine.attribute_many` pass, so
        isomorphic lineages *across requests* are deduplicated by the
        batch pipeline itself and the store is flushed once, not once
        per request.  All requests must be ``op="attribute"`` with one
        shared method and no deadlines (the front-end only groups such
        requests); anything else is a caller bug and raises.  Per-request
        validation errors still yield per-request error responses, and a
        computation that dies mid-batch falls back to serving the
        not-yet-answered requests individually -- one poisoned lineage
        cannot take down its batchmates.  Responses come back in request
        order, one per request, always.
        """
        responses: List[Optional[Dict[str, object]]] = [None] * len(requests)
        valid: List[Tuple[int, ParsedRequest]] = []
        method: Optional[str] = None
        for index, request in enumerate(requests):
            with self._counter_lock:
                self.requests_served += 1
            try:
                parsed = self.validate_request(request)
            except RequestError as error:
                with self._counter_lock:
                    self.request_errors += 1
                responses[index] = self._attach_id(
                    {"ok": False, "error": str(error)}, request)
                continue
            if parsed.op != "attribute":
                raise ValueError(
                    "submit_batch serves 'attribute' requests only; got "
                    f"op {parsed.op!r}")
            if parsed.deadline_seconds is not None:
                raise ValueError(
                    "submit_batch requests must not carry deadlines")
            if method is None:
                method = parsed.method
            elif parsed.method != method:
                raise ValueError(
                    "submit_batch requests must share one method; got "
                    f"{method!r} and {parsed.method!r}")
            valid.append((index, parsed))
        if valid:
            engine = self._engine(method or self._base.method)
            queries = [parsed.query for _, parsed in valid]
            try:
                # Inside the try on purpose: an injected mid-batch fault
                # takes the same recovery path as a real one -- the
                # not-yet-answered requests are served individually below.
                faults.check("serve.batch")
                for (index, parsed), (_, results) in zip(
                        valid, engine.attribute_many(queries,
                                                     self.database)):
                    responses[index] = self._attach_response_id(
                        self._attribute_response(parsed, results), parsed)
            except Exception:
                for index, parsed in valid:
                    if responses[index] is None:
                        responses[index] = self._submit_parsed(parsed, None)
        return responses  # type: ignore[return-value]

    def _submit_parsed(self, parsed: ParsedRequest,
                       deadline_seconds: Optional[float]
                       ) -> Dict[str, object]:
        """Execute an already-validated request; never raises."""
        try:
            response = self._execute(parsed, deadline_seconds)
        except RequestError as error:
            with self._counter_lock:
                self.request_errors += 1
            response = {"ok": False, "error": str(error)}
        except _STORE_UNAVAILABLE as error:
            # The persistent tier is locked, tripped, or mid-outage; the
            # request failed for infrastructure reasons, not because it
            # was bad.  Tell the client so, structurally.
            with self._counter_lock:
                self.request_errors += 1
                self.requests_degraded += 1
            response = {"ok": False, "degraded": True,
                        "error": f"store unavailable "
                                 f"({type(error).__name__}: {error})"}
        except Exception as error:  # serving loop must survive anything
            with self._counter_lock:
                self.request_errors += 1
            response = {"ok": False,
                        "error": f"{type(error).__name__}: {error}"}
        return self._attach_response_id(response, parsed)

    @staticmethod
    def _attach_id(response: Dict[str, object],
                   request: object) -> Dict[str, object]:
        """Echo the request's ``id`` into the response (even on errors --
        a client multiplexing over one connection must always be able to
        route the response back to its request)."""
        if isinstance(request, dict) and "id" in request:
            response["id"] = request["id"]
        return response

    @staticmethod
    def _attach_response_id(response: Dict[str, object],
                            parsed: ParsedRequest) -> Dict[str, object]:
        if parsed.request_id is not None:
            response["id"] = parsed.request_id
        return response

    # ----------------------------------------------------------------- #
    # Validation
    # ----------------------------------------------------------------- #

    def validate_request(self, request: object) -> ParsedRequest:
        """Validate one request dict into a :class:`ParsedRequest`.

        Raises :class:`RequestError` (with a client-presentable message)
        on any malformation.  Public because the concurrent front-end
        validates at admission time: a request that can never succeed is
        rejected before it occupies a queue slot.
        """
        if not isinstance(request, dict):
            raise RequestError(f"request must be an object, got "
                               f"{type(request).__name__}")
        op = request.get("op")
        if op not in OPS:
            raise RequestError(f"unknown op {op!r}; expected one of {OPS}")
        query_text = request.get("query")
        if not isinstance(query_text, str) or not query_text.strip():
            raise RequestError("request needs a non-empty 'query' string")
        try:
            query = parse_query(query_text)
        except Exception as error:
            raise RequestError(f"unparseable query: {error}") from error

        client = request.get("client")
        if client is not None and not isinstance(client, str):
            raise RequestError("'client' must be a string")
        deadline_seconds = self._validate_deadline(request)

        if op == "attribute":
            if "k" in request:
                raise RequestError(
                    "op 'attribute' takes no k; use op 'topk' for a "
                    "bounded ranking")
            method = request.get("method", self._base.method)
            if method not in ATTRIBUTE_METHODS:
                raise RequestError(
                    f"unknown method {method!r}; expected one of "
                    f"{ATTRIBUTE_METHODS}")
            return ParsedRequest(op=op, query_text=query_text, query=query,
                                 method=str(method), k=None,
                                 request_id=request.get("id"),
                                 client=client,
                                 deadline_seconds=deadline_seconds)
        if "method" in request:
            raise RequestError(
                f"op {op!r} always runs IchiBan and takes no method; "
                "the method field only applies to op 'attribute'")
        if op == "topk":
            k = request.get("k")
            if not isinstance(k, int) or isinstance(k, bool) or k < 1:
                raise RequestError("op 'topk' needs an integer k >= 1")
        else:
            if "k" in request:
                raise RequestError(
                    "op 'rank' returns the full ranking and takes no k; "
                    "use op 'topk' to bound it")
            k = None
        return ParsedRequest(op=op, query_text=query_text, query=query,
                             method=None, k=k,
                             request_id=request.get("id"), client=client,
                             deadline_seconds=deadline_seconds)

    @staticmethod
    def _validate_deadline(request: Dict[str, object]) -> Optional[float]:
        if "deadline_ms" not in request:
            return None
        deadline_ms = request["deadline_ms"]
        if (not isinstance(deadline_ms, (int, float))
                or isinstance(deadline_ms, bool) or deadline_ms <= 0):
            raise RequestError("'deadline_ms' must be a positive number")
        return float(deadline_ms) / 1000.0

    def coalesce_key(self, parsed: ParsedRequest) -> Tuple[object, ...]:
        """Hashable identity of the computation a request would trigger.

        Two requests with equal coalesce keys ask for exactly the same
        set of result-cache entries -- the op, the method configuration,
        and the WL-canonical keys of every answer's lineage -- so the
        front-end lets the second ride on the first's computation
        (single-flight) regardless of how differently the queries are
        *spelled*: isomorphic lineages over differently-named relations
        coalesce, textually identical queries under different methods do
        not.  Evaluating the query here is the cheap pipeline stage;
        the expensive stage (compilation) is exactly what coalescing
        avoids repeating.
        """
        if parsed.op == "attribute":
            method = parsed.method or self._base.method
        else:
            method = "topk" if parsed.op == "topk" else "rank"
        epsilon = self._engine_epsilon(method)
        answers = lineage_of_answers(parsed.query, self.database,
                                     domain=self._base.domain)
        keys = {
            LineageCache.result_key(canonicalize(answer.lineage).key,
                                    method, epsilon, parsed.k)
            for answer in answers
        }
        if not keys:
            # Zero-answer queries share no computation worth coalescing;
            # key them by text so unrelated empty queries stay apart.
            return (parsed.op, method, parsed.k, parsed.query_text)
        return (parsed.op, method, parsed.k, tuple(sorted(keys)))

    # ----------------------------------------------------------------- #
    # Execution
    # ----------------------------------------------------------------- #

    def _execute(self, parsed: ParsedRequest,
                 deadline_seconds: Optional[float]) -> Dict[str, object]:
        faults.check("serve.request")
        if deadline_seconds is None:
            if parsed.op == "attribute":
                engine = self._engine(parsed.method or self._base.method)
            else:
                engine = self._engine("topk" if parsed.op == "topk"
                                      else "rank")
            return self._run_op(parsed, engine)
        return self._execute_with_deadline(parsed, deadline_seconds)

    def _execute_with_deadline(self, parsed: ParsedRequest,
                               deadline_seconds: float
                               ) -> Dict[str, object]:
        """Run under a wall-clock budget; degrade instead of erroring.

        The scoped engine shares the cache/store tiers, so even a failed
        attempt leaves its partial d-tree behind -- which is precisely
        what the best-effort pass then reads its bounds off.
        """
        if parsed.op == "attribute":
            method = parsed.method or self._base.method
        else:
            method = "topk" if parsed.op == "topk" else "rank"
        engine = self._scoped_engine(method, deadline_seconds)
        try:
            response = self._run_op(parsed, engine)
        except _BUDGET_EXHAUSTED:
            self.stats_counters.merge_from(engine.stats)
            return self._degrade(parsed)
        self.stats_counters.merge_from(engine.stats)
        if engine.stats.partial_results:
            # The ranking methods degrade internally (best-so-far
            # intervals instead of raising); surface that the same way.
            response["degraded"] = True
            response["partial"] = True
            with self._counter_lock:
                self.requests_degraded += 1
        return response

    def _degrade(self, parsed: ParsedRequest) -> Dict[str, object]:
        """Best-effort answer after the deadline budget was exhausted."""
        engine = self._best_effort_engine(parsed.op)
        try:
            if parsed.op == "attribute":
                results = engine.attribute(parsed.query, self.database)
                response = self._attribute_response(parsed, results)
            else:
                response = self._rank_response(
                    parsed, engine.rank(parsed.query, self.database,
                                        k=parsed.k))
        finally:
            self.stats_counters.merge_from(engine.stats)
        response["degraded"] = True
        response["partial"] = engine.stats.partial_results > 0
        with self._counter_lock:
            self.requests_degraded += 1
        return response

    def _run_op(self, parsed: ParsedRequest,
                engine: Engine) -> Dict[str, object]:
        if parsed.op == "attribute":
            return self._attribute_response(
                parsed, engine.attribute(parsed.query, self.database))
        return self._rank_response(
            parsed, engine.rank(parsed.query, self.database, k=parsed.k))

    def _attribute_response(self, parsed: ParsedRequest,
                            results) -> Dict[str, object]:
        answers: List[Dict[str, object]] = []
        for result in results:
            answers.append({
                "answer": list(result.answer),
                "attributions": [
                    {
                        "fact": str(attribution.fact),
                        "value": str(attribution.value),
                        "float": float(attribution.value),
                        "lower": attribution.lower,
                        "upper": attribution.upper,
                    }
                    for attribution in result.attributions
                ],
            })
        return {"ok": True, "op": parsed.op, "query": parsed.query_text,
                "method": parsed.method, "answers": answers}

    def _rank_response(self, parsed: ParsedRequest,
                       rankings) -> Dict[str, object]:
        answers: List[Dict[str, object]] = []
        for answer_values, entries in rankings:
            answers.append({
                "answer": list(answer_values),
                "ranking": [
                    {
                        "fact": str(fact),
                        "estimate": float(entry.estimate),
                        "lower": entry.lower,
                        "upper": entry.upper,
                    }
                    for fact, entry in entries
                ],
            })
        response: Dict[str, object] = {"ok": True, "op": parsed.op,
                                       "query": parsed.query_text,
                                       "answers": answers}
        if parsed.k is not None:
            response["k"] = parsed.k
        return response

    # ----------------------------------------------------------------- #
    # Cache management and reporting
    # ----------------------------------------------------------------- #

    def record_malformed_line(self) -> None:
        """Account for an input line that never became a request
        (unparseable JSON); the JSONL loops call this so the served/error
        counters cover every line a client sent, not only valid ones."""
        with self._counter_lock:
            self.requests_served += 1
            self.request_errors += 1

    def record_rejection(self) -> None:
        """Account for a request answered at admission time (validation
        failure or shed) without ever running.  The concurrent front-end
        calls this so ``requests_served`` / ``request_errors`` cover every
        response a client received, whether the serial loop or the
        front-end produced it."""
        with self._counter_lock:
            self.requests_served += 1
            self.request_errors += 1

    def save_cache(self, store: Optional[CacheStore] = None) -> int:
        """Persist the shared warm memory tier (see :meth:`Engine.save_cache`)."""
        return self._engine(self._base.method).save_cache(store)

    def load_cache(self, store: Optional[CacheStore] = None) -> int:
        """Warm the shared memory tier from a store (see :meth:`Engine.load_cache`)."""
        return self._engine(self._base.method).load_cache(store)

    def flush(self) -> None:
        """Make buffered store writes durable (no-op without a store)."""
        if self.store is not None:
            self.store.flush()

    def stats(self) -> Dict[str, object]:
        """Serving-loop report: engine counters, tier hit rates, store state."""
        report: Dict[str, object] = dict(self.stats_counters.as_dict())
        report["requests_served"] = self.requests_served
        report["request_errors"] = self.request_errors
        report["requests_degraded"] = self.requests_degraded
        report["warm_loaded"] = self.warm_loaded
        with self._engines_lock:
            report["engines"] = sorted(self._engines)
        report["store"] = (self.store.stats()
                          if self.store is not None else None)
        return report


def serve_jsonl(service: AttributionService, lines: Iterable[str],
                output: TextIO) -> bool:
    """Drive a service from JSON Lines, writing one JSON response per line.

    Blank lines and ``#`` comment lines are skipped.  A line that is not
    valid JSON produces an error response (and does not stop the loop).
    Returns ``True`` when every served request succeeded.
    """
    all_ok = True
    for line in lines:
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        try:
            request = json.loads(text)
        except json.JSONDecodeError as error:
            service.record_malformed_line()
            response: Dict[str, object] = {
                "ok": False, "error": f"unparseable request line: {error}"}
        else:
            response = service.submit(request)
        all_ok = all_ok and bool(response.get("ok"))
        print(json.dumps(response), file=output)
    service.flush()
    return all_ok


__all__ = [
    "ATTRIBUTE_METHODS",
    "OPS",
    "AttributionService",
    "ParsedRequest",
    "RequestError",
    "serve_jsonl",
]
