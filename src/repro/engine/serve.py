"""The warm-start serving loop: a long-lived attribution service.

:class:`AttributionService` is the deployment shape the engine exists
for: one process that stays up, owns warm cache tiers, and answers a
stream of attribute / rank / top-k requests against a fixed database.
Internally it keeps one :class:`~repro.engine.engine.Engine` per method
actually requested, but all of them share a single in-memory
:class:`~repro.engine.cache.LineageCache`, a single optional persistent
:class:`~repro.engine.store.CacheStore`, and a single
:class:`~repro.engine.stats.EngineStats` -- sharing is sound because
result-cache keys embed the method, epsilon and k, so entries of
different methods never collide.  The shared cache includes the
compiled-lineage artifact tier (keyed by canonical lineage alone), which
is where the service earns its keep on mixed traffic: an ``attribute``
request that compiles a d-tree makes the later ``rank``/``topk``
requests over isomorphic lineages *exact* and compilation-free, in this
process and -- through the store's artifact shards -- in every
warm-started successor.

Requests and responses are plain dicts (JSON-serializable end to end;
the ``repro serve --requests FILE`` CLI feeds them from JSON Lines)::

    {"op": "attribute", "query": "Q(X) :- R(X, Y)"}
    {"op": "attribute", "query": "...", "method": "approximate"}
    {"op": "rank",      "query": "..."}
    {"op": "topk",      "query": "...", "k": 3}

Every response reports ``ok`` plus either the per-answer payload (exact
values as ``"n/d"`` strings -- fact-space, mapped back from canonical
space -- alongside floats for convenience) or an ``error`` string; a
malformed request never takes the loop down.  :meth:`AttributionService.stats`
reports the shared engine counters including the per-tier hit rates
(memory / store / compute), the answer to "is the warm start working?".
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Dict, Iterable, Iterator, List, Optional, TextIO

from repro.db.database import Database
from repro.db.datalog import parse_query
from repro.engine.cache import LineageCache
from repro.engine.engine import Engine, EngineConfig
from repro.engine.stats import EngineStats
from repro.engine.store import CacheStore

#: Ops a request may carry.
OPS = ("attribute", "rank", "topk")

#: Attribution methods a request may select per call.
ATTRIBUTE_METHODS = ("auto", "exact", "approximate", "shapley")


class RequestError(ValueError):
    """A malformed service request (reported in the response, not raised
    out of the serving loop)."""


class AttributionService:
    """A long-lived serving loop over one database and shared cache tiers.

    Parameters
    ----------
    database:
        The database every request is evaluated against (fact-space).
    config:
        Base :class:`EngineConfig`.  Its ``method`` is the default for
        ``attribute`` requests (must not be a ranking method); epsilon,
        budgets, and cache sizes apply to every request.  The config's
        ``store`` is honored if ``store`` is not passed explicitly.
    store:
        Optional persistent tier shared by every method engine.
    warm_start:
        When true (and a store is present), preload the store's entries
        -- results and compilation artifacts -- into the shared
        in-memory tiers at construction, so even the very first batch
        hits memory and partial compilations resume instead of
        restarting.  The number of result entries loaded is reported by
        :meth:`stats` as ``warm_loaded``.

    Examples
    --------
    >>> from repro import Database
    >>> db = Database()
    >>> _ = [db.add_fact("R", (i,)) for i in range(3)]
    >>> service = AttributionService(db)
    >>> response = service.submit({"op": "attribute",
    ...                            "query": "Q(X) :- R(X)"})
    >>> response["ok"]
    True
    """

    def __init__(self, database: Database,
                 config: Optional[EngineConfig] = None,
                 store: Optional[CacheStore] = None,
                 warm_start: bool = False) -> None:
        base = config or EngineConfig()
        if base.method in ("rank", "topk"):
            raise ValueError(
                "the service config's method is the default for "
                "'attribute' requests and cannot be a ranking method; "
                "rank/topk engines are created per request op"
            )
        self.database = database
        self.store = store if store is not None else base.store
        self._base = replace(base, store=None, k=None)
        self.cache = LineageCache(base.cache_size, base.dtree_cache_size)
        self.stats_counters = EngineStats()
        self._engines: Dict[str, Engine] = {}
        self.requests_served = 0
        self.request_errors = 0
        self.warm_loaded = 0
        if warm_start and self.store is not None:
            self.warm_loaded = self._engine(self._base.method).load_cache(
                self.store)

    # ----------------------------------------------------------------- #
    # Engines
    # ----------------------------------------------------------------- #

    def _engine(self, method: str) -> Engine:
        """The shared-tier engine for one method (created on first use)."""
        engine = self._engines.get(method)
        if engine is None:
            epsilon = self._base.epsilon
            if method in ("auto", "approximate") and epsilon is None:
                epsilon = 0.1
            engine = Engine(replace(self._base, method=method,
                                    epsilon=epsilon))
            # Share the tiers and the counters: keys embed (method,
            # epsilon, k), so one cache safely serves every engine.
            engine.cache = self.cache
            engine.stats = self.stats_counters
            engine.store = self.store
            self._engines[method] = engine
        return engine

    # ----------------------------------------------------------------- #
    # The serving loop
    # ----------------------------------------------------------------- #

    def serve(self, requests: Iterable[Dict[str, object]]
              ) -> Iterator[Dict[str, object]]:
        """Serve a request stream lazily; yields one response per request."""
        for request in requests:
            yield self.submit(request)

    def submit(self, request: Dict[str, object]) -> Dict[str, object]:
        """Serve one request dict; never raises on a malformed request."""
        self.requests_served += 1
        try:
            return self._dispatch(request)
        except RequestError as error:
            self.request_errors += 1
            return {"ok": False, "error": str(error)}
        except Exception as error:  # serving loop must survive anything
            self.request_errors += 1
            return {"ok": False,
                    "error": f"{type(error).__name__}: {error}"}

    def _dispatch(self, request: Dict[str, object]) -> Dict[str, object]:
        if not isinstance(request, dict):
            raise RequestError(f"request must be an object, got "
                               f"{type(request).__name__}")
        op = request.get("op")
        if op not in OPS:
            raise RequestError(f"unknown op {op!r}; expected one of {OPS}")
        query_text = request.get("query")
        if not isinstance(query_text, str) or not query_text.strip():
            raise RequestError("request needs a non-empty 'query' string")
        try:
            query = parse_query(query_text)
        except Exception as error:
            raise RequestError(f"unparseable query: {error}") from error

        if op == "attribute":
            if "k" in request:
                raise RequestError(
                    "op 'attribute' takes no k; use op 'topk' for a "
                    "bounded ranking")
            method = request.get("method", self._base.method)
            if method not in ATTRIBUTE_METHODS:
                raise RequestError(
                    f"unknown method {method!r}; expected one of "
                    f"{ATTRIBUTE_METHODS}")
            return self._attribute(op, query_text, str(method), query)
        if "method" in request:
            raise RequestError(
                f"op {op!r} always runs IchiBan and takes no method; "
                "the method field only applies to op 'attribute'")
        if op == "topk":
            k = request.get("k")
            if not isinstance(k, int) or isinstance(k, bool) or k < 1:
                raise RequestError("op 'topk' needs an integer k >= 1")
        else:
            if "k" in request:
                raise RequestError(
                    "op 'rank' returns the full ranking and takes no k; "
                    "use op 'topk' to bound it")
            k = None
        return self._rank(op, query_text, query, k)

    def _attribute(self, op: str, query_text: str, method: str,
                   query) -> Dict[str, object]:
        results = self._engine(method).attribute(query, self.database)
        answers: List[Dict[str, object]] = []
        for result in results:
            answers.append({
                "answer": list(result.answer),
                "attributions": [
                    {
                        "fact": str(attribution.fact),
                        "value": str(attribution.value),
                        "float": float(attribution.value),
                        "lower": attribution.lower,
                        "upper": attribution.upper,
                    }
                    for attribution in result.attributions
                ],
            })
        return {"ok": True, "op": op, "query": query_text,
                "method": method, "answers": answers}

    def _rank(self, op: str, query_text: str, query,
              k: Optional[int]) -> Dict[str, object]:
        engine = self._engine("topk" if op == "topk" else "rank")
        rankings = engine.rank(query, self.database, k=k)
        answers: List[Dict[str, object]] = []
        for answer_values, entries in rankings:
            answers.append({
                "answer": list(answer_values),
                "ranking": [
                    {
                        "fact": str(fact),
                        "estimate": float(entry.estimate),
                        "lower": entry.lower,
                        "upper": entry.upper,
                    }
                    for fact, entry in entries
                ],
            })
        response: Dict[str, object] = {"ok": True, "op": op,
                                       "query": query_text,
                                       "answers": answers}
        if k is not None:
            response["k"] = k
        return response

    # ----------------------------------------------------------------- #
    # Cache management and reporting
    # ----------------------------------------------------------------- #

    def save_cache(self, store: Optional[CacheStore] = None) -> int:
        """Persist the shared warm memory tier (see :meth:`Engine.save_cache`)."""
        return self._engine(self._base.method).save_cache(store)

    def load_cache(self, store: Optional[CacheStore] = None) -> int:
        """Warm the shared memory tier from a store (see :meth:`Engine.load_cache`)."""
        return self._engine(self._base.method).load_cache(store)

    def flush(self) -> None:
        """Make buffered store writes durable (no-op without a store)."""
        if self.store is not None:
            self.store.flush()

    def stats(self) -> Dict[str, object]:
        """Serving-loop report: engine counters, tier hit rates, store state."""
        report: Dict[str, object] = dict(self.stats_counters.as_dict())
        report["requests_served"] = self.requests_served
        report["request_errors"] = self.request_errors
        report["warm_loaded"] = self.warm_loaded
        report["engines"] = sorted(self._engines)
        report["store"] = (self.store.stats()
                          if self.store is not None else None)
        return report


def serve_jsonl(service: AttributionService, lines: Iterable[str],
                output: TextIO) -> bool:
    """Drive a service from JSON Lines, writing one JSON response per line.

    Blank lines and ``#`` comment lines are skipped.  A line that is not
    valid JSON produces an error response (and does not stop the loop).
    Returns ``True`` when every served request succeeded.
    """
    all_ok = True
    for line in lines:
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        try:
            request = json.loads(text)
        except json.JSONDecodeError as error:
            service.requests_served += 1
            service.request_errors += 1
            response: Dict[str, object] = {
                "ok": False, "error": f"unparseable request line: {error}"}
        else:
            response = service.submit(request)
        all_ok = all_ok and bool(response.get("ok"))
        print(json.dumps(response), file=output)
    service.flush()
    return all_ok


__all__ = [
    "ATTRIBUTE_METHODS",
    "OPS",
    "AttributionService",
    "RequestError",
    "serve_jsonl",
]
