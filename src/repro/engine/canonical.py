"""Variable-order-independent canonical forms of lineage DNFs.

Two answer tuples -- often of the *same* query, sometimes of different
queries over the same schema -- frequently have lineages that are identical
up to a renaming of the fact variables: the same join shape instantiated
with different facts.  The d-tree compiled for one of them, and the Banzhaf
values computed on it, are therefore reusable for the other once the
variables are mapped across.  This module computes a canonical renaming so
that such isomorphic lineages hash to the same cache key.

The renaming is found by Weisfeiler-Leman-style color refinement on the
bipartite variable/clause incidence structure: every variable starts with a
signature built from its occurrence profile (how many clauses it appears
in, and their sizes), and signatures are iteratively refined with the
multiset of signatures of the clauses containing the variable.  Variables
are then ranked by their final signature.

Correctness does not depend on the refinement being a perfect graph
canonization: the cache key is the *full canonical clause set*, so two
lineages share a key only if the renamings exhibit an actual isomorphism
between them.  Imperfect tie-breaking (non-automorphic variables sharing a
signature) can at worst miss a cache hit, never produce a wrong one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.boolean.dnf import DNF, kernel_enabled

#: A canonical cache key: the domain size plus the canonically renamed,
#: deterministically ordered clause set.
CanonicalKey = Tuple[int, Tuple[Tuple[int, ...], ...]]


@dataclass(frozen=True)
class CanonicalLineage:
    """A lineage DNF together with its canonical renaming.

    Attributes
    ----------
    key:
        Hashable canonical form: ``(domain size, sorted canonical clauses)``.
        Equal keys imply isomorphic lineages (and vice versa up to the
        refinement's tie-breaking precision).
    dnf:
        The lineage rewritten over the canonical variables ``0..n-1``.
    to_canonical:
        Mapping from original variable ids to canonical ids.
    from_canonical:
        The inverse mapping, used to translate cached results back to the
        facts of a concrete answer.
    """

    key: CanonicalKey
    dnf: DNF
    to_canonical: Dict[int, int]
    from_canonical: Dict[int, int]


def _dense_colors(signatures: Dict[int, tuple]) -> Dict[int, int]:
    """Re-index signature tuples as dense integer colors.

    Ids are assigned in sorted-signature order, so they are invariant under
    variable renaming (the sort compares signature *values*, which are
    themselves built from colors assigned the same way).
    """
    ranking = {signature: index
               for index, signature in enumerate(sorted(set(signatures.values())))}
    return {variable: ranking[signature]
            for variable, signature in signatures.items()}


def _initial_colors(function: DNF) -> Dict[int, int]:
    """Occurrence-profile colors: (#clauses containing v, their sizes)."""
    profile: Dict[int, list] = {v: [] for v in function.domain}
    for clause in function.clauses:
        size = len(clause)
        for variable in clause:
            profile[variable].append(size)
    return _dense_colors({
        variable: (len(sizes), tuple(sorted(sizes)))
        for variable, sizes in profile.items()
    })


def _refine(function: DNF, colors: Dict[int, int]) -> Dict[int, int]:
    """One Weisfeiler-Leman round over the variable/clause incidence graph."""
    incident: Dict[int, list] = {v: [] for v in function.domain}
    for clause in function.clauses:
        clause_color = tuple(sorted(colors[v] for v in clause))
        for variable in clause:
            incident[variable].append(clause_color)
    return _dense_colors({
        variable: (colors[variable], tuple(sorted(incident[variable])))
        for variable in function.domain
    })


def canonicalize(function: DNF, max_rounds: int = 4) -> CanonicalLineage:
    """Compute the canonical form of a lineage DNF.

    Parameters
    ----------
    function:
        Any positive DNF (typically an answer lineage).
    max_rounds:
        Cap on color-refinement rounds; refinement also stops early once the
        number of distinct colors stabilizes.  A handful of rounds
        distinguishes everything that matters for the join shapes produced
        by UCQ lineage.
    """
    colors = _initial_colors(function)
    distinct = len(set(colors.values()))
    for _ in range(max_rounds):
        if distinct == len(colors):
            break
        refined = _refine(function, colors)
        refined_distinct = len(set(refined.values()))
        if refined_distinct == distinct:
            break
        colors, distinct = refined, refined_distinct

    # Rank variables by color; ties broken by original id.  Tie-breaking by
    # id is only reached for variables the refinement could not separate,
    # where any assignment yields the same canonical clause set whenever the
    # variables are genuinely interchangeable.
    ordered = sorted(function.domain, key=lambda v: (colors[v], v))
    to_canonical = {variable: index for index, variable in enumerate(ordered)}
    from_canonical = {index: variable for variable, index in to_canonical.items()}

    canonical_clauses = tuple(sorted(
        tuple(sorted(to_canonical[v] for v in clause))
        for clause in function.clauses
    ))
    key: CanonicalKey = (function.num_variables(), canonical_clauses)
    if kernel_enabled():
        # The canonical renaming *is* the kernel's dense remap: canonical
        # variable i is bit i of the sorted 0..n-1 order, so the clause
        # masks are built directly and the frozenset view stays lazy.
        masks = []
        for clause in canonical_clauses:
            mask = 0
            for variable in clause:
                mask |= 1 << variable
            masks.append(mask)
        canonical_dnf = DNF._from_kernel(
            masks, tuple(range(function.num_variables())))
    else:
        canonical_dnf = DNF(canonical_clauses,
                            domain=range(function.num_variables()))
    return CanonicalLineage(key=key, dnf=canonical_dnf,
                            to_canonical=to_canonical,
                            from_canonical=from_canonical)
