"""LRU cache of attribution results keyed by canonical lineage.

The cache stores the *outcome* of attributing one canonical lineage with one
method configuration: the per-variable values (in canonical variable space),
the optional bounds, and which method actually produced them (relevant for
``auto``, where the engine may have fallen back from ExaBan to AdaBan, and
for the ranking methods, where a cached complete d-tree yields an exact
result).  Ranking entries store the full per-variable interval map, so one
entry serves any downstream ranking or top-k read.
Because entries live in canonical space they are shared by every answer --
of any query -- whose lineage is isomorphic.

Compiled d-trees live in a third, method-independent tier: the
compiled-lineage **artifact** cache (:mod:`repro.engine.artifact`), keyed
by canonical lineage *alone* — no method, no epsilon, no k — because a
d-tree is a function of the lineage and nothing else.  Complete and
partial (resumable) artifacts both live there; since they are exactly
serializable they also flow through the persistent store tier, so
compilation survives process restarts exactly like results do.

Since the store tier (:mod:`repro.engine.store`) this cache is the *first*
of two result tiers: the engine falls through memory -> store -> compute,
promoting store hits back into this LRU, and :meth:`LRUCache.snapshot`
exists so a warm memory tier can be persisted wholesale (``repro cache
save``).  Entries here and in any store share the same :data:`ResultKey`
and the same canonical variable space.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Generic, Hashable, Optional, Tuple, TypeVar, Union

from repro.engine.canonical import CanonicalKey

#: Cache key of a result: canonical lineage plus the method configuration
#: that produced it (epsilon for every epsilon-dependent method, k for
#: top-k).  The epsilon slot carries the *canonical* exact encoding
#: produced by :func:`canonical_epsilon` — an exact ``Fraction`` — never
#: a raw float, so equivalent configurations can neither split nor alias
#: entries across tiers or processes.
ResultKey = Tuple[CanonicalKey, str, Optional[Fraction], Optional[int]]


def canonical_epsilon(epsilon: Union[float, int, Fraction, None]
                      ) -> Optional[Fraction]:
    """One exact canonical encoding of an epsilon (``None`` passes through).

    Floats are expanded to their exact binary value (``Fraction(0.1)``,
    not the decimal 1/10), so the encoding is lossless and two epsilons
    key the same entry iff they denote the same number — regardless of
    which numeric type, process, or tier produced them.  Python's
    cross-type numeric hashing makes the ``Fraction`` hash/compare equal
    to the float it came from, so canonical keys interoperate with
    float-carrying callers.
    """
    if epsilon is None:
        return None
    return Fraction(epsilon)

#: Methods whose cached values depend on epsilon: ``approximate`` outright,
#: ``auto`` through its AdaBan fallback (each Engine pins one epsilon, but
#: the key must not rely on that), ``rank``/``topk`` through their anytime
#: stopping rules.
_EPSILON_METHODS = ("approximate", "auto", "rank", "topk")

_V = TypeVar("_V")


@dataclass(frozen=True)
class CachedAttribution:
    """One memoized attribution, in canonical variable space.

    Attributes
    ----------
    method_used:
        The algorithm that produced the values (``"exact"``,
        ``"approximate"`` or ``"shapley"``); under ``auto`` this records
        which side of the fallback ran.
    values:
        Canonical variable id -> attribution value.
    bounds:
        Canonical variable id -> (lower, upper) certificate, present for
        exact (degenerate interval) and approximate results.
    """

    method_used: str
    values: Dict[int, Fraction]
    bounds: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: ``False`` for best-so-far ranking results whose anytime run exhausted
    #: its budget; such entries are never written to the cache.
    converged: bool = True


class LRUCache(Generic[_V]):
    """A minimal ordered-dict LRU with explicit capacity.

    Individual operations are lock-protected, so concurrent readers and
    writers (e.g. threads sharing one engine through ``attribute_facts``)
    can never corrupt the structure; the worst cross-thread outcome is a
    duplicated computation whose identical result is stored twice.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("cache capacity must be positive")
        self._max_entries = max_entries
        self._entries: "OrderedDict[Hashable, _V]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[_V]:
        """Return the cached value and refresh its recency (``None`` on miss)."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                return None
            self._entries.move_to_end(key)
            return value

    def put(self, key: Hashable, value: _V) -> None:
        """Insert (or refresh) an entry, evicting the least recently used."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop all entries."""
        with self._lock:
            self._entries.clear()

    def snapshot(self):
        """List of ``(key, value)`` pairs, least recently used first.

        A point-in-time copy: safe to iterate while other threads keep
        using the cache.  Feeding the pairs into another cache in order
        preserves the recency ranking (the most recently used entry is
        inserted last).
        """
        with self._lock:
            return list(self._entries.items())


class LineageCache:
    """The engine's two-level memo: results (primary) and compiled artifacts.

    Result entries are small (per-variable Fractions keyed by tuples of int
    tuples), so the default of 4096 is only a few megabytes for typical
    workload lineages.  Compiled-lineage artifacts
    (:class:`~repro.engine.artifact.CompiledLineage`: a complete d-tree,
    or a partial one plus its resumable frontier) can be arbitrarily
    large object graphs, so they get a much smaller independent bound
    (``artifact_entries``).  Artifacts are keyed by
    :data:`~repro.engine.canonical.CanonicalKey` alone — one compilation
    serves every method, epsilon and k over that lineage.
    """

    def __init__(self, max_entries: int = 4096,
                 artifact_entries: int = 256) -> None:
        self.results: LRUCache[CachedAttribution] = LRUCache(max_entries)
        self.artifacts: LRUCache[object] = LRUCache(artifact_entries)

    @staticmethod
    def result_key(key: CanonicalKey, method: str,
                   epsilon: Union[float, Fraction, None],
                   k: Optional[int] = None) -> ResultKey:
        """Build the result-cache key.

        Epsilon is kept for every epsilon-dependent method -- including
        ``auto``, whose fallback values depend on it -- and dropped for the
        exact methods (``exact``/``shapley``), whose results never do; it
        is normalized through :func:`canonical_epsilon` so float-repr
        drift can never split or alias equivalent entries.  ``k`` is kept
        for ``topk`` only.

        Tier-suffixed methods (``"rank-float"``, ``"topk-float"``) keep
        their base method's epsilon/k slots — the suffix itself stays in
        the key, so a float-tier result can never serve an exact-tier
        request or vice versa.
        """
        base = method.split("-", 1)[0]
        return (key, method,
                canonical_epsilon(epsilon) if base in _EPSILON_METHODS
                else None,
                k if base == "topk" else None)

    def clear(self) -> None:
        """Drop both cache levels."""
        self.results.clear()
        self.artifacts.clear()
