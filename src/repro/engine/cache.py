"""LRU cache of attribution results keyed by canonical lineage.

The cache stores the *outcome* of attributing one canonical lineage with one
method configuration: the per-variable values (in canonical variable space),
the optional bounds, and which method actually produced them (relevant for
``auto``, where the engine may have fallen back from ExaBan to AdaBan, and
for the ranking methods, where a cached complete d-tree yields an exact
result).  Ranking entries store the full per-variable interval map, so one
entry serves any downstream ranking or top-k read.
Because entries live in canonical space they are shared by every answer --
of any query -- whose lineage is isomorphic.

Compiled d-trees are cached separately and only in-process (they are linked
object graphs, cheap to reuse but pointless to ship across processes); the
result cache is what makes repeat traffic fast.

Since the store tier (:mod:`repro.engine.store`) this cache is the *first*
of two result tiers: the engine falls through memory -> store -> compute,
promoting store hits back into this LRU, and :meth:`LRUCache.snapshot`
exists so a warm memory tier can be persisted wholesale (``repro cache
save``).  Entries here and in any store share the same :data:`ResultKey`
and the same canonical variable space.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Generic, Hashable, Optional, Tuple, TypeVar

from repro.engine.canonical import CanonicalKey

#: Cache key of a result: canonical lineage plus the method configuration
#: that produced it (epsilon for every epsilon-dependent method, k for
#: top-k).
ResultKey = Tuple[CanonicalKey, str, Optional[float], Optional[int]]

#: Methods whose cached values depend on epsilon: ``approximate`` outright,
#: ``auto`` through its AdaBan fallback (each Engine pins one epsilon, but
#: the key must not rely on that), ``rank``/``topk`` through their anytime
#: stopping rules.
_EPSILON_METHODS = ("approximate", "auto", "rank", "topk")

_V = TypeVar("_V")


@dataclass(frozen=True)
class CachedAttribution:
    """One memoized attribution, in canonical variable space.

    Attributes
    ----------
    method_used:
        The algorithm that produced the values (``"exact"``,
        ``"approximate"`` or ``"shapley"``); under ``auto`` this records
        which side of the fallback ran.
    values:
        Canonical variable id -> attribution value.
    bounds:
        Canonical variable id -> (lower, upper) certificate, present for
        exact (degenerate interval) and approximate results.
    """

    method_used: str
    values: Dict[int, Fraction]
    bounds: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: ``False`` for best-so-far ranking results whose anytime run exhausted
    #: its budget; such entries are never written to the cache.
    converged: bool = True


class LRUCache(Generic[_V]):
    """A minimal ordered-dict LRU with explicit capacity.

    Individual operations are lock-protected, so concurrent readers and
    writers (e.g. threads sharing one engine through ``attribute_facts``)
    can never corrupt the structure; the worst cross-thread outcome is a
    duplicated computation whose identical result is stored twice.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("cache capacity must be positive")
        self._max_entries = max_entries
        self._entries: "OrderedDict[Hashable, _V]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[_V]:
        """Return the cached value and refresh its recency (``None`` on miss)."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                return None
            self._entries.move_to_end(key)
            return value

    def put(self, key: Hashable, value: _V) -> None:
        """Insert (or refresh) an entry, evicting the least recently used."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop all entries."""
        with self._lock:
            self._entries.clear()

    def snapshot(self):
        """List of ``(key, value)`` pairs, least recently used first.

        A point-in-time copy: safe to iterate while other threads keep
        using the cache.  Feeding the pairs into another cache in order
        preserves the recency ranking (the most recently used entry is
        inserted last).
        """
        with self._lock:
            return list(self._entries.items())


class LineageCache:
    """The engine's two-level memo: results (primary) and compiled d-trees.

    Result entries are small (per-variable Fractions keyed by tuples of int
    tuples), so the default of 4096 is only a few megabytes for typical
    workload lineages.  Compiled d-trees can be arbitrarily large object
    graphs, so they get a much smaller independent bound
    (``dtree_entries``): the result cache, not the tree cache, is what
    serves repeat traffic.
    """

    def __init__(self, max_entries: int = 4096,
                 dtree_entries: int = 256) -> None:
        self.results: LRUCache[CachedAttribution] = LRUCache(max_entries)
        self.dtrees: LRUCache[object] = LRUCache(dtree_entries)

    @staticmethod
    def result_key(key: CanonicalKey, method: str,
                   epsilon: Optional[float],
                   k: Optional[int] = None) -> ResultKey:
        """Build the result-cache key.

        Epsilon is kept for every epsilon-dependent method -- including
        ``auto``, whose fallback values depend on it -- and dropped for the
        exact methods (``exact``/``shapley``), whose results never do.
        ``k`` is kept for ``topk`` only.
        """
        return (key, method,
                epsilon if method in _EPSILON_METHODS else None,
                k if method == "topk" else None)

    def clear(self) -> None:
        """Drop both cache levels."""
        self.results.clear()
        self.dtrees.clear()
