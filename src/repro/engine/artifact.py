"""The compiled-lineage artifact: the engine's third, method-independent tier.

The d-tree is the paper's central artifact — ExaBan, AdaBan, IchiBan and
the Shapley extension are all *evaluators over the same compiled (or
partially compiled) d-tree* — yet compilation used to be fused into each
method's compute path, so a lineage attributed exactly still paid full
recompilation when it was later ranked, top-k'd, Shapley-scored, or
queried at a different epsilon.  :class:`CompiledLineage` factors the
compilation out: one artifact per **canonical lineage** (no method, no
epsilon, no k in the key), holding either

* a **complete** d-tree — every method evaluates it directly, exactly
  (one ExaBan/Shapley pass; intervals collapse to points), or
* a **partial** d-tree plus its resumable ``DNFLeaf`` frontier — the
  anytime methods resume refinement from it instead of restarting, and
  the exact methods can *finish* the compilation instead of redoing it.

Artifacts are exactly serializable (:mod:`repro.dtree.serialize`), so the
store tier persists them alongside results and a warm-started process
resumes partial compilations across restarts.

Sharing discipline: the tree inside a cached artifact is read-shared by
every evaluator, and the incremental compiler mutates trees in place —
so :meth:`CompiledLineage.resume_compiler` always hands out a *private
clone*.  Completed artifacts are never structurally mutated (per-node
bound caches are idempotent scratch space, as with the old in-process
d-tree memo).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.dtree.arena import DTreeArena, arena_of
from repro.dtree.compile import CompilationBudget
from repro.dtree.heuristics import Heuristic, select_most_frequent
from repro.dtree.incremental import IncrementalCompiler
from repro.dtree.nodes import DTreeNode
from repro.dtree.serialize import (
    TREE_FORMAT_VERSION,
    clone_tree,
    decode_tree,
    encode_tree,
)

#: Wire-format version of encoded artifacts; readers discard (and
#: recompute) anything recording a different version.
ARTIFACT_FORMAT_VERSION = TREE_FORMAT_VERSION

#: Artifact shard versions the store still decodes.  Version 1 shards
#: hold the nested-list object-tree codec; version 2 shards hold the
#: arena (struct-of-arrays) codec.  Both decode to identical trees
#: (:func:`repro.dtree.serialize.decode_tree` dispatches per entry), so
#: a store written by an older process stays readable and mixed-version
#: stores work — writes always use :data:`ARTIFACT_FORMAT_VERSION`, so
#: legacy shards age out on the next flush of their key range.
ARTIFACT_COMPAT_VERSIONS = frozenset({1, TREE_FORMAT_VERSION})


@dataclass
class CompiledLineage:
    """One canonical lineage's compilation state (complete or resumable).

    Attributes
    ----------
    root:
        The d-tree.  Complete trees have only literal/constant leaves;
        partial trees keep their undecomposed ``DNFLeaf`` frontier.
    complete:
        ``True`` iff the tree is a complete d-tree (exact evaluation).
    shannon_steps / expansion_steps:
        Cumulative compilation work already paid for this lineage —
        carried across processes so resumed compilations keep honest
        totals.
    counts:
        Node-id-keyed subtree model-count memo shared by every exact
        evaluation pass over this artifact's tree.  Since the arena
        refactor this is a **mirror view** of the arena's ``"counts"``
        payload column: :mod:`repro.core.exaban` computes counts in the
        arena and copies them here, so legacy callers (and the engine's
        memo-hit accounting) keep working unchanged.  Derived data:
        never serialized (node ids are process-local), rebuilt on first
        evaluation after a load, and only ever populated for *complete*
        trees (partial trees are resumed via a clone, whose fresh node
        ids leave a stale memo unreachable).
    """

    root: DTreeNode
    complete: bool
    shannon_steps: int = 0
    expansion_steps: int = 0
    counts: Dict[int, int] = field(default_factory=dict, compare=False,
                                   repr=False)

    @classmethod
    def from_complete_tree(cls, root: DTreeNode,
                           shannon_steps: int = 0) -> "CompiledLineage":
        """Wrap a tree built by the exhaustive compiler."""
        return cls(root=root, complete=True, shannon_steps=shannon_steps)

    @classmethod
    def from_compiler(cls, compiler: IncrementalCompiler) -> "CompiledLineage":
        """Snapshot an incremental compilation (complete or mid-flight)."""
        return cls(root=compiler.root,
                   complete=compiler.is_complete(),
                   shannon_steps=compiler.shannon_steps,
                   expansion_steps=compiler.expansion_steps)

    def arena(self) -> DTreeArena:
        """The tree's struct-of-arrays arena (built lazily, cached).

        The arena is memoized in the root node's cache
        (:func:`repro.dtree.arena.arena_of`), which in-place mutation
        invalidates — so the handle is always consistent with ``root``.
        Every exact/float evaluation pass over this artifact shares it
        (and its payload columns) automatically.
        """
        return arena_of(self.root)

    def resume_compiler(self, heuristic: Heuristic = select_most_frequent
                        ) -> IncrementalCompiler:
        """An incremental compiler over a *private clone* of the tree.

        Cloning keeps the cached/persisted artifact pristine: concurrent
        readers of the same artifact each resume their own copy, so the
        worst cross-thread outcome stays a duplicated computation, never
        a corrupted shared tree.
        """
        return IncrementalCompiler.resume(
            clone_tree(self.root), heuristic=heuristic,
            shannon_steps=self.shannon_steps,
            expansion_steps=self.expansion_steps)


def complete_compilation(compiler: IncrementalCompiler,
                         budget: CompilationBudget) -> None:
    """Expand a resumed compilation to a complete d-tree under a budget.

    Charges the budget exactly like the exhaustive compiler — one
    :meth:`~repro.dtree.compile.CompilationBudget.charge_shannon` per
    Shannon expansion performed *in this attempt* (work a previous
    process already paid for is not re-charged), with the wall clock
    checked on structural steps too.  Raises
    :class:`~repro.dtree.compile.CompilationLimitReached` on exhaustion,
    leaving the compiler mid-flight (its partial tree is still valid and
    worth persisting).
    """
    while not compiler.is_complete():
        before = compiler.shannon_steps
        compiler.expand_step(lazy=False)
        if compiler.shannon_steps > before:
            budget.charge_shannon()
        else:
            budget.check_time()


def encode_artifact(artifact: CompiledLineage) -> Dict[str, object]:
    """JSON-serializable form of one artifact (versioned by the caller)."""
    return {
        "complete": bool(artifact.complete),
        "shannon_steps": int(artifact.shannon_steps),
        "expansion_steps": int(artifact.expansion_steps),
        "tree": encode_tree(artifact.root),
    }


def decode_artifact(encoded: Dict[str, object]) -> CompiledLineage:
    """Inverse of :func:`encode_artifact`.

    Raises ``ValueError``/``KeyError``/``TypeError`` on malformed input;
    additionally rejects encodings whose ``complete`` flag contradicts
    the decoded tree (a tampered artifact must not masquerade as exact).
    """
    root = decode_tree(encoded["tree"])
    complete = bool(encoded["complete"])
    if complete != root.is_complete():
        raise ValueError("artifact completeness flag contradicts the tree")
    return CompiledLineage(
        root=root,
        complete=complete,
        shannon_steps=int(encoded["shannon_steps"]),
        expansion_steps=int(encoded["expansion_steps"]),
    )


__all__ = [
    "ARTIFACT_COMPAT_VERSIONS",
    "ARTIFACT_FORMAT_VERSION",
    "CompiledLineage",
    "complete_compilation",
    "decode_artifact",
    "encode_artifact",
]
