"""Batched, cache-aware attribution engine (the library's execution path).

The :class:`Engine` canonicalizes answer lineages into variable-order-
independent keys, memoizes d-tree compilations and Banzhaf results across
answers and queries, fans independent lineages out over a process pool, and
auto-selects ExaBan or the AdaBan fallback per lineage.  See
``docs/ARCHITECTURE.md`` for the design and
:mod:`repro.engine.engine` for the pipeline details.
"""

from repro.engine.cache import CachedAttribution, LineageCache, LRUCache
from repro.engine.canonical import CanonicalKey, CanonicalLineage, canonicalize
from repro.engine.engine import (
    Engine,
    EngineConfig,
    EngineMethod,
    LineageAttribution,
    RankedAnswer,
    engine_for,
    ensure_recursion_head_room,
)
from repro.engine.ranking import RankingComputation, compute_ranking
from repro.engine.stats import EngineStats

__all__ = [
    "CachedAttribution",
    "CanonicalKey",
    "CanonicalLineage",
    "Engine",
    "EngineConfig",
    "EngineMethod",
    "EngineStats",
    "LineageAttribution",
    "LineageCache",
    "LRUCache",
    "RankedAnswer",
    "RankingComputation",
    "canonicalize",
    "compute_ranking",
    "engine_for",
    "ensure_recursion_head_room",
]
