"""Batched, cache-aware attribution engine (the library's execution path).

The :class:`Engine` canonicalizes answer lineages into variable-order-
independent keys, memoizes d-tree compilations and Banzhaf results across
answers and queries, fans independent lineages out over a process pool, and
auto-selects ExaBan or the AdaBan fallback per lineage.  Results are served
through two cache tiers -- the in-memory :class:`LineageCache` and an
optional persistent :class:`CacheStore` (:class:`DiskStore` /
:class:`LogStore` / :class:`MemoryStore`, the latter two composable via
:class:`ShardedStore`), which survives process restarts -- and the
long-lived serving loop (:class:`AttributionService`) keeps one warm set
of tiers behind a stream of attribute/rank/topk requests.  The
reliability layer (:mod:`repro.reliability`, re-exported here) supervises
the process pool, retries/breakers the store tier, and provides
deterministic fault injection to prove all of it.  See
``docs/ARCHITECTURE.md`` for the design, ``docs/API.md`` for the supported
public surface, and :mod:`repro.engine.engine` for the pipeline details.
"""

from repro.engine.artifact import (
    ARTIFACT_FORMAT_VERSION,
    CompiledLineage,
    complete_compilation,
    decode_artifact,
    encode_artifact,
)
from repro.engine.cache import (
    CachedAttribution,
    LineageCache,
    LRUCache,
    ResultKey,
    canonical_epsilon,
)
from repro.engine.canonical import CanonicalKey, CanonicalLineage, canonicalize
from repro.engine.engine import (
    Engine,
    EngineConfig,
    EngineMethod,
    LineageAttribution,
    RankedAnswer,
    engine_for,
    ensure_recursion_head_room,
)
from repro.engine.frontend import (
    FrontendConfig,
    ServingFrontend,
    Ticket,
    serve_jsonl_concurrent,
)
from repro.engine.ranking import RankingComputation, compute_ranking
from repro.engine.serve import (
    AttributionService,
    ParsedRequest,
    RequestError,
    serve_jsonl,
)
from repro.engine.logstore import (
    STORE_BACKENDS,
    LogStore,
    ShardedStore,
    StoreLockedError,
    migrate_store,
    open_store,
)
from repro.engine.stats import EngineStats
from repro.engine.store import (
    STORE_FORMAT_VERSION,
    CacheStore,
    DiskStore,
    MemoryStore,
    load_artifacts,
    load_results,
    save_artifacts,
    save_results,
)
from repro.reliability import (
    CircuitBreaker,
    CircuitOpenError,
    FaultInjected,
    FaultPlan,
    FaultRule,
    ResilientStore,
    RetryPolicy,
    SupervisedPool,
    TransientStoreError,
    WorkerCrash,
    faults,
    wrap_store,
)

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "AttributionService",
    "CachedAttribution",
    "CacheStore",
    "CanonicalKey",
    "CanonicalLineage",
    "CircuitBreaker",
    "CircuitOpenError",
    "CompiledLineage",
    "DiskStore",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "Engine",
    "EngineConfig",
    "EngineMethod",
    "EngineStats",
    "FrontendConfig",
    "LineageAttribution",
    "LineageCache",
    "LogStore",
    "LRUCache",
    "MemoryStore",
    "ParsedRequest",
    "RankedAnswer",
    "RankingComputation",
    "RequestError",
    "ResilientStore",
    "ResultKey",
    "RetryPolicy",
    "STORE_BACKENDS",
    "STORE_FORMAT_VERSION",
    "ServingFrontend",
    "ShardedStore",
    "StoreLockedError",
    "SupervisedPool",
    "Ticket",
    "TransientStoreError",
    "WorkerCrash",
    "canonical_epsilon",
    "canonicalize",
    "complete_compilation",
    "compute_ranking",
    "decode_artifact",
    "encode_artifact",
    "engine_for",
    "ensure_recursion_head_room",
    "faults",
    "load_artifacts",
    "load_results",
    "migrate_store",
    "open_store",
    "save_artifacts",
    "save_results",
    "serve_jsonl",
    "serve_jsonl_concurrent",
]
