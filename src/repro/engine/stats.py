"""Execution statistics of the attribution engine.

The engine is the hot path of the library, so it accounts for its own work:
how often the lineage cache hit, how many d-trees were actually compiled,
how often the exact method fell back to the anytime approximation, and how
much wall-clock time each pipeline stage consumed.  Benchmarks and the CLI
``--stats`` flag print these numbers; tests assert on them.

The counters are **thread-safe**: one :class:`EngineStats` is shared by
every engine of an :class:`~repro.engine.serve.AttributionService`, and the
concurrent front-end (:mod:`repro.engine.frontend`) drives those engines
from many worker threads at once.  All mutation goes through :meth:`bump`,
:meth:`timed` and :meth:`merge_from`, which hold an internal lock, so
concurrent increments are never dropped.  Plain attribute *reads* are
deliberately lock-free (ints are replaced atomically in CPython; a report
racing a computation is at worst one increment stale, never corrupt).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

#: Every integer counter of :class:`EngineStats`, in declaration order.
#: :meth:`EngineStats.bump` validates against it and
#: :meth:`EngineStats.merge_from` iterates it, so a new counter only needs
#: to be added to the dataclass and to this tuple.
COUNTER_FIELDS = (
    "queries",
    "answers",
    "cache_hits",
    "store_hits",
    "cache_misses",
    "compilations",
    "tree_compilations",
    "artifact_hits",
    "artifact_store_hits",
    "artifact_resumes",
    "count_memo_hits",
    "fallbacks",
    "refinement_rounds",
    "partial_results",
    "parallel_batches",
    "coalesced_requests",
    "shed_requests",
    "payload_hits",
    "kernel_sweeps",
    "kernel_batched_trees",
    "kernel_fallbacks",
    "pool_fallbacks",
    "pool_worker_crashes",
    "store_retries",
    "store_degraded",
)


@dataclass
class EngineStats:
    """Counters and per-stage timings accumulated by an :class:`~repro.engine.engine.Engine`.

    Attributes
    ----------
    queries:
        Number of queries attributed (``attribute``/``attribute_many`` calls
        count one per query; ``attribute_lineages`` counts none).
    answers:
        Number of answer tuples (or raw lineages) attributed.
    cache_hits:
        Answers served from the in-memory lineage cache, including
        answers deduplicated against an isomorphic answer of the same
        batch.
    store_hits:
        Answers served from the persistent store tier (a memory miss that
        a configured :class:`~repro.engine.store.CacheStore` answered);
        always 0 when no store is configured.
    cache_misses:
        Answers that required a fresh computation (missed every tier).
    compilations:
        Fresh computations actually executed (one per distinct canonical
        lineage that missed the cache).
    tree_compilations:
        Computations that had to start a d-tree from scratch (no
        compiled-lineage artifact in any tier).  The difference between
        ``compilations`` and this counter is work the artifact tier
        saved: evaluations served off an already compiled (or partially
        compiled) tree.
    artifact_hits:
        Computations that reused a compiled-lineage artifact from the
        in-memory artifact cache.
    artifact_store_hits:
        Computations whose artifact came from the persistent store tier
        (always 0 without a store).
    artifact_resumes:
        Reused artifacts that were *partial*: refinement resumed from
        the persisted/cached frontier instead of restarting.
    count_memo_hits:
        Computations that reused a complete artifact whose subtree
        model-count memo was already populated by an earlier evaluation
        (ranking / top-k / repeat attribution over one compiled lineage
        recount no subtree at all).
    fallbacks:
        ``auto``-method computations where exact compilation exhausted its
        budget and the engine fell back to AdaBan.
    refinement_rounds:
        IchiBan refinement rounds run by the ``rank``/``topk`` methods
        (0 for results served from the cache or from a complete d-tree).
    partial_results:
        Ranking computations that exhausted their budget and returned
        best-so-far intervals instead of a certified result.
    parallel_batches:
        Batches dispatched to the process pool (0 when running serially).
    coalesced_requests:
        Serving-layer counter (bumped by the concurrent front-end,
        :mod:`repro.engine.frontend`): requests that shared another
        in-flight request's computation instead of running their own --
        single-flight followers plus micro-batch members deduplicated
        against an isomorphic batchmate.  Always 0 outside the front-end.
    shed_requests:
        Serving-layer counter: requests the front-end's admission control
        rejected (bounded queue full, per-client budget exhausted, or
        deadline already missed) without reaching an engine.  Every shed
        request still received a structured rejection response.
    payload_hits:
        Arena passes answered entirely from a cached payload column or
        memoized result (no rows recomputed) -- the proof that
        :func:`~repro.dtree.arena.arena_counts` and friends reuse their
        columns across partial re-evaluations instead of rebuilding them.
    kernel_sweeps:
        Vectorized (numpy) kernel sweeps executed by
        :mod:`repro.dtree.kernels` -- each sweep evaluates one arena, or
        one stacked micro-batch of arenas, in whole-level array ops.
    kernel_batched_trees:
        Trees evaluated through a *stacked* cross-request kernel sweep
        (the batching win: ``kernel_batched_trees / kernel_sweeps`` is
        the average batch width of batched sweeps).
    kernel_fallbacks:
        Kernel dispatches that fell back to the pure-Python arena pass --
        numpy missing, the arena too small to be worth a sweep under
        ``kernel="auto"``, or an int64 overflow/soundness check rerouting
        to the big-int pass.
    pool_fallbacks:
        Times the parallel compute path degraded terminally to the
        serial path (pool unusable: ``OSError``/``ImportError`` at
        startup, or a :class:`~repro.reliability.errors.WorkerCrash`
        after the supervised pool exhausted its restart budget).
        Before the reliability subsystem this degradation was silent.
    pool_worker_crashes:
        Worker-death/hang events survived by the supervised pool
        (each one is an executor rebuild + resubmission of the
        unfinished chunks; see
        :class:`~repro.reliability.supervisor.SupervisedPool`).
    store_retries:
        Transient store-I/O failures that were retried with backoff by
        :class:`~repro.reliability.resilient.ResilientStore` (one per
        retry sleep, not per operation).
    store_degraded:
        Circuit-breaker trips: the persistent store failed persistently
        and the engine degraded to memory-only caching until a
        half-open probe re-attached it.
    stage_seconds:
        Wall-clock seconds per pipeline stage (``evaluate``,
        ``canonicalize``, ``compute``, ``assemble``).
    pass_seconds:
        Wall-clock seconds per arena *pass* (``compile``, ``count``,
        ``banzhaf``, ``float``, ``surrogate``, ``kernel_sweep``) -- the
        profiling surface the kernel benchmark uses to attribute its win.
        Populated by the pass label of :meth:`timed` / :meth:`timed_pass`.
    """

    queries: int = 0
    answers: int = 0
    cache_hits: int = 0
    store_hits: int = 0
    cache_misses: int = 0
    compilations: int = 0
    tree_compilations: int = 0
    artifact_hits: int = 0
    artifact_store_hits: int = 0
    artifact_resumes: int = 0
    count_memo_hits: int = 0
    fallbacks: int = 0
    refinement_rounds: int = 0
    partial_results: int = 0
    parallel_batches: int = 0
    coalesced_requests: int = 0
    shed_requests: int = 0
    payload_hits: int = 0
    kernel_sweeps: int = 0
    kernel_batched_trees: int = 0
    kernel_fallbacks: int = 0
    pool_fallbacks: int = 0
    pool_worker_crashes: int = 0
    store_retries: int = 0
    store_degraded: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    pass_seconds: Dict[str, float] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def bump(self, **deltas: int) -> None:
        """Atomically add the given deltas to the named counters.

        ``stats.bump(cache_hits=1)`` is the thread-safe spelling of
        ``stats.cache_hits += 1`` (a read-modify-write that drops
        increments under concurrency).  Unknown counter names raise
        ``AttributeError`` so typos cannot silently create dead counters.
        """
        with self._lock:
            for name, delta in deltas.items():
                if name not in COUNTER_FIELDS:
                    raise AttributeError(
                        f"EngineStats has no counter {name!r}")
                setattr(self, name, getattr(self, name) + delta)

    def merge_from(self, other: "EngineStats") -> None:
        """Fold another stats object's counters and timings into this one.

        Used by deadline-scoped engines (:mod:`repro.engine.serve`): a
        per-request engine accumulates into a private ``EngineStats`` --
        so the caller can inspect what *that request* did -- and the
        service merges it into the shared counters afterwards.  ``other``
        must not be mutated concurrently during the merge.
        """
        with self._lock:
            for name in COUNTER_FIELDS:
                setattr(self, name, getattr(self, name) + getattr(other, name))
            for stage, seconds in other.stage_seconds.items():
                self.stage_seconds[stage] = (
                    self.stage_seconds.get(stage, 0.0) + seconds
                )
            for label, seconds in other.pass_seconds.items():
                self.pass_seconds[label] = (
                    self.pass_seconds.get(label, 0.0) + seconds
                )

    @contextmanager
    def timed(self, stage: Optional[str],
              pass_label: Optional[str] = None) -> Iterator[None]:
        """Time a ``with`` block into ``stage_seconds`` and/or ``pass_seconds``.

        ``stage`` buckets by pipeline stage as before; the optional
        ``pass_label`` additionally (or, with ``stage=None``, exclusively)
        buckets the same elapsed time by arena pass, so one block can be
        attributed on both axes.
        """
        started = time.monotonic()
        try:
            yield
        finally:
            elapsed = time.monotonic() - started
            with self._lock:
                if stage is not None:
                    self.stage_seconds[stage] = (
                        self.stage_seconds.get(stage, 0.0) + elapsed
                    )
                if pass_label is not None:
                    self.pass_seconds[pass_label] = (
                        self.pass_seconds.get(pass_label, 0.0) + elapsed
                    )

    @contextmanager
    def timed_pass(self, label: str) -> Iterator[None]:
        """Time a ``with`` block into ``pass_seconds[label]`` only."""
        with self.timed(None, label):
            yield

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time across all stages."""
        return sum(self.stage_seconds.values())

    def hit_rate(self) -> float:
        """Hit rate across *all* cache tiers (0.0 when nothing ran yet).

        A hit is an answer served without a fresh computation, whether it
        came from the in-memory tier (``cache_hits``) or the persistent
        store tier (``store_hits``).
        """
        total = self.cache_hits + self.store_hits + self.cache_misses
        return (self.cache_hits + self.store_hits) / total if total else 0.0

    def tier_hit_rates(self) -> Dict[str, float]:
        """Per-tier fractions of all cache lookups (memory/store/compute).

        The three fractions sum to 1.0 once anything ran; ``compute`` is
        the miss rate (answers that fell through every tier).
        """
        total = self.cache_hits + self.store_hits + self.cache_misses
        if not total:
            return {"memory": 0.0, "store": 0.0, "compute": 0.0}
        return {
            "memory": self.cache_hits / total,
            "store": self.store_hits / total,
            "compute": self.cache_misses / total,
        }

    def artifact_hit_rate(self) -> float:
        """Fraction of fresh computations that reused a compiled artifact.

        The artifact tier sits *behind* the result tiers: it is only
        consulted when a computation actually runs, so the denominator is
        the computations, not the answers.
        """
        total = (self.artifact_hits + self.artifact_store_hits
                 + self.tree_compilations)
        return ((self.artifact_hits + self.artifact_store_hits) / total
                if total else 0.0)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict snapshot for reports and JSON output."""
        return {
            "queries": self.queries,
            "answers": self.answers,
            "cache_hits": self.cache_hits,
            "store_hits": self.store_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": round(self.hit_rate(), 4),
            "tier_hit_rates": {tier: round(rate, 4)
                               for tier, rate in self.tier_hit_rates().items()},
            "compilations": self.compilations,
            "artifacts": {
                "tree_compilations": self.tree_compilations,
                "memory_hits": self.artifact_hits,
                "store_hits": self.artifact_store_hits,
                "resumes": self.artifact_resumes,
                "count_memo_hits": self.count_memo_hits,
                "hit_rate": round(self.artifact_hit_rate(), 4),
            },
            "fallbacks": self.fallbacks,
            "refinement_rounds": self.refinement_rounds,
            "partial_results": self.partial_results,
            "parallel_batches": self.parallel_batches,
            "coalesced_requests": self.coalesced_requests,
            "shed_requests": self.shed_requests,
            "payload_hits": self.payload_hits,
            "kernel": {
                "sweeps": self.kernel_sweeps,
                "batched_trees": self.kernel_batched_trees,
                "fallbacks": self.kernel_fallbacks,
            },
            "reliability": {
                "pool_fallbacks": self.pool_fallbacks,
                "pool_worker_crashes": self.pool_worker_crashes,
                "store_retries": self.store_retries,
                "store_degraded": self.store_degraded,
            },
            "stage_seconds": {stage: round(seconds, 6)
                              for stage, seconds in self.stage_seconds.items()},
            "passes": {label: round(seconds, 6)
                       for label, seconds in self.pass_seconds.items()},
            "total_seconds": round(self.total_seconds, 6),
        }

    def reset(self) -> None:
        """Zero all counters and timers."""
        with self._lock:
            for name in COUNTER_FIELDS:
                setattr(self, name, 0)
            self.stage_seconds = {}
            self.pass_seconds = {}

    def __repr__(self) -> str:
        return (f"EngineStats(answers={self.answers}, "
                f"hits={self.cache_hits}, store_hits={self.store_hits}, "
                f"misses={self.cache_misses}, "
                f"compilations={self.compilations}, "
                f"fallbacks={self.fallbacks}, "
                f"total={self.total_seconds:.3f}s)")
