"""Append-only log store: the scale backend of the persistent tier.

:class:`~repro.engine.store.DiskStore` keeps every loaded entry decoded
in memory and rewrites whole JSON shard files per flush -- fine at the
warm-start bench's 53 entries, hopeless at the millions of cached
lineages the ROADMAP's serving story implies.  This module provides the
backend that scales:

* :class:`LogStore` -- a single append-only **record log** per store
  root.  Records are length-prefixed, CRC32-checksummed JSON frames
  (results *and* :class:`~repro.engine.artifact.CompiledLineage`
  artifacts); an in-memory ``key -> (offset, length, stamp)`` index is
  rebuilt by one sequential scan on open, and point reads seek straight
  to the record -- no shard rewrite, no full deserialization of
  anything but the requested entry.  A ``flush`` appends the buffered
  records in one write (the *ack point*: everything acked survives a
  crash), eviction appends **tombstones** instead of rewriting, and a
  queue-then-drain background worker **compacts** the log (rewrite live
  records into a fresh log, drop tombstoned/evicted/superseded ones)
  when the garbage ratio crosses a threshold.

* **single-writer / multi-reader locking** -- the writer holds an
  advisory ``flock`` on ``writer.lock``; a second writer fails fast
  with :class:`StoreLockedError`.  Readers (``mode="ro"``) take no lock
  at all: the log is append-only and compaction replaces it atomically,
  so a reader always sees a *consistent prefix* -- a torn or
  not-yet-complete tail frame simply ends the log early, and
  :meth:`LogStore.refresh` picks up newly acked records incrementally.
  ``mode="auto"`` tries to become the writer and degrades to a reader,
  which is how several serving processes share one store directory.

* :class:`ShardedStore` -- consistent-hash sharding across N store
  roots, composing *any* :class:`~repro.engine.store.CacheStore` per
  shard.  The hash ring (virtual nodes) guarantees that growing the
  ring only *moves keys to the new root* -- existing roots never
  exchange entries -- so a deployment can add capacity without
  invalidating its caches.

* :func:`open_store` / :func:`resolve_store` -- the backend-selection
  factory behind ``EngineConfig(store=<path>, store_backend=...)`` and
  the CLI's ``--store-backend {disk,log}`` / ``--store-shards N``
  flags; :func:`migrate_store` is the one-shot ``repro cache migrate``
  path from a legacy :class:`DiskStore` into any other backend.

On-disk format of one log (``store.log``)::

    8 bytes   magic  b"RLOG" + version (big-endian u32)
    repeated  frame: u32 payload length | u32 CRC32(payload) | payload
    payload   JSON: {"k": "r"|"a"|"tr"|"ta", "key": <encoded key>,
                     "s": <stamp>, "v": <encoded entry>}

``"r"``/``"a"`` carry a result / artifact put; ``"tr"``/``"ta"`` are
tombstones (eviction); later records for a key supersede earlier ones.
Corruption handling mirrors the store tier's contract -- never raise on
damaged data: a frame whose checksum fails is skipped (the CRC makes a
bit-flipped ``Fraction`` detectable, so a corrupted value can never be
*served*), a frame that runs past end-of-file is a torn tail and ends
the scan, and the writer truncates the torn bytes so the next append
re-establishes a clean log.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import struct
import threading
import zlib
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine.artifact import CompiledLineage, decode_artifact, \
    encode_artifact
from repro.engine.cache import CachedAttribution, ResultKey
from repro.engine.canonical import CanonicalKey
from repro.engine.store import (
    CacheStore,
    DiskStore,
    decode_canonical_key,
    decode_entry,
    decode_key,
    encode_canonical_key,
    encode_entry,
    encode_key,
)
from repro.reliability import faults
from repro.reliability.errors import TransientStoreError

#: Log file magic: b"RLOG" + format version.  Bumped on any incompatible
#: frame/payload change; a log recording a different version is treated
#: as empty by readers (and rotated aside by a writer) -- never crashed on.
LOG_FORMAT_VERSION = 1
_MAGIC = b"RLOG" + struct.pack(">I", LOG_FORMAT_VERSION)

_HEADER = struct.Struct(">II")  # payload length, CRC32(payload)

#: Upper bound on a single record; a length prefix beyond it means the
#: framing itself is damaged (resynchronization is impossible), so the
#: scan stops there -- the torn-tail case.
_MAX_RECORD_BYTES = 256 * 1024 * 1024

_LOG_NAME = "store.log"
_LOCK_NAME = "writer.lock"
_COMPACT_PREFIX = ".compact-"


class StoreLockedError(RuntimeError):
    """Another process already holds the store's writer lock."""


class _Record:
    """One live record's location in the log (index value)."""

    __slots__ = ("offset", "length", "stamp")

    def __init__(self, offset: int, length: int, stamp: int) -> None:
        self.offset = offset          # frame start (header included)
        self.length = length          # payload length
        self.stamp = stamp

    @property
    def frame_bytes(self) -> int:
        return _HEADER.size + self.length


def _frame(payload: bytes) -> bytes:
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _encode_payload(kind: str, key: str, stamp: int,
                    value: Optional[Dict[str, object]] = None) -> bytes:
    document: Dict[str, object] = {"k": kind, "key": key, "s": stamp}
    if value is not None:
        document["v"] = value
    return json.dumps(document, separators=(",", ":")).encode("utf-8")


class _CompactionWorker(threading.Thread):
    """Queue-then-drain background compactor (one per writing LogStore).

    ``flush`` enqueues a token when the garbage threshold is crossed;
    the worker drains the queue and runs one compaction per token batch.
    The queue-then-drain shape keeps the policy trivial: triggers
    arriving while a compaction runs coalesce into at most one more run.
    """

    def __init__(self, store: "LogStore") -> None:
        super().__init__(name=f"logstore-compact:{store.path}", daemon=True)
        self._store = store
        self.requests: "queue.Queue[Optional[object]]" = queue.Queue()

    def run(self) -> None:
        while True:
            token = self.requests.get()
            if token is None:
                return
            # Drain bursts: N triggers while busy collapse to one run.
            try:
                while self.requests.get_nowait() is not None:
                    pass
                return  # a sentinel was queued behind the burst
            except queue.Empty:
                pass
            try:
                self._store.compact()
            except Exception:
                # A failed background compaction must never kill the
                # worker (or the process); the log stays valid as-is and
                # the next threshold crossing retries.
                pass


class LogStore:
    """Append-only, checksummed, point-read :class:`CacheStore` backend.

    Parameters
    ----------
    path:
        Store root directory (created if missing).
    max_entries / max_artifacts:
        Per-kind live-entry bounds; flushing past them appends
        tombstones for the oldest stamps (the physical bytes are
        reclaimed by the next compaction).
    mode:
        ``"rw"`` (default) acquires the exclusive writer lock, raising
        :class:`StoreLockedError` if another writer holds it; ``"ro"``
        opens read-only (puts are counted in ``dropped_writes`` and
        dropped -- a reading serving process keeps working, it just
        cannot write back); ``"auto"`` tries ``rw`` and falls back to
        ``"ro"`` so a fleet of identical processes elects one writer.
    fsync:
        When true, :meth:`flush` fsyncs the log so acked records survive
        an *operating-system* crash, not just a process crash.  Defaults
        to ``False``, matching :class:`DiskStore`'s durability level.
    auto_compact:
        Schedule a background compaction whenever a flush leaves more
        garbage than live bytes in the log (``compact_ratio``).
    compact_ratio:
        Garbage-to-live byte ratio that triggers auto-compaction.
    """

    def __init__(self, path: str, max_entries: int = 65_536,
                 max_artifacts: int = 4_096, mode: str = "rw",
                 fsync: bool = False, auto_compact: bool = True,
                 compact_ratio: float = 1.0) -> None:
        if max_entries < 1 or max_artifacts < 1:
            raise ValueError("store capacity must be positive")
        if mode not in ("rw", "ro", "auto"):
            raise ValueError(f"mode must be 'rw', 'ro' or 'auto', "
                             f"not {mode!r}")
        if compact_ratio <= 0:
            raise ValueError("compact_ratio must be positive")
        self.path = path
        self.max_entries = max_entries
        self.max_artifacts = max_artifacts
        self.fsync = fsync
        self.auto_compact = auto_compact
        self.compact_ratio = compact_ratio
        os.makedirs(path, exist_ok=True)

        self._lock = threading.RLock()
        self._index: Dict[str, _Record] = {}        # results
        self._tree_index: Dict[str, _Record] = {}   # artifacts
        #: Buffered puts awaiting flush: key -> (payload, stamp, decoded).
        self._pending: Dict[str, Tuple[bytes, int, CachedAttribution]] = {}
        self._tree_pending: Dict[str, Tuple[bytes, int, CompiledLineage]] = {}
        self._stamp = 0
        self._valid_end = len(_MAGIC)
        self._inode: Optional[int] = None
        self.live_bytes = 0
        self.garbage_bytes = 0
        self.corrupt_records = 0
        self.truncated_bytes = 0
        self.dropped_writes = 0
        self.compactions = 0
        self.reclaimed_bytes = 0
        self.gets = 0
        self.puts = 0

        self._lock_fd: Optional[int] = None
        self._read_fd = None
        self._append_fd = None
        self._worker: Optional[_CompactionWorker] = None

        self.mode = self._acquire_role(mode)
        if self.mode == "rw":
            self._writer_open()
        self._open_reader()
        self._scan(full=True)
        if self.mode == "rw" and self._valid_end < self._file_size():
            # Truncate the torn tail so appended records stay reachable
            # (a scan stops at the first damaged frame).
            self.truncated_bytes += self._file_size() - self._valid_end
            with open(self._log_path(), "r+b") as handle:
                handle.truncate(self._valid_end)
            self._reopen_files()

    # -- paths, locking, file plumbing --------------------------------- #

    def _log_path(self) -> str:
        return os.path.join(self.path, _LOG_NAME)

    def _file_size(self) -> int:
        try:
            return os.path.getsize(self._log_path())
        except OSError:
            return 0

    def _acquire_role(self, mode: str) -> str:
        if mode == "ro":
            return "ro"
        import fcntl

        fd = os.open(os.path.join(self.path, _LOCK_NAME),
                     os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            if mode == "auto":
                return "ro"
            raise StoreLockedError(
                f"another process holds the writer lock on {self.path!r}; "
                "open with mode='ro' (or mode='auto') to read alongside "
                "the single writer") from None
        self._lock_fd = fd
        return "rw"

    def _writer_open(self) -> None:
        # Clean up temp files a crashed compaction left behind, then make
        # sure the log exists and leads with the right magic.  An alien
        # or wrong-version file is rotated out of the way (never parsed,
        # never appended to) -- the store starts empty, like DiskStore
        # treating an incompatible shard as empty.
        for name in os.listdir(self.path):
            if name.startswith(_COMPACT_PREFIX):
                try:
                    os.unlink(os.path.join(self.path, name))
                except OSError:
                    pass
        log_path = self._log_path()
        if os.path.exists(log_path):
            with open(log_path, "rb") as handle:
                magic = handle.read(len(_MAGIC))
            if magic != _MAGIC and magic != b"":
                self.corrupt_records += 1
                os.replace(log_path, log_path + ".alien")
        if not os.path.exists(log_path) or os.path.getsize(log_path) == 0:
            with open(log_path, "wb") as handle:
                handle.write(_MAGIC)
        self._append_fd = open(log_path, "ab")

    def _open_reader(self) -> None:
        if self._read_fd is not None:
            try:
                self._read_fd.close()
            except OSError:
                pass
            self._read_fd = None
        try:
            self._read_fd = open(self._log_path(), "rb")
            self._inode = os.fstat(self._read_fd.fileno()).st_ino
        except OSError:
            self._read_fd = None
            self._inode = None

    def _reopen_files(self) -> None:
        if self._append_fd is not None:
            try:
                self._append_fd.close()
            except OSError:
                pass
            self._append_fd = open(self._log_path(), "ab")
        self._open_reader()

    def close(self) -> None:
        """Flush, stop the compaction worker, release the writer lock."""
        with self._lock:
            if self.mode == "rw":
                self.flush()
            worker = self._worker
            self._worker = None
        if worker is not None:
            worker.requests.put(None)
            worker.join(timeout=30)
        with self._lock:
            for handle in (self._read_fd, self._append_fd):
                if handle is not None:
                    try:
                        handle.close()
                    except OSError:
                        pass
            self._read_fd = self._append_fd = None
            if self._lock_fd is not None:
                try:
                    os.close(self._lock_fd)  # releases the flock
                except OSError:
                    pass
                self._lock_fd = None

    def __enter__(self) -> "LogStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- scanning (index rebuild, torn-tail handling) ------------------- #

    def _apply_record(self, document: Dict[str, object], offset: int,
                      length: int) -> None:
        kind = document.get("k")
        key = document.get("key")
        stamp = int(document.get("s", 0))
        frame = _HEADER.size + length
        if stamp > self._stamp:
            self._stamp = stamp
        if not isinstance(key, str):
            raise ValueError("record without a key")
        if kind in ("r", "a"):
            index = self._index if kind == "r" else self._tree_index
            old = index.get(key)
            if old is not None:
                self.garbage_bytes += old.frame_bytes
                self.live_bytes -= old.frame_bytes
            index[key] = _Record(offset, length, stamp)
            self.live_bytes += frame
        elif kind in ("tr", "ta"):
            index = self._index if kind == "tr" else self._tree_index
            old = index.pop(key, None)
            if old is not None:
                self.garbage_bytes += old.frame_bytes
                self.live_bytes -= old.frame_bytes
            self.garbage_bytes += frame
        else:
            raise ValueError(f"unknown record kind {kind!r}")

    def _scan(self, full: bool = False) -> None:
        """(Re)build the index by scanning frames from ``_valid_end``.

        ``full=True`` restarts from the top of the file.  A frame whose
        checksum or JSON fails is *skipped* (counted, its bytes are
        garbage); a frame that cannot complete (header or payload runs
        past end-of-file, or an absurd length prefix) is the torn tail
        and ends the scan -- everything before it is the consistent
        prefix readers serve.
        """
        if self._read_fd is None:
            self._open_reader()
            if self._read_fd is None:
                return
        handle = self._read_fd
        if full:
            self._index.clear()
            self._tree_index.clear()
            self.live_bytes = 0
            self.garbage_bytes = 0
            handle.seek(0)
            magic = handle.read(len(_MAGIC))
            if magic != _MAGIC:
                # Alien, wrong-version or empty file: nothing readable.
                if magic != b"":
                    self.corrupt_records += 1
                self._valid_end = len(_MAGIC)
                return
            position = len(_MAGIC)
        else:
            position = self._valid_end
            handle.seek(position)
        while True:
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                break
            length, checksum = _HEADER.unpack(header)
            if length > _MAX_RECORD_BYTES:
                # Framing damage: impossible to resynchronize.
                break
            payload = handle.read(length)
            if len(payload) < length:
                break  # torn tail
            frame_end = position + _HEADER.size + length
            if zlib.crc32(payload) != checksum:
                self.corrupt_records += 1
                self.garbage_bytes += _HEADER.size + length
                position = frame_end
                continue
            try:
                document = json.loads(payload.decode("utf-8"))
                self._apply_record(document, position, length)
            except (ValueError, KeyError, TypeError,
                    UnicodeDecodeError):
                self.corrupt_records += 1
                self.garbage_bytes += _HEADER.size + length
            position = frame_end
        self._valid_end = position

    def refresh(self) -> None:
        """Pick up records acked since the last scan (readers call this).

        Incremental: only the log's new tail is scanned.  Detects a
        compaction (the log file was atomically replaced) or an external
        truncation and falls back to a full rescan of the new file.
        """
        with self._lock:
            self._refresh_locked()

    def _refresh_locked(self) -> None:
        try:
            stat = os.stat(self._log_path())
        except OSError:
            return
        if stat.st_ino != self._inode or stat.st_size < self._valid_end:
            self._open_reader()
            self._valid_end = len(_MAGIC)
            self._scan(full=True)
        elif stat.st_size > self._valid_end:
            self._scan(full=False)

    # -- point reads ---------------------------------------------------- #

    def _read_payload(self, record: _Record) -> Optional[Dict[str, object]]:
        """Seek-and-read one record; ``None`` if it fails verification."""
        handle = self._read_fd
        if handle is None:
            return None
        try:
            handle.seek(record.offset)
            blob = handle.read(_HEADER.size + record.length)
            length, checksum = _HEADER.unpack(blob[:_HEADER.size])
            payload = blob[_HEADER.size:]
            if length != record.length or zlib.crc32(payload) != checksum:
                raise ValueError("checksum mismatch")
            return json.loads(payload.decode("utf-8"))
        except (OSError, ValueError, KeyError, struct.error,
                UnicodeDecodeError):
            # Post-open damage (or a reader racing an external rewrite):
            # never serve bytes that fail verification.
            self.corrupt_records += 1
            return None

    def get(self, key: ResultKey) -> Optional[CachedAttribution]:
        faults.check("store.read")
        encoded = encode_key(key)
        with self._lock:
            self.gets += 1
            pending = self._pending.get(encoded)
            if pending is not None:
                return pending[2]
            record = self._index.get(encoded)
            if record is None and self.mode == "ro":
                # A reader misses: the writer may have acked the entry
                # since our last scan -- pick up the new tail first.
                self._refresh_locked()
                record = self._index.get(encoded)
            if record is None:
                return None
            document = self._read_payload(record)
            if document is None or document.get("k") != "r":
                self._drop(self._index, encoded)
                return None
            try:
                return decode_entry(document["v"])
            except (ValueError, KeyError, TypeError, ZeroDivisionError):
                self.corrupt_records += 1
                self._drop(self._index, encoded)
                return None

    def get_artifact(self, key: CanonicalKey) -> Optional[CompiledLineage]:
        encoded = encode_canonical_key(key)
        with self._lock:
            pending = self._tree_pending.get(encoded)
            if pending is not None:
                return pending[2]
            record = self._tree_index.get(encoded)
            if record is None and self.mode == "ro":
                self._refresh_locked()
                record = self._tree_index.get(encoded)
            if record is None:
                return None
            document = self._read_payload(record)
            if document is None or document.get("k") != "a":
                self._drop(self._tree_index, encoded)
                return None
            try:
                # decode_artifact runs the structural tree validation, so
                # a tampered artifact is discarded here, never evaluated.
                return decode_artifact(document["v"])
            except (ValueError, KeyError, TypeError, ZeroDivisionError):
                self.corrupt_records += 1
                self._drop(self._tree_index, encoded)
                return None

    def _drop(self, index: Dict[str, _Record], encoded: str) -> None:
        record = index.pop(encoded, None)
        if record is not None:
            self.live_bytes -= record.frame_bytes
            self.garbage_bytes += record.frame_bytes

    # -- buffered writes and the flush ack point ------------------------ #

    def put(self, key: ResultKey, value: CachedAttribution) -> None:
        if self.mode == "ro":
            with self._lock:
                self.dropped_writes += 1
            return
        encoded = encode_key(key)
        with self._lock:
            self.puts += 1
            self._stamp += 1
            payload = _encode_payload("r", encoded, self._stamp,
                                      encode_entry(value))
            self._pending[encoded] = (payload, self._stamp, value)

    def put_artifact(self, key: CanonicalKey,
                     value: CompiledLineage) -> None:
        if self.mode == "ro":
            with self._lock:
                self.dropped_writes += 1
            return
        encoded = encode_canonical_key(key)
        with self._lock:
            self._stamp += 1
            payload = _encode_payload("a", encoded, self._stamp,
                                      encode_artifact(value))
            self._tree_pending[encoded] = (payload, self._stamp, value)

    def flush(self) -> None:
        """Append every buffered record in one write -- the ack point.

        After ``flush`` returns, the records are in the operating
        system's page cache (surviving a process crash) and, with
        ``fsync=True``, on stable storage.  Eviction past the per-kind
        bounds appends tombstones for the oldest stamps; physical bytes
        are reclaimed by compaction, which this flush schedules on the
        background worker when the garbage ratio crosses the threshold.

        A *failed* append (ENOSPC, EIO, an injected fault) raises
        :class:`~repro.reliability.errors.TransientStoreError` after
        truncating the file back to the last ack point, so a partial
        write can never desynchronize future record offsets; the pending
        buffer is left intact, so a retried flush after the fault clears
        acks everything.  Nothing is ever indexed -- and therefore never
        served -- from a write that did not fully succeed.
        """
        if self.mode == "ro":
            return
        with self._lock:
            if not self._pending and not self._tree_pending:
                self._maybe_schedule_compaction()
                return
            chunks: List[bytes] = []
            placed: List[Tuple[Dict[str, _Record], str, int, int, int]] = []
            position = self._valid_end
            for index, pending in ((self._index, self._pending),
                                   (self._tree_index, self._tree_pending)):
                for encoded, (payload, stamp, _val) in sorted(
                        pending.items(), key=lambda item: item[1][1]):
                    frame = _frame(payload)
                    chunks.append(frame)
                    placed.append((index, encoded, position, len(payload),
                                   stamp))
                    position += len(frame)
            self._append_bytes(b"".join(chunks))
            for index, encoded, offset, length, stamp in placed:
                old = index.get(encoded)
                if old is not None:
                    self.garbage_bytes += old.frame_bytes
                    self.live_bytes -= old.frame_bytes
                index[encoded] = _Record(offset, length, stamp)
                self.live_bytes += _HEADER.size + length
            self._valid_end = position
            self._pending.clear()
            self._tree_pending.clear()
            self._evict_locked()
            self._maybe_schedule_compaction()

    def _evict_locked(self) -> None:
        tombstones: List[bytes] = []
        for index, bound, kind in ((self._index, self.max_entries, "tr"),
                                   (self._tree_index, self.max_artifacts,
                                    "ta")):
            excess = len(index) - bound
            if excess <= 0:
                continue
            oldest = sorted(index.items(),
                            key=lambda item: item[1].stamp)[:excess]
            for encoded, record in oldest:
                del index[encoded]
                self.live_bytes -= record.frame_bytes
                self.garbage_bytes += record.frame_bytes
                self._stamp += 1
                tombstones.append(
                    _frame(_encode_payload(kind, encoded, self._stamp)))
        if tombstones:
            blob = b"".join(tombstones)
            self._append_bytes(blob)
            self.garbage_bytes += len(blob)
            self._valid_end += len(blob)

    def _append_bytes(self, blob: bytes) -> None:
        """One guarded append; callers hold the lock.

        The ``store.flush`` fault site lives inside the guard so injected
        I/O errors exercise exactly the recovery path a real ENOSPC
        takes: truncate back to ``_valid_end`` (a partial write may have
        left bytes past the ack point), reopen the handles, and raise
        :class:`TransientStoreError` with the cause attached.  Injected
        non-``OSError`` faults (e.g. ``StoreLockedError``) propagate
        unwrapped, as the real ones would.
        """
        try:
            faults.check("store.flush")
            self._append_fd.write(blob)
            self._append_fd.flush()
            if self.fsync:
                os.fsync(self._append_fd.fileno())
        except OSError as error:
            self._truncate_to_ack_point()
            raise TransientStoreError(
                f"log append of {len(blob)} byte(s) failed: {error}"
            ) from error

    def _truncate_to_ack_point(self) -> None:
        """Best-effort: cut the file back to the last consistent prefix."""
        try:
            with open(self._log_path(), "r+b") as handle:
                handle.truncate(self._valid_end)
        except OSError:
            # Even truncation failing is safe: readers stop at the first
            # torn frame, and the writer's next successful append is
            # re-pointed at _valid_end by the reopened handle below only
            # if the truncate landed -- otherwise the stale bytes remain
            # and the scan-side torn-tail repair handles them on reopen.
            pass
        self._reopen_files()

    # -- compaction ----------------------------------------------------- #

    def _maybe_schedule_compaction(self) -> None:
        if (not self.auto_compact or self.mode != "rw"
                or self.garbage_bytes
                <= self.compact_ratio * max(1, self.live_bytes)):
            return
        if self._worker is None:
            self._worker = _CompactionWorker(self)
            self._worker.start()
        if self._worker.requests.empty():
            self._worker.requests.put(object())

    def compact(self) -> int:
        """Rewrite live records into a fresh log; returns bytes reclaimed.

        Crash-safe: the new log is written to a temp file in the store
        directory, fsynced, and atomically ``os.replace``d over the old
        one -- a writer killed mid-compaction leaves the previous log
        fully intact (stale temp files are cleaned on the next writer
        open).  Readers with an open handle keep reading the replaced
        inode; their next :meth:`refresh` notices the new file and
        rescans.  Thread-safe against concurrent puts/gets on this
        handle (the background worker calls this under load).
        """
        if self.mode == "ro":
            raise StoreLockedError(
                "a read-only store handle cannot compact; open the "
                "writer handle")
        with self._lock:
            if self._pending or self._tree_pending:
                self.flush()
            before = self._file_size()
            temp_path = os.path.join(
                self.path, f"{_COMPACT_PREFIX}{os.getpid()}.log")
            records: List[Tuple[Dict[str, _Record], str, _Record, bytes]] = []
            for index in (self._index, self._tree_index):
                for encoded, record in index.items():
                    handle = self._read_fd
                    handle.seek(record.offset)
                    blob = handle.read(record.frame_bytes)
                    length, checksum = _HEADER.unpack(blob[:_HEADER.size])
                    payload = blob[_HEADER.size:]
                    if (length != record.length
                            or zlib.crc32(payload) != checksum):
                        # Unreadable live record: drop it rather than
                        # carrying damage into the compacted log.
                        self.corrupt_records += 1
                        continue
                    records.append((index, encoded, record, blob))
            try:
                with open(temp_path, "wb") as temp:
                    temp.write(_MAGIC)
                    position = len(_MAGIC)
                    offsets: List[int] = []
                    for _index, _encoded, record, blob in records:
                        temp.write(blob)
                        offsets.append(position)
                        position += len(blob)
                    temp.flush()
                    os.fsync(temp.fileno())
                os.replace(temp_path, self._log_path())
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
            # Point the index at the new file's offsets.
            for (index, encoded, record, blob), offset in zip(records,
                                                              offsets):
                index[encoded] = _Record(offset, len(blob) - _HEADER.size,
                                         record.stamp)
            self._valid_end = position
            self.live_bytes = position - len(_MAGIC)
            self.garbage_bytes = 0
            self._reopen_files()
            reclaimed = max(0, before - self._file_size())
            self.compactions += 1
            self.reclaimed_bytes += reclaimed
            return reclaimed

    # -- iteration, sizing, stats --------------------------------------- #

    def items(self) -> Iterator[Tuple[ResultKey, CachedAttribution]]:
        """Iterate every live result (pending writes included).

        The key snapshot is taken under the lock; records are then read
        one by one, so consumers may interleave ``get``/``put`` calls.
        """
        with self._lock:
            if self.mode == "ro":
                self._refresh_locked()
            encoded_keys = list(self._index.keys()) \
                + [key for key in self._pending if key not in self._index]
        for encoded in encoded_keys:
            try:
                key = decode_key(encoded)
            except ValueError:
                continue
            value = self.get(key)
            if value is not None:
                yield key, value

    def artifact_items(self) -> Iterator[Tuple[CanonicalKey,
                                               CompiledLineage]]:
        """Iterate every live compiled-lineage artifact."""
        with self._lock:
            if self.mode == "ro":
                self._refresh_locked()
            encoded_keys = list(self._tree_index.keys()) \
                + [key for key in self._tree_pending
                   if key not in self._tree_index]
        for encoded in encoded_keys:
            try:
                key = decode_canonical_key(encoded)
            except ValueError:
                continue
            artifact = self.get_artifact(key)
            if artifact is not None:
                yield key, artifact

    def __len__(self) -> int:
        with self._lock:
            if not self._pending:
                return len(self._index)
            return len(self._index.keys() | self._pending.keys())

    def artifact_count(self) -> int:
        """Number of live compiled-lineage artifacts."""
        with self._lock:
            if not self._tree_pending:
                return len(self._tree_index)
            return len(self._tree_index.keys() | self._tree_pending.keys())

    def stats(self) -> Dict[str, object]:
        """Log-level counters plus the per-kind shape shared with DiskStore."""
        with self._lock:
            entries = len(self)
            artifacts = self.artifact_count()
            disk_bytes = self._file_size()
            return {
                "backend": "log",
                "path": self.path,
                "format_version": LOG_FORMAT_VERSION,
                "mode": self.mode,
                "entries": entries,
                "max_entries": self.max_entries,
                "disk_bytes": disk_bytes,
                "live_bytes": self.live_bytes,
                "garbage_bytes": self.garbage_bytes,
                "corrupt_records": self.corrupt_records,
                "truncated_bytes": self.truncated_bytes,
                "dropped_writes": self.dropped_writes,
                "compactions": self.compactions,
                "reclaimed_bytes": self.reclaimed_bytes,
                "kinds": {
                    "results": {"entries": entries,
                                "max_entries": self.max_entries},
                    "compiled_trees": {"entries": artifacts,
                                       "max_entries": self.max_artifacts},
                },
            }


# --------------------------------------------------------------------- #
# Consistent-hash sharding across store roots
# --------------------------------------------------------------------- #


def _ring_hash(text: str) -> int:
    return int.from_bytes(hashlib.sha1(text.encode("utf-8")).digest()[:8],
                          "big")


class ShardedStore:
    """Consistent-hash composition of N :class:`CacheStore` shards.

    Keys are routed by their position on a hash ring built from
    ``replicas`` virtual nodes per shard, so the mapping is stable
    across processes (it depends only on the shard count and replica
    constant) and *monotone* under growth: adding shard N+1 moves some
    keys **to the new shard** and never shuffles keys between existing
    shards -- the property that lets a deployment add store roots
    without invalidating the caches it already has.

    Any :class:`CacheStore` works as a shard (a ``ShardedStore`` of
    ``LogStore`` roots is the scale deployment; ``MemoryStore`` shards
    make tests hermetic).  Operations without a key (``flush``,
    ``items``, ``compact``, ``close``, ``stats``) fan out to every
    shard.
    """

    def __init__(self, stores: Sequence[CacheStore],
                 replicas: int = 64) -> None:
        if not stores:
            raise ValueError("ShardedStore needs at least one shard")
        if replicas < 1:
            raise ValueError("replicas must be positive")
        self.stores: List[CacheStore] = list(stores)
        self.replicas = replicas
        ring: List[Tuple[int, int]] = []
        for shard, _store in enumerate(self.stores):
            for replica in range(replicas):
                ring.append((_ring_hash(f"shard-{shard}:{replica}"), shard))
        ring.sort()
        self._ring = ring

    @classmethod
    def open(cls, roots: Sequence[str], backend: str = "log",
             replicas: int = 64, **kwargs) -> "ShardedStore":
        """Open one backend store per root directory (see :func:`open_store`)."""
        return cls([open_store(root, backend=backend, **kwargs)
                    for root in roots], replicas=replicas)

    def shard_of(self, encoded_key: str) -> int:
        """Ring position of an encoded key (stable across processes)."""
        target = _ring_hash(encoded_key)
        ring = self._ring
        low, high = 0, len(ring)
        while low < high:
            mid = (low + high) // 2
            if ring[mid][0] < target:
                low = mid + 1
            else:
                high = mid
        return ring[low % len(ring)][1]

    def _store_for(self, encoded_key: str) -> CacheStore:
        return self.stores[self.shard_of(encoded_key)]

    # -- keyed operations: route ---------------------------------------- #

    def get(self, key: ResultKey) -> Optional[CachedAttribution]:
        return self._store_for(encode_key(key)).get(key)

    def put(self, key: ResultKey, value: CachedAttribution) -> None:
        self._store_for(encode_key(key)).put(key, value)

    def get_artifact(self, key: CanonicalKey) -> Optional[CompiledLineage]:
        store = self._store_for(encode_canonical_key(key))
        if hasattr(store, "get_artifact"):
            return store.get_artifact(key)
        return None

    def put_artifact(self, key: CanonicalKey,
                     value: CompiledLineage) -> None:
        store = self._store_for(encode_canonical_key(key))
        if hasattr(store, "put_artifact"):
            store.put_artifact(key, value)

    # -- keyless operations: fan out ------------------------------------ #

    def flush(self) -> None:
        for store in self.stores:
            store.flush()

    def refresh(self) -> None:
        for store in self.stores:
            if hasattr(store, "refresh"):
                store.refresh()

    def compact(self) -> int:
        """Compact every shard that supports it; returns bytes reclaimed."""
        return sum(store.compact() for store in self.stores
                   if hasattr(store, "compact"))

    def close(self) -> None:
        for store in self.stores:
            if hasattr(store, "close"):
                store.close()

    def items(self) -> Iterator[Tuple[ResultKey, CachedAttribution]]:
        for store in self.stores:
            for pair in store.items():
                yield pair

    def artifact_items(self) -> Iterator[Tuple[CanonicalKey,
                                               CompiledLineage]]:
        for store in self.stores:
            if hasattr(store, "artifact_items"):
                for pair in store.artifact_items():
                    yield pair

    def __len__(self) -> int:
        return sum(len(store) for store in self.stores)

    def artifact_count(self) -> int:
        total = 0
        for store in self.stores:
            if hasattr(store, "artifact_count"):
                total += store.artifact_count()
            elif hasattr(store, "artifact_items"):
                total += sum(1 for _ in store.artifact_items())
        return total

    def stats(self) -> Dict[str, object]:
        shard_stats = [store.stats() for store in self.stores]
        entries = sum(int(stats.get("entries", 0)) for stats in shard_stats)
        artifacts = self.artifact_count()
        return {
            "backend": "sharded",
            "shard_count": len(self.stores),
            "replicas": self.replicas,
            "entries": entries,
            "disk_bytes": sum(int(stats.get("disk_bytes", 0))
                              for stats in shard_stats),
            "kinds": {
                "results": {"entries": entries},
                "compiled_trees": {"entries": artifacts},
            },
            "shards": shard_stats,
        }


# --------------------------------------------------------------------- #
# Backend selection and migration
# --------------------------------------------------------------------- #

STORE_BACKENDS = ("disk", "log")


def open_store(path: str, backend: str = "disk", shards: int = 1,
               max_entries: int = 65_536, **kwargs) -> CacheStore:
    """Open a persistent store by backend name (the CLI/config factory).

    ``backend`` selects :class:`~repro.engine.store.DiskStore`
    (``"disk"``, the legacy sharded-JSON tier) or :class:`LogStore`
    (``"log"``, the append-only record log).  ``shards > 1`` composes a
    :class:`ShardedStore` over ``<path>/root-<i>`` subdirectories, each
    holding one backend store with its share of ``max_entries``; extra
    keyword arguments go to the backend constructor (e.g. ``mode="auto"``
    for a log store that elects a single writer).
    """
    if backend not in STORE_BACKENDS:
        raise ValueError(f"unknown store backend {backend!r}; expected one "
                         f"of {STORE_BACKENDS}")
    if shards < 1:
        raise ValueError("store shards must be positive")
    if shards > 1:
        per_shard = max(1, max_entries // shards)
        roots = [os.path.join(path, f"root-{index:02d}")
                 for index in range(shards)]
        return ShardedStore.open(roots, backend=backend,
                                 max_entries=per_shard, **kwargs)
    if backend == "log":
        return LogStore(path, max_entries=max_entries, **kwargs)
    return DiskStore(path, max_entries=max_entries, **kwargs)


def resolve_store(store, backend: Optional[str] = None) -> \
        Optional[CacheStore]:
    """Resolve ``EngineConfig.store``: a path string opens its backend.

    An already-constructed :class:`CacheStore` (or ``None``) passes
    through untouched; a string is a store root opened via
    :func:`open_store` with ``backend`` (default ``"disk"``, the
    compatible legacy default).
    """
    if store is None or not isinstance(store, str):
        return store
    return open_store(store, backend=backend or "disk")


def migrate_store(source: CacheStore, destination: CacheStore
                  ) -> Tuple[int, int]:
    """Copy every result and artifact from ``source`` to ``destination``.

    The one-shot ``repro cache migrate`` path: a legacy
    :class:`DiskStore` (which stays fully readable) is drained into a
    :class:`LogStore`/:class:`ShardedStore` without recomputing
    anything.  Entries stream one at a time -- the migration never holds
    more than one decoded record beyond the destination's write buffer.
    Returns ``(results, artifacts)`` copied; the destination is flushed.
    """
    results = 0
    for key, value in source.items():
        destination.put(key, value)
        results += 1
    artifacts = 0
    if hasattr(source, "artifact_items") \
            and hasattr(destination, "put_artifact"):
        for key, artifact in source.artifact_items():
            destination.put_artifact(key, artifact)
            artifacts += 1
    destination.flush()
    return results, artifacts


__all__ = [
    "LOG_FORMAT_VERSION",
    "STORE_BACKENDS",
    "LogStore",
    "ShardedStore",
    "StoreLockedError",
    "migrate_store",
    "open_store",
    "resolve_store",
]
