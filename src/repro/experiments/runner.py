"""Timed algorithm adapters and the workload runner.

Every algorithm is wrapped behind the same interface: it receives a lineage
and a per-instance time budget and returns an :class:`AlgorithmResult` that
records success/failure, the wall-clock time, and the computed values (exact
or estimated Banzhaf values for all variables of the lineage).  Failures --
budget exhaustion, representation blow-ups -- are recorded, not raised, so
that success rates can be reported exactly like in the paper's Table 2.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.baselines.cnf_proxy import cnf_proxy_ranking
from repro.baselines.monte_carlo import monte_carlo_banzhaf_all
from repro.baselines.sig22 import Sig22Failure, sig22_banzhaf_all
from repro.boolean.dnf import DNF
from repro.core.adaban import ApproximationTimeout, adaban_all
from repro.core.exaban import exaban_all
from repro.core.ichiban import ichiban_topk
from repro.dtree.compile import (
    CompilationBudget,
    CompilationLimitReached,
    compile_dnf,
)
from repro.workloads.generators import LineageInstance
from repro.workloads.suite import Workload

#: Deep d-trees (one Shannon expansion per level) need head-room beyond
#: CPython's default recursion limit.
_RECURSION_LIMIT = 100_000


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of the evaluation protocol.

    The paper's per-instance budget is one hour on a large server; the
    defaults here are per-instance seconds appropriate for the synthetic
    workloads, and every benchmark prints the budget it used.
    """

    timeout_seconds: float = 5.0
    epsilon: float = 0.1
    mc_sample_factor: int = 50
    max_shannon_steps: Optional[int] = 200_000
    max_cnf_clauses: int = 2_000
    topk: Tuple[int, ...] = (5, 10)


@dataclass(frozen=True)
class AlgorithmResult:
    """Outcome of one algorithm on one instance."""

    algorithm: str
    instance: LineageInstance
    success: bool
    seconds: float
    values: Dict[int, Fraction] = field(default_factory=dict)
    failure_reason: str = ""

    def float_values(self) -> Dict[int, float]:
        """The value vector as floats (for reporting)."""
        return {key: float(value) for key, value in self.values.items()}


def _ensure_recursion_head_room() -> None:
    if sys.getrecursionlimit() < _RECURSION_LIMIT:
        sys.setrecursionlimit(_RECURSION_LIMIT)


def _run_exaban(lineage: DNF, config: ExperimentConfig) -> Dict[int, Fraction]:
    budget = CompilationBudget(max_shannon_steps=config.max_shannon_steps,
                               timeout_seconds=config.timeout_seconds)
    tree = compile_dnf(lineage, budget=budget)
    return {v: Fraction(value) for v, value in exaban_all(tree).items()}


def _run_sig22(lineage: DNF, config: ExperimentConfig) -> Dict[int, Fraction]:
    values = sig22_banzhaf_all(lineage,
                               timeout_seconds=config.timeout_seconds,
                               max_cnf_clauses=config.max_cnf_clauses)
    return {v: Fraction(value) for v, value in values.items()}


def _run_adaban(lineage: DNF, config: ExperimentConfig) -> Dict[int, Fraction]:
    results = adaban_all(lineage, epsilon=config.epsilon,
                         timeout_seconds=config.timeout_seconds)
    return {v: Fraction(result.estimate) for v, result in results.items()}


def _run_monte_carlo(lineage: DNF, config: ExperimentConfig
                     ) -> Dict[int, Fraction]:
    estimates = monte_carlo_banzhaf_all(
        lineage,
        num_samples=config.mc_sample_factor * max(1, len(lineage.variables)),
        timeout_seconds=config.timeout_seconds,
    )
    return {v: Fraction(estimate.estimate) for v, estimate in estimates.items()}


_RUNNERS: Dict[str, Callable[[DNF, ExperimentConfig], Dict[int, Fraction]]] = {
    "exaban": _run_exaban,
    "sig22": _run_sig22,
    "adaban": _run_adaban,
    "mc": _run_monte_carlo,
}

#: Algorithm names accepted by :func:`run_algorithm`.
ALGORITHMS: Tuple[str, ...] = tuple(sorted(_RUNNERS))

_FAILURE_EXCEPTIONS = (
    CompilationLimitReached,
    Sig22Failure,
    ApproximationTimeout,
    TimeoutError,
    MemoryError,
    RecursionError,
)


def run_algorithm(algorithm: str, instance: LineageInstance,
                  config: ExperimentConfig) -> AlgorithmResult:
    """Run one algorithm on one instance under the configured budget."""
    try:
        runner = _RUNNERS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        ) from None
    _ensure_recursion_head_room()
    started = time.monotonic()
    try:
        values = runner(instance.lineage, config)
    except _FAILURE_EXCEPTIONS as error:
        return AlgorithmResult(
            algorithm=algorithm,
            instance=instance,
            success=False,
            seconds=time.monotonic() - started,
            failure_reason=f"{type(error).__name__}: {error}",
        )
    return AlgorithmResult(
        algorithm=algorithm,
        instance=instance,
        success=True,
        seconds=time.monotonic() - started,
        values=values,
    )


def run_workloads(workloads: Sequence[Workload], algorithms: Sequence[str],
                  config: Optional[ExperimentConfig] = None
                  ) -> Dict[Tuple[str, str], List[AlgorithmResult]]:
    """Run every algorithm on every instance of every workload.

    Returns a mapping ``(workload name, algorithm name) -> results`` with one
    result per instance, in workload order.
    """
    if config is None:
        config = ExperimentConfig()
    results: Dict[Tuple[str, str], List[AlgorithmResult]] = {}
    for workload in workloads:
        for algorithm in algorithms:
            key = (workload.name, algorithm)
            results[key] = [run_algorithm(algorithm, instance, config)
                            for instance in workload.instances]
    return results


def exact_ground_truth(instance: LineageInstance,
                       timeout_seconds: float = 60.0) -> Optional[Dict[int, int]]:
    """Exact Banzhaf values with a generous budget (accuracy ground truth).

    Returns ``None`` when even the generous budget is not enough.
    """
    config = ExperimentConfig(timeout_seconds=timeout_seconds,
                              max_shannon_steps=None)
    result = run_algorithm("exaban", instance, config)
    if not result.success:
        return None
    return {v: int(value) for v, value in result.values.items()}


def topk_with_ichiban(instance: LineageInstance, k: int,
                      config: ExperimentConfig) -> Optional[List[int]]:
    """IchiBan top-k variable ids for one instance (``None`` on failure)."""
    _ensure_recursion_head_room()
    try:
        ranking = ichiban_topk(instance.lineage, k=k, epsilon=config.epsilon,
                               timeout_seconds=config.timeout_seconds)
    except _FAILURE_EXCEPTIONS:
        return None
    return [entry.variable for entry in ranking]


def topk_with_cnf_proxy(instance: LineageInstance, k: int,
                        config: ExperimentConfig) -> Optional[List[int]]:
    """CNF-proxy top-k variable ids for one instance (``None`` on failure)."""
    try:
        ranking = cnf_proxy_ranking(instance.lineage,
                                    max_cnf_clauses=config.max_cnf_clauses)
    except _FAILURE_EXCEPTIONS:
        return None
    return [variable for variable, _ in ranking[:k]]


def topk_from_values(values: Mapping[int, Fraction], k: int) -> List[int]:
    """Top-k variable ids from a value vector (ties broken by variable id)."""
    ordered = sorted(values.items(), key=lambda item: (-item[1], item[0]))
    return [variable for variable, _ in ordered[:k]]
