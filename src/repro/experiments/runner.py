"""Timed algorithm adapters and the workload runner.

Every algorithm is wrapped behind the same interface: it receives a lineage
and a per-instance time budget and returns an :class:`AlgorithmResult` that
records success/failure, the wall-clock time, and the computed values (exact
or estimated Banzhaf values for all variables of the lineage).  Failures --
budget exhaustion, representation blow-ups -- are recorded, not raised, so
that success rates can be reported exactly like in the paper's Table 2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.baselines.cnf_proxy import cnf_proxy_ranking
from repro.baselines.monte_carlo import monte_carlo_banzhaf_all
from repro.baselines.sig22 import Sig22Failure, sig22_banzhaf_all
from repro.boolean.dnf import DNF
from repro.core.adaban import ApproximationTimeout, adaban_all
from repro.core.exaban import exaban_all
from repro.core.ichiban import ichiban_topk, ranked_from_intervals
from repro.dtree.compile import (
    CompilationBudget,
    CompilationLimitReached,
    compile_dnf,
)
from repro.engine import Engine, EngineConfig, ensure_recursion_head_room
from repro.engine.store import CacheStore
from repro.workloads.generators import LineageInstance
from repro.workloads.suite import Workload


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of the evaluation protocol.

    The paper's per-instance budget is one hour on a large server; the
    defaults here are per-instance seconds appropriate for the synthetic
    workloads, and every benchmark prints the budget it used.
    """

    timeout_seconds: float = 5.0
    epsilon: float = 0.1
    mc_sample_factor: int = 50
    max_shannon_steps: Optional[int] = 200_000
    max_cnf_clauses: int = 2_000
    topk: Tuple[int, ...] = (5, 10)


@dataclass(frozen=True)
class AlgorithmResult:
    """Outcome of one algorithm on one instance."""

    algorithm: str
    instance: LineageInstance
    success: bool
    seconds: float
    values: Dict[int, Fraction] = field(default_factory=dict)
    failure_reason: str = ""

    def float_values(self) -> Dict[int, float]:
        """The value vector as floats (for reporting)."""
        return {key: float(value) for key, value in self.values.items()}


_ensure_recursion_head_room = ensure_recursion_head_room


def _run_exaban(lineage: DNF, config: ExperimentConfig) -> Dict[int, Fraction]:
    budget = CompilationBudget(max_shannon_steps=config.max_shannon_steps,
                               timeout_seconds=config.timeout_seconds)
    tree = compile_dnf(lineage, budget=budget)
    return {v: Fraction(value) for v, value in exaban_all(tree).items()}


def _run_sig22(lineage: DNF, config: ExperimentConfig) -> Dict[int, Fraction]:
    values = sig22_banzhaf_all(lineage,
                               timeout_seconds=config.timeout_seconds,
                               max_cnf_clauses=config.max_cnf_clauses)
    return {v: Fraction(value) for v, value in values.items()}


def _run_adaban(lineage: DNF, config: ExperimentConfig) -> Dict[int, Fraction]:
    results = adaban_all(lineage, epsilon=config.epsilon,
                         timeout_seconds=config.timeout_seconds)
    return {v: Fraction(result.estimate) for v, result in results.items()}


def _run_monte_carlo(lineage: DNF, config: ExperimentConfig
                     ) -> Dict[int, Fraction]:
    estimates = monte_carlo_banzhaf_all(
        lineage,
        num_samples=config.mc_sample_factor * max(1, len(lineage.variables)),
        timeout_seconds=config.timeout_seconds,
    )
    return {v: Fraction(estimate.estimate) for v, estimate in estimates.items()}


#: Engines shared across ``run_algorithm`` calls with the same config, so
#: the ``engine`` and ``topk`` algorithms benefit from their lineage
#: caches across the instances of a workload (isomorphic lineages compile
#: once).
_ENGINE_POOL: Dict[Tuple[ExperimentConfig, int, str], Engine] = {}


def clear_engine_pool() -> None:
    """Drop all shared engines (and their caches).

    :func:`run_workloads` calls this before an ``engine`` run so its
    reported timings describe that run alone; call it manually when
    benchmarking :func:`run_algorithm` with ``"engine"`` directly and
    cross-call cache warmth is not wanted.
    """
    _ENGINE_POOL.clear()


def engine_for_config(config: ExperimentConfig,
                      max_workers: int = 0,
                      method: str = "auto") -> Engine:
    """The shared batched engine for one experiment configuration.

    With the default ``method="auto"``: exact ExaBan under the experiment's
    compilation budget, falling back to AdaBan with the experiment's epsilon
    -- the paper's Table 4/6 fallback story as a single algorithm entry.
    ``method="topk"`` instead runs IchiBan's top-k-aware refinement with
    ``k = config.topk[0]`` (the Table 8/9 interactive use case).

    The engine (and its lineage cache) is shared by every
    :func:`run_algorithm` call with the same config in this process --
    deliberate, so the ``engine``/``topk`` algorithms show cache warmth
    across a workload's instances; see :func:`clear_engine_pool` for when
    that history is unwanted.
    """
    key = (config, max_workers, method)
    engine = _ENGINE_POOL.get(key)
    if engine is None:
        engine = Engine(EngineConfig(
            method=method,
            epsilon=config.epsilon,
            max_shannon_steps=config.max_shannon_steps,
            timeout_seconds=config.timeout_seconds,
            max_workers=max_workers,
            k=config.topk[0] if method == "topk" else None,
        ))
        _ENGINE_POOL[key] = engine
    return engine


def _run_engine(lineage: DNF, config: ExperimentConfig) -> Dict[int, Fraction]:
    engine = engine_for_config(config)
    return engine.attribute_lineages([lineage])[0].values


def _run_topk(lineage: DNF, config: ExperimentConfig) -> Dict[int, Fraction]:
    """IchiBan top-k through the batched engine (``k = config.topk[0]``).

    Anytime semantics: budget exhaustion degrades to best-so-far interval
    midpoints instead of failing (visible as ``partial_results`` in the
    engine stats).  The returned values are interval midpoints for all
    variables; when the certified top-k *set* is wanted, read it through
    :meth:`repro.engine.engine.Engine.rank` (or
    :func:`repro.core.ichiban.ranked_from_bounds` on the result bounds),
    which order by the interval evidence instead of raw midpoints.
    """
    engine = engine_for_config(config, method="topk")
    return engine.attribute_lineages([lineage])[0].values


_RUNNERS: Dict[str, Callable[[DNF, ExperimentConfig], Dict[int, Fraction]]] = {
    "exaban": _run_exaban,
    "sig22": _run_sig22,
    "adaban": _run_adaban,
    "mc": _run_monte_carlo,
    "engine": _run_engine,
    "topk": _run_topk,
}

#: Algorithm names accepted by :func:`run_algorithm`.
ALGORITHMS: Tuple[str, ...] = tuple(sorted(_RUNNERS))

_FAILURE_EXCEPTIONS = (
    CompilationLimitReached,
    Sig22Failure,
    ApproximationTimeout,
    TimeoutError,
    MemoryError,
    RecursionError,
)


def run_algorithm(algorithm: str, instance: LineageInstance,
                  config: ExperimentConfig) -> AlgorithmResult:
    """Run one algorithm on one instance under the configured budget."""
    try:
        runner = _RUNNERS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        ) from None
    _ensure_recursion_head_room()
    started = time.monotonic()
    try:
        values = runner(instance.lineage, config)
    except _FAILURE_EXCEPTIONS as error:
        return AlgorithmResult(
            algorithm=algorithm,
            instance=instance,
            success=False,
            seconds=time.monotonic() - started,
            failure_reason=f"{type(error).__name__}: {error}",
        )
    return AlgorithmResult(
        algorithm=algorithm,
        instance=instance,
        success=True,
        seconds=time.monotonic() - started,
        values=values,
    )


def run_workloads(workloads: Sequence[Workload], algorithms: Sequence[str],
                  config: Optional[ExperimentConfig] = None
                  ) -> Dict[Tuple[str, str], List[AlgorithmResult]]:
    """Run every algorithm on every instance of every workload.

    Returns a mapping ``(workload name, algorithm name) -> results`` with one
    result per instance, in workload order.
    """
    if config is None:
        config = ExperimentConfig()
    if "engine" in algorithms or "topk" in algorithms:
        # Fresh engines per run_workloads call: repeated runs must report
        # the same cache behavior, not ever-warmer timings.
        clear_engine_pool()
    results: Dict[Tuple[str, str], List[AlgorithmResult]] = {}
    for workload in workloads:
        for algorithm in algorithms:
            key = (workload.name, algorithm)
            results[key] = [run_algorithm(algorithm, instance, config)
                            for instance in workload.instances]
    return results


def run_workload_batched(workload: Workload,
                         config: Optional[ExperimentConfig] = None,
                         max_workers: int = 0,
                         engine: Optional[Engine] = None
                         ) -> Tuple[List[AlgorithmResult], Dict[str, object]]:
    """Run a whole workload through one batched engine call.

    Unlike :func:`run_algorithm`, which measures each instance in isolation
    (the paper's per-instance protocol), this hands *all* instances of the
    workload to :meth:`repro.engine.Engine.attribute_lineages` at once, so
    isomorphic lineages are deduplicated, repeated structures hit the cache,
    and independent instances can fan out over ``max_workers`` processes.

    By default a *fresh* engine is built, so the reported stats and timings
    describe exactly this batch and repeated calls are reproducible; pass
    ``engine`` explicitly (e.g. from :func:`engine_for_config`) to measure
    warm-cache behavior instead.

    If the whole batch fails (one pathological lineage defeats both the
    exact budget and the AdaBan fallback), the run degrades to the
    per-instance protocol so every other instance still gets a result and
    the failure is recorded per instance, not raised.

    Per-instance wall-clock is not observable inside a batch; the reported
    ``seconds`` of each result is the batch total divided by the number of
    instances.  Returns the results plus the engine's stats snapshot.
    """
    if config is None:
        config = ExperimentConfig()
    if engine is None:
        engine = Engine(EngineConfig(
            method="auto",
            epsilon=config.epsilon,
            max_shannon_steps=config.max_shannon_steps,
            timeout_seconds=config.timeout_seconds,
            max_workers=max_workers,
        ))
    engine.reset_stats()
    _ensure_recursion_head_room()
    started = time.monotonic()
    try:
        attributions = engine.attribute_lineages(
            [instance.lineage for instance in workload.instances])
    except _FAILURE_EXCEPTIONS:
        # Degrade to the per-instance protocol.  Work completed before the
        # failure was cached incrementally, so only the failing instances
        # are actually recomputed; the stats are reset so the returned
        # snapshot describes the per-instance pass, not a double count.
        engine.reset_stats()
        results = [
            run_algorithm_with_engine(instance, config, engine)
            for instance in workload.instances
        ]
        return results, engine.stats.as_dict()
    elapsed = time.monotonic() - started
    per_instance = elapsed / max(1, len(workload.instances))
    results = [
        AlgorithmResult(
            algorithm="engine",
            instance=instance,
            success=True,
            seconds=per_instance,
            values=dict(attribution.values),
        )
        for instance, attribution in zip(workload.instances, attributions)
    ]
    return results, engine.stats.as_dict()


@dataclass(frozen=True)
class EpochReport:
    """Stats of one workload epoch served by :func:`run_workload_epochs`."""

    epoch: int
    seconds: float
    stats: Dict[str, object]


def run_workload_epochs(workload: Workload,
                        epochs: int = 3,
                        config: Optional[ExperimentConfig] = None,
                        store: Optional[CacheStore] = None,
                        warm_start: bool = False,
                        engine: Optional[Engine] = None
                        ) -> Tuple[List[EpochReport], List]:
    """Serve several epochs of repeat traffic through one engine.

    The workload's instances are attributed once per epoch -- the same
    query log arriving repeatedly, as a serving deployment sees it.  The
    engine's stats are reset per epoch, so each :class:`EpochReport`
    describes exactly that epoch: the first epoch of a cold engine is all
    misses, later epochs are all memory hits, and the first epoch of a
    *store-backed fresh engine* (a new process over a persisted cache) is
    served from the store tier -- the warm-start scenario measured by
    ``benchmarks/bench_cache_warmstart.py``.

    Parameters
    ----------
    workload:
        The instances to serve each epoch (fact-space lineages; the
        engine canonicalizes internally).
    epochs:
        Number of times the whole workload is replayed.
    config:
        Experiment budgets/epsilon (default :class:`ExperimentConfig`).
    store:
        Optional persistent tier for the engine (ignored when ``engine``
        is passed and already has one).
    warm_start:
        Preload the store into the engine's memory tiers before the
        first epoch (requires a store).  This loads results *and*
        compiled-lineage artifacts, so the warm process not only serves
        repeated results from memory but also resumes partial
        compilations a previous process persisted mid-refinement.
    engine:
        Serve through this engine instead of building a fresh ``auto``
        one -- e.g. to measure an already-warm process.

    Returns
    -------
    (reports, first_epoch_attributions):
        One report per epoch, plus the first epoch's
        :class:`~repro.engine.engine.LineageAttribution` list (fact-space
        values) for exactness comparisons between cold and warm runs.
    """
    if config is None:
        config = ExperimentConfig()
    if engine is None:
        engine = Engine(EngineConfig(
            method="auto",
            epsilon=config.epsilon,
            max_shannon_steps=config.max_shannon_steps,
            timeout_seconds=config.timeout_seconds,
            store=store,
        ))
    elif store is not None and engine.store is None:
        engine.store = store
    if warm_start:
        engine.load_cache()
    _ensure_recursion_head_room()
    lineages = [instance.lineage for instance in workload.instances]
    reports: List[EpochReport] = []
    first: List = []
    for epoch in range(max(1, epochs)):
        engine.reset_stats()
        started = time.monotonic()
        attributions = engine.attribute_lineages(lineages)
        elapsed = time.monotonic() - started
        if epoch == 0:
            first = attributions
        reports.append(EpochReport(epoch=epoch, seconds=elapsed,
                                   stats=engine.stats.as_dict()))
    return reports, first


def run_algorithm_with_engine(instance: LineageInstance,
                              config: ExperimentConfig,
                              engine: Engine) -> AlgorithmResult:
    """Run one instance through a specific engine, recording failures."""
    _ensure_recursion_head_room()
    started = time.monotonic()
    try:
        (attribution,) = engine.attribute_lineages([instance.lineage])
    except _FAILURE_EXCEPTIONS as error:
        return AlgorithmResult(
            algorithm="engine",
            instance=instance,
            success=False,
            seconds=time.monotonic() - started,
            failure_reason=f"{type(error).__name__}: {error}",
        )
    return AlgorithmResult(
        algorithm="engine",
        instance=instance,
        success=True,
        seconds=time.monotonic() - started,
        values=dict(attribution.values),
    )


def exact_ground_truth(instance: LineageInstance,
                       timeout_seconds: float = 60.0) -> Optional[Dict[int, int]]:
    """Exact Banzhaf values with a generous budget (accuracy ground truth).

    Returns ``None`` when even the generous budget is not enough.
    """
    config = ExperimentConfig(timeout_seconds=timeout_seconds,
                              max_shannon_steps=None)
    result = run_algorithm("exaban", instance, config)
    if not result.success:
        return None
    return {v: int(value) for v, value in result.values.items()}


def topk_with_ichiban(instance: LineageInstance, k: int,
                      config: ExperimentConfig,
                      allow_partial: bool = False) -> Optional[List[int]]:
    """IchiBan top-k variable ids for one instance (``None`` on failure).

    With ``allow_partial=True`` budget exhaustion degrades gracefully: the
    best-so-far intervals carried by
    :class:`~repro.core.ichiban.IchiBanTimeout` still order the variables,
    so an uncertified top-k is returned instead of ``None``.  The default
    keeps failures as ``None`` because the Table 8 precision metric -- like
    the paper's -- is defined over converged runs only; the serving path
    (:class:`repro.engine.Engine` under ``method="topk"``) always degrades
    and reports partials via its stats.
    """
    _ensure_recursion_head_room()
    try:
        ranking = ichiban_topk(instance.lineage, k=k, epsilon=config.epsilon,
                               timeout_seconds=config.timeout_seconds)
    except _FAILURE_EXCEPTIONS as error:
        intervals = getattr(error, "intervals", None)
        if allow_partial and intervals:
            return [entry.variable
                    for entry in ranked_from_intervals(intervals, k)]
        return None
    return [entry.variable for entry in ranking]


def topk_with_cnf_proxy(instance: LineageInstance, k: int,
                        config: ExperimentConfig) -> Optional[List[int]]:
    """CNF-proxy top-k variable ids for one instance (``None`` on failure)."""
    try:
        ranking = cnf_proxy_ranking(instance.lineage,
                                    max_cnf_clauses=config.max_cnf_clauses)
    except _FAILURE_EXCEPTIONS:
        return None
    return [variable for variable, _ in ranking[:k]]


def topk_from_values(values: Mapping[int, Fraction], k: int) -> List[int]:
    """Top-k variable ids from a value vector (ties broken by variable id)."""
    ordered = sorted(values.items(), key=lambda item: (-item[1], item[0]))
    return [variable for variable, _ in ordered[:k]]
