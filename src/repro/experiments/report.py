"""Plain-text rendering of experiment tables and series.

The benchmark targets print their tables with these helpers so that the
output of ``pytest benchmarks/ --benchmark-only`` can be compared line by
line with the paper's tables (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_value(value: object, precision: int = 4) -> str:
    """Format one table cell: floats rounded, everything else via ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0:
            return "0"
        if abs(value) < 10 ** -precision:
            return f"{value:.2e}"
        return f"{value:.{precision}g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render rows as a fixed-width text table."""
    materialized = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_mapping_table(rows: Sequence[Mapping[str, object]],
                         columns: Sequence[str], title: str = "") -> str:
    """Render a list of dict rows, selecting and ordering ``columns``."""
    return render_table(columns,
                        [[row.get(column, "") for column in columns]
                         for row in rows],
                        title=title)


def render_series(name: str, points: Sequence[tuple[float, float]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render a data series (used for the figure benchmarks)."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in points:
        lines.append(f"  {format_value(float(x), 4):>12}  {format_value(float(y), 4)}")
    return "\n".join(lines)
