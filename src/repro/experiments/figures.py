"""Reproduction of the paper's figures (Figures 4 and 5) as data series.

Figures are reproduced as the numeric series behind the plots: the benchmark
targets print them as text tables so the shapes (success rate falling with
lineage size; AdaBan's monotone vs MC's erratic error decay) can be compared
with the paper without a plotting stack.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.monte_carlo import monte_carlo_trace
from repro.core.adaban import adaban_trace
from repro.experiments.runner import AlgorithmResult, ExperimentConfig, run_algorithm
from repro.workloads.generators import LineageInstance

#: Size bins used by Figure 4 (scaled down from the paper's 100..3200 bins to
#: match the synthetic workload sizes).
DEFAULT_BINS: Tuple[Tuple[int, int], ...] = (
    (0, 10), (10, 20), (20, 40), (40, 80), (80, 160), (160, 320),
)


@dataclass(frozen=True)
class SizeBinRow:
    """One bar of Figure 4: a size bin with success rate and time range."""

    lower: int
    upper: int
    instances: int
    success_rate: float
    min_seconds: float
    max_seconds: float

    def label(self) -> str:
        """The ``(lower, upper]`` bin label used on the figure's x axis."""
        return f"({self.lower},{self.upper}]"


def _bin_of(value: int, bins: Sequence[Tuple[int, int]]) -> Optional[Tuple[int, int]]:
    for lower, upper in bins:
        if lower < value <= upper:
            return (lower, upper)
    return None


def figure4_size_breakdown(results: Sequence[AlgorithmResult],
                           group_by: str = "variables",
                           bins: Sequence[Tuple[int, int]] = DEFAULT_BINS
                           ) -> List[SizeBinRow]:
    """Figure 4: ExaBan success rate and time range grouped by lineage size.

    ``group_by`` is ``"variables"`` or ``"clauses"`` (the figure's two
    panels).
    """
    if group_by not in ("variables", "clauses"):
        raise ValueError("group_by must be 'variables' or 'clauses'")
    grouped: Dict[Tuple[int, int], List[AlgorithmResult]] = {}
    for result in results:
        size = (result.instance.num_variables if group_by == "variables"
                else result.instance.num_clauses)
        bin_key = _bin_of(size, bins)
        if bin_key is not None:
            grouped.setdefault(bin_key, []).append(result)
    rows = []
    for (lower, upper) in bins:
        bucket = grouped.get((lower, upper), [])
        if not bucket:
            continue
        successes = [r for r in bucket if r.success]
        times = [r.seconds for r in successes]
        rows.append(SizeBinRow(
            lower=lower,
            upper=upper,
            instances=len(bucket),
            success_rate=len(successes) / len(bucket),
            min_seconds=min(times) if times else float("nan"),
            max_seconds=max(times) if times else float("nan"),
        ))
    return rows


@dataclass(frozen=True)
class ConvergencePoint:
    """One point of a Figure 5 convergence curve.

    ``certified_gap`` is only meaningful for AdaBan points: it is the
    smallest relative error the interval certifies at that time, and it is
    the quantity that is guaranteed to be monotone.
    """

    seconds: float
    observed_error: float
    certified_gap: float = float("nan")


@dataclass(frozen=True)
class ConvergenceTrace:
    """The Figure 5 curves of one instance/variable pair."""

    instance: str
    variable: int
    exact_value: int
    adaban: Tuple[ConvergencePoint, ...]
    monte_carlo: Tuple[ConvergencePoint, ...]

    def final_errors(self) -> Tuple[float, float]:
        """The last observed error of (AdaBan, MC)."""
        adaban_error = self.adaban[-1].observed_error if self.adaban else float("nan")
        mc_error = (self.monte_carlo[-1].observed_error
                    if self.monte_carlo else float("nan"))
        return adaban_error, mc_error


def _observed_error(estimate: float, exact: int) -> float:
    if exact == 0:
        return abs(estimate)
    return abs(exact - estimate) / exact


def figure5_convergence(instance: LineageInstance, variable: Optional[int] = None,
                        config: Optional[ExperimentConfig] = None,
                        mc_samples: int = 2_000,
                        max_adaban_steps: int = 5_000,
                        seed: int = 0) -> Optional[ConvergenceTrace]:
    """Figure 5: observed error over time for AdaBan and MC on one instance.

    The variable defaults to the one with the largest exact Banzhaf value
    (a representative pick, as in the paper's selection of variables from
    hard lineages).  Returns ``None`` when the exact value cannot be obtained
    within the budget.
    """
    if config is None:
        config = ExperimentConfig()
    exact_result = run_algorithm(
        "exaban", instance,
        ExperimentConfig(timeout_seconds=config.timeout_seconds * 4,
                         max_shannon_steps=None))
    if not exact_result.success:
        return None
    exact_values = {v: int(value) for v, value in exact_result.values.items()}
    if variable is None:
        variable = max(exact_values, key=lambda v: (exact_values[v], -v))
    exact_value = exact_values[variable]

    adaban_points = []
    for elapsed, interval in adaban_trace(instance.lineage, variable,
                                          max_steps=max_adaban_steps):
        estimate = float(interval.midpoint())
        adaban_points.append(ConvergencePoint(
            seconds=elapsed,
            observed_error=_observed_error(estimate, exact_value),
            certified_gap=float(interval.relative_gap()),
        ))
        if interval.is_point():
            break

    mc_points = []
    rng = random.Random(seed)
    for elapsed, estimate in monte_carlo_trace(instance.lineage, variable,
                                               num_samples=mc_samples, rng=rng):
        mc_points.append(ConvergencePoint(
            seconds=elapsed,
            observed_error=_observed_error(float(estimate), exact_value)))

    return ConvergenceTrace(
        instance=instance.label(),
        variable=variable,
        exact_value=exact_value,
        adaban=tuple(adaban_points),
        monte_carlo=tuple(mc_points),
    )


def adaban_error_is_monotone(trace: ConvergenceTrace,
                             tolerance: float = 1e-9) -> bool:
    """``True`` iff AdaBan's certified relative error never increases.

    The certified error (``certified_gap``) is the quantity the paper
    contrasts with Monte Carlo: each refinement step can only shrink the
    interval, so the certified error decreases monotonically, whereas the MC
    estimate's observed error fluctuates.
    """
    previous = float("inf")
    for point in trace.adaban:
        if point.certified_gap > previous + tolerance:
            return False
        previous = point.certified_gap
    return True
