"""Experiment harness: runners, metrics, and table/figure reproduction.

The harness mirrors the paper's evaluation protocol (Section 5):

* an *instance* is the computation of the Banzhaf values of all variables of
  one lineage by one algorithm;
* each instance runs under a per-instance time budget (the paper uses one
  hour; the synthetic workloads here use seconds) and either *succeeds* or
  *fails*;
* runtimes are reported as means and percentiles over instances, accuracy as
  the l1 distance between normalized value vectors, and top-k quality as
  precision@k against the exact ground truth.

* :mod:`repro.experiments.runner` -- algorithm adapters and the timed runner;
* :mod:`repro.experiments.metrics` -- percentiles, l1 error, precision@k;
* :mod:`repro.experiments.tables` -- one function per paper table;
* :mod:`repro.experiments.figures` -- data series for the paper's figures;
* :mod:`repro.experiments.report` -- plain-text rendering of tables/series.
"""

from repro.experiments.metrics import (
    l1_normalized_error,
    percentile,
    precision_at_k,
    summarize_times,
)
from repro.experiments.runner import (
    ALGORITHMS,
    AlgorithmResult,
    ExperimentConfig,
    run_algorithm,
    run_workloads,
)

__all__ = [
    "ALGORITHMS",
    "AlgorithmResult",
    "ExperimentConfig",
    "l1_normalized_error",
    "percentile",
    "precision_at_k",
    "run_algorithm",
    "run_workloads",
    "summarize_times",
]
