"""Metrics used in the paper's evaluation.

* runtime summaries: mean, median and the p50/p75/p90/p95/p99/max percentiles
  reported in Tables 3-6 and 9;
* the l1 distance between normalized Banzhaf vectors (Table 7);
* precision@k of a reported top-k set against the ground-truth top-k set
  (Table 8), counting ties in the ground truth generously, exactly as the
  standard measure does.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Sequence, Union

Number = Union[int, float, Fraction]


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction`` percentile (0..1) using nearest-rank interpolation."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = fraction * (len(ordered) - 1)
    lower_index = int(position)
    upper_index = min(lower_index + 1, len(ordered) - 1)
    weight = position - lower_index
    return float(ordered[lower_index] * (1 - weight)
                 + ordered[upper_index] * weight)


def summarize_times(times: Sequence[float]) -> Dict[str, float]:
    """Mean and the paper's percentile columns for a list of runtimes."""
    if not times:
        return {key: float("nan") for key in
                ("mean", "p50", "p75", "p90", "p95", "p99", "max")}
    return {
        "mean": sum(times) / len(times),
        "p50": percentile(times, 0.50),
        "p75": percentile(times, 0.75),
        "p90": percentile(times, 0.90),
        "p95": percentile(times, 0.95),
        "p99": percentile(times, 0.99),
        "max": max(times),
    }


def normalize_vector(values: Mapping[int, Number]) -> Dict[int, Fraction]:
    """Normalize a value vector to sum to 1 (all-zero stays all-zero)."""
    total = Fraction(0)
    for value in values.values():
        total += Fraction(value)
    if total == 0:
        return {key: Fraction(0) for key in values}
    return {key: Fraction(value) / total for key, value in values.items()}


def l1_normalized_error(estimated: Mapping[int, Number],
                        exact: Mapping[int, Number]) -> float:
    """l1 distance between the normalized estimate and the normalized truth.

    Missing keys on either side are treated as zeros, so an algorithm that
    fails to score some facts is penalized rather than rewarded.
    """
    keys = set(estimated) | set(exact)
    normalized_estimate = normalize_vector(
        {key: estimated.get(key, 0) for key in keys})
    normalized_exact = normalize_vector({key: exact.get(key, 0) for key in keys})
    distance = Fraction(0)
    for key in keys:
        distance += abs(normalized_estimate[key] - normalized_exact[key])
    return float(distance)


def ground_truth_topk(exact: Mapping[int, Number], k: int) -> set[int]:
    """The ground-truth top-k set, extended to include ties at the boundary."""
    if k <= 0:
        raise ValueError("k must be positive")
    ordered = sorted(exact.items(), key=lambda item: (-Fraction(item[1]), item[0]))
    if len(ordered) <= k:
        return {key for key, _ in ordered}
    threshold = Fraction(ordered[k - 1][1])
    return {key for key, value in ordered if Fraction(value) >= threshold}


def precision_at_k(reported: Iterable[int], exact: Mapping[int, Number],
                   k: int) -> float:
    """Fraction of the reported top-k that belongs to the ground-truth top-k.

    Ties in the ground truth at the k-th value are counted as correct (any of
    the tied facts is a legitimate member of the top-k), matching how the
    paper evaluates precision on workloads with many equal Banzhaf values.
    """
    reported_list = list(reported)[:k]
    if not reported_list:
        return 0.0
    truth = ground_truth_topk(exact, k)
    hits = sum(1 for key in reported_list if key in truth)
    return hits / len(reported_list)


def kendall_tau_distance(left: Sequence[int], right: Sequence[int]) -> float:
    """Normalized Kendall tau distance between two rankings of the same items.

    Used by the ablation benchmarks to compare heuristic rankings; 0 means
    identical order, 1 means reversed order.
    """
    if set(left) != set(right):
        raise ValueError("rankings must be over the same items")
    if len(left) < 2:
        return 0.0
    position = {item: index for index, item in enumerate(right)}
    discordant = 0
    total = 0
    for i in range(len(left)):
        for j in range(i + 1, len(left)):
            total += 1
            if position[left[i]] > position[left[j]]:
                discordant += 1
    return discordant / total
