"""Reproduction of the paper's tables (Tables 1-9).

Each function consumes the raw results of :func:`repro.experiments.runner.
run_workloads` (plus ground truth where needed) and returns a list of dict
rows; the corresponding benchmark target renders the rows with
:mod:`repro.experiments.report` and asserts the qualitative claims the paper
makes about the table (who wins, who fails where).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.metrics import (
    l1_normalized_error,
    precision_at_k,
    summarize_times,
)
from repro.experiments.runner import (
    AlgorithmResult,
    ExperimentConfig,
    exact_ground_truth,
    run_algorithm,
    topk_from_values,
    topk_with_cnf_proxy,
    topk_with_ichiban,
)
from repro.workloads.generators import LineageInstance
from repro.workloads.suite import Workload

ResultMap = Mapping[Tuple[str, str], Sequence[AlgorithmResult]]


# --------------------------------------------------------------------------- #
# Table 1
# --------------------------------------------------------------------------- #

def table1_dataset_statistics(workloads: Sequence[Workload]) -> List[Dict[str, object]]:
    """Table 1: per-dataset statistics of the lineage instances."""
    rows = []
    for workload in workloads:
        stats = workload.statistics()
        queries = {instance.query for instance in workload.instances}
        rows.append({
            "dataset": workload.name,
            "queries": len(queries),
            "lineages": stats["count"],
            "avg_vars": stats["avg_vars"],
            "max_vars": stats["max_vars"],
            "avg_clauses": stats["avg_clauses"],
            "max_clauses": stats["max_clauses"],
        })
    return rows


# --------------------------------------------------------------------------- #
# Table 2
# --------------------------------------------------------------------------- #

def _query_success_rate(results: Sequence[AlgorithmResult]) -> float:
    by_query: Dict[str, List[bool]] = defaultdict(list)
    for result in results:
        by_query[result.instance.query].append(result.success)
    if not by_query:
        return float("nan")
    fully_successful = sum(1 for outcomes in by_query.values() if all(outcomes))
    return fully_successful / len(by_query)


def _lineage_success_rate(results: Sequence[AlgorithmResult]) -> float:
    if not results:
        return float("nan")
    return sum(1 for result in results if result.success) / len(results)


def table2_success_rates(results: ResultMap,
                         algorithms: Sequence[str]) -> List[Dict[str, object]]:
    """Table 2: query and lineage success rates per dataset and algorithm."""
    rows = []
    datasets = sorted({workload for workload, _ in results})
    for dataset in datasets:
        for algorithm in algorithms:
            algorithm_results = results.get((dataset, algorithm), [])
            rows.append({
                "dataset": dataset,
                "algorithm": algorithm,
                "query_success_rate": _query_success_rate(algorithm_results),
                "lineage_success_rate": _lineage_success_rate(algorithm_results),
            })
    return rows


# --------------------------------------------------------------------------- #
# Tables 3 and 4 (exact computation)
# --------------------------------------------------------------------------- #

def _index_by_instance(results: Sequence[AlgorithmResult]
                       ) -> Dict[str, AlgorithmResult]:
    return {result.instance.label(): result for result in results}


def table3_exact_runtime(results: ResultMap) -> List[Dict[str, object]]:
    """Table 3: ExaBan vs Sig22 runtimes on instances where Sig22 succeeds."""
    rows = []
    datasets = sorted({workload for workload, _ in results})
    for dataset in datasets:
        sig22 = _index_by_instance(results.get((dataset, "sig22"), []))
        exaban = _index_by_instance(results.get((dataset, "exaban"), []))
        common = [label for label, result in sig22.items()
                  if result.success and label in exaban and exaban[label].success]
        for algorithm, indexed in (("exaban", exaban), ("sig22", sig22)):
            times = [indexed[label].seconds for label in common]
            row = {"dataset": dataset, "algorithm": algorithm,
                   "instances": len(common)}
            row.update(summarize_times(times))
            rows.append(row)
    return rows


def table4_exaban_when_sig22_fails(results: ResultMap) -> List[Dict[str, object]]:
    """Table 4: ExaBan success rate and runtime where Sig22 fails."""
    rows = []
    datasets = sorted({workload for workload, _ in results})
    for dataset in datasets:
        sig22 = _index_by_instance(results.get((dataset, "sig22"), []))
        exaban = _index_by_instance(results.get((dataset, "exaban"), []))
        failed = [label for label, result in sig22.items() if not result.success]
        succeeded = [label for label in failed
                     if label in exaban and exaban[label].success]
        times = [exaban[label].seconds for label in succeeded]
        row = {
            "dataset": dataset,
            "sig22_failures": len(failed),
            "exaban_success_rate": (len(succeeded) / len(failed)
                                    if failed else float("nan")),
        }
        row.update(summarize_times(times) if times else summarize_times([]))
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Tables 5 and 6 (approximate computation)
# --------------------------------------------------------------------------- #

def table5_approx_runtime(results: ResultMap) -> List[Dict[str, object]]:
    """Table 5: AdaBan vs ExaBan vs MC runtimes where ExaBan succeeds."""
    rows = []
    datasets = sorted({workload for workload, _ in results})
    for dataset in datasets:
        exaban = _index_by_instance(results.get((dataset, "exaban"), []))
        successes = [label for label, result in exaban.items() if result.success]
        for algorithm in ("adaban", "exaban", "mc"):
            indexed = _index_by_instance(results.get((dataset, algorithm), []))
            times = [indexed[label].seconds for label in successes
                     if label in indexed and indexed[label].success]
            row = {"dataset": dataset, "algorithm": algorithm,
                   "instances": len(times)}
            row.update(summarize_times(times))
            rows.append(row)
    return rows


def table6_adaban_when_exaban_fails(results: ResultMap) -> List[Dict[str, object]]:
    """Table 6: AdaBan success rate and runtime where ExaBan fails."""
    rows = []
    datasets = sorted({workload for workload, _ in results})
    for dataset in datasets:
        exaban = _index_by_instance(results.get((dataset, "exaban"), []))
        adaban = _index_by_instance(results.get((dataset, "adaban"), []))
        failed = [label for label, result in exaban.items() if not result.success]
        succeeded = [label for label in failed
                     if label in adaban and adaban[label].success]
        times = [adaban[label].seconds for label in succeeded]
        row = {
            "dataset": dataset,
            "exaban_failures": len(failed),
            "adaban_success_rate": (len(succeeded) / len(failed)
                                    if failed else float("nan")),
        }
        row.update(summarize_times(times))
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table 7 (accuracy)
# --------------------------------------------------------------------------- #

def table7_accuracy(results: ResultMap,
                    hard_threshold_seconds: float = 0.5
                    ) -> List[Dict[str, object]]:
    """Table 7: l1 error of AdaBan and MC against exact values.

    The exact values come from the ExaBan runs in ``results``; only instances
    where ExaBan succeeded are considered.  The "hard" rows aggregate, across
    datasets, the instances whose exact computation took at least
    ``hard_threshold_seconds``.
    """
    rows = []
    datasets = sorted({workload for workload, _ in results})
    hard_errors: Dict[str, List[float]] = {"adaban": [], "mc": []}
    for dataset in datasets:
        exaban = _index_by_instance(results.get((dataset, "exaban"), []))
        for algorithm in ("adaban", "mc"):
            indexed = _index_by_instance(results.get((dataset, algorithm), []))
            errors = []
            for label, exact_result in exaban.items():
                if not exact_result.success:
                    continue
                approx = indexed.get(label)
                if approx is None or not approx.success:
                    continue
                error = l1_normalized_error(approx.values, exact_result.values)
                errors.append(error)
                if exact_result.seconds >= hard_threshold_seconds:
                    hard_errors[algorithm].append(error)
            row = {"dataset": dataset, "algorithm": algorithm,
                   "instances": len(errors)}
            row.update(summarize_times(errors))
            rows.append(row)
    for algorithm in ("adaban", "mc"):
        row = {"dataset": "hard", "algorithm": algorithm,
               "instances": len(hard_errors[algorithm])}
        row.update(summarize_times(hard_errors[algorithm]))
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table 8 (top-k precision)
# --------------------------------------------------------------------------- #

def table8_topk_precision(workloads: Sequence[Workload],
                          config: Optional[ExperimentConfig] = None,
                          k_values: Tuple[int, ...] = (10, 5)
                          ) -> List[Dict[str, object]]:
    """Table 8: precision@k of IchiBan, MC and CNF Proxy per dataset."""
    if config is None:
        config = ExperimentConfig()
    rows = []
    for workload in workloads:
        precisions: Dict[Tuple[str, int], List[float]] = defaultdict(list)
        for instance in workload.instances:
            exact = exact_ground_truth(instance,
                                       timeout_seconds=config.timeout_seconds * 4)
            if exact is None:
                continue
            mc_result = run_algorithm("mc", instance, config)
            for k in k_values:
                if len(exact) < 2:
                    continue
                ichiban = topk_with_ichiban(instance, k, config)
                if ichiban is not None:
                    precisions[("ichiban", k)].append(
                        precision_at_k(ichiban, exact, k))
                if mc_result.success:
                    precisions[("mc", k)].append(precision_at_k(
                        topk_from_values(mc_result.values, k), exact, k))
                proxy = topk_with_cnf_proxy(instance, k, config)
                if proxy is not None:
                    precisions[("cnf_proxy", k)].append(
                        precision_at_k(proxy, exact, k))
        for algorithm in ("ichiban", "mc", "cnf_proxy"):
            row: Dict[str, object] = {"dataset": workload.name,
                                      "algorithm": algorithm}
            for k in k_values:
                values = precisions.get((algorithm, k), [])
                row[f"precision@{k}_mean"] = (sum(values) / len(values)
                                              if values else float("nan"))
                row[f"precision@{k}_min"] = (min(values)
                                             if values else float("nan"))
            rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table 9 (certain top-k)
# --------------------------------------------------------------------------- #

def table9_topk_certain(workloads: Sequence[Workload],
                        config: Optional[ExperimentConfig] = None,
                        k_values: Tuple[int, ...] = (1, 3, 5, 10)
                        ) -> List[Dict[str, object]]:
    """Table 9: runtime and success rate of the certain top-k variant."""
    import time as _time

    from repro.core.adaban import ApproximationTimeout
    from repro.core.ichiban import ichiban_topk_certain

    if config is None:
        config = ExperimentConfig()
    rows = []
    for workload in workloads:
        for k in k_values:
            times: List[float] = []
            failures = 0
            attempts = 0
            for instance in workload.instances:
                if len(instance.lineage.variables) < 2:
                    continue
                attempts += 1
                started = _time.monotonic()
                try:
                    ichiban_topk_certain(instance.lineage, k=k,
                                         timeout_seconds=config.timeout_seconds)
                except (ApproximationTimeout, RecursionError):
                    failures += 1
                    continue
                times.append(_time.monotonic() - started)
            row = {
                "dataset": workload.name,
                "k": k,
                "success_rate": ((attempts - failures) / attempts
                                 if attempts else float("nan")),
            }
            row.update(summarize_times(times))
            rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Appendix D
# --------------------------------------------------------------------------- #

def appendix_d_rows() -> Tuple[List[Dict[str, object]], Dict[str, object]]:
    """Appendix D: per-size critical-set counts and the Banzhaf/Shapley totals.

    Returns the per-``k`` rows of the Appendix D table plus a summary with
    the two facts' Banzhaf and Shapley values and the resulting (divergent)
    rankings.
    """
    from repro.core.shapley import (
        banzhaf_from_critical_counts,
        critical_counts_exact,
        shapley_from_critical_counts,
    )
    from repro.db.lineage import lineage_of_boolean_query
    from repro.db.reductions import appendix_d_database, appendix_d_query

    database, r_a1, r_a2 = appendix_d_database()
    query = appendix_d_query()
    lineage = lineage_of_boolean_query(query, database, domain="database")
    variable_a1 = database.variable_of(r_a1)
    variable_a2 = database.variable_of(r_a2)
    counts_a1 = critical_counts_exact(lineage, variable_a1)
    counts_a2 = critical_counts_exact(lineage, variable_a2)
    rows = []
    for k, (count_a1, count_a2) in enumerate(zip(counts_a1, counts_a2)):
        rows.append({"k": k, "critical_R_a1": count_a1,
                     "critical_R_a2": count_a2})
    n = lineage.num_variables()
    summary = {
        "banzhaf_R_a1": banzhaf_from_critical_counts(counts_a1),
        "banzhaf_R_a2": banzhaf_from_critical_counts(counts_a2),
        "shapley_R_a1": float(shapley_from_critical_counts(counts_a1, n)),
        "shapley_R_a2": float(shapley_from_critical_counts(counts_a2, n)),
    }
    summary["banzhaf_prefers"] = ("R(a1)" if summary["banzhaf_R_a1"]
                                  > summary["banzhaf_R_a2"] else "R(a2)")
    summary["shapley_prefers"] = ("R(a1)" if summary["shapley_R_a1"]
                                  > summary["shapley_R_a2"] else "R(a2)")
    return rows, summary


def instances_of(workloads: Sequence[Workload]) -> List[LineageInstance]:
    """Flatten the instances of several workloads (helper for benchmarks)."""
    instances: List[LineageInstance] = []
    for workload in workloads:
        instances.extend(workload.instances)
    return instances
