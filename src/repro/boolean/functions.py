"""General Boolean expression trees.

The paper defines Boolean functions recursively: a variable, a conjunction or
disjunction of two functions, or a negation (Section 2).  The main algorithms
work on the positive-DNF representation in :mod:`repro.boolean.dnf`, but the
expression tree here is used for three purposes:

* encoding the paper's worked examples exactly as written (Examples 2 and 4
  contain negation, which DNF lineage never does);
* the definitional (brute-force) Banzhaf and Shapley computations used as
  ground truth in tests;
* conversion targets for the CNF pipeline of the Sig22 baseline.

Expressions are immutable and hashable.  Variables are identified by arbitrary
hashable labels; the DNF layer uses small integers for efficiency, but the
expression tree does not require that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable, Mapping, Tuple


class BoolExpr:
    """Base class for Boolean expressions.

    Subclasses are :class:`Var`, :class:`Const`, :class:`Not`, :class:`And`
    and :class:`Or`.  All of them are immutable; the operators ``&``, ``|``
    and ``~`` build new expressions.
    """

    __slots__ = ()

    def variables(self) -> FrozenSet[Hashable]:
        """Return the set of variable labels occurring in the expression."""
        raise NotImplementedError

    def evaluate(self, assignment: Mapping[Hashable, bool]) -> bool:
        """Evaluate the expression under ``assignment``.

        Variables missing from ``assignment`` are treated as ``False``, which
        matches the set notation for assignments used in the paper (an
        assignment is identified with the set of variables mapped to 1).
        """
        raise NotImplementedError

    def substitute(self, variable: Hashable, value: bool) -> "BoolExpr":
        """Return the expression with ``variable`` replaced by ``value``.

        This is the cofactor ``phi[x := b]`` of the paper.  The result is
        simplified with respect to the Boolean constants.
        """
        raise NotImplementedError

    def is_positive(self) -> bool:
        """Return ``True`` if no variable occurs under a negation."""
        return self._is_positive(under_negation=False)

    def _is_positive(self, under_negation: bool) -> bool:
        raise NotImplementedError

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return And(self, other)

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return Or(self, other)

    def __invert__(self) -> "BoolExpr":
        return Not(self)


@dataclass(frozen=True)
class Var(BoolExpr):
    """A Boolean variable identified by a hashable label."""

    name: Hashable

    __slots__ = ("name",)

    def variables(self) -> FrozenSet[Hashable]:
        return frozenset({self.name})

    def evaluate(self, assignment: Mapping[Hashable, bool]) -> bool:
        return bool(assignment.get(self.name, False))

    def substitute(self, variable: Hashable, value: bool) -> BoolExpr:
        if variable == self.name:
            return TRUE if value else FALSE
        return self

    def _is_positive(self, under_negation: bool) -> bool:
        return not under_negation

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True)
class Const(BoolExpr):
    """A Boolean constant (``True`` or ``False``)."""

    value: bool

    __slots__ = ("value",)

    def variables(self) -> FrozenSet[Hashable]:
        return frozenset()

    def evaluate(self, assignment: Mapping[Hashable, bool]) -> bool:
        return self.value

    def substitute(self, variable: Hashable, value: bool) -> BoolExpr:
        return self

    def _is_positive(self, under_negation: bool) -> bool:
        return True

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE = Const(True)
FALSE = Const(False)


@dataclass(frozen=True)
class Not(BoolExpr):
    """Negation of a Boolean expression."""

    operand: BoolExpr

    __slots__ = ("operand",)

    def variables(self) -> FrozenSet[Hashable]:
        return self.operand.variables()

    def evaluate(self, assignment: Mapping[Hashable, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def substitute(self, variable: Hashable, value: bool) -> BoolExpr:
        inner = self.operand.substitute(variable, value)
        if isinstance(inner, Const):
            return TRUE if not inner.value else FALSE
        return Not(inner)

    def _is_positive(self, under_negation: bool) -> bool:
        return self.operand._is_positive(not under_negation)

    def __repr__(self) -> str:
        return f"Not({self.operand!r})"


def _flatten(op_cls: type, operands: Iterable[BoolExpr]) -> Tuple[BoolExpr, ...]:
    """Flatten nested applications of the same associative operator."""
    flat: list[BoolExpr] = []
    for operand in operands:
        if isinstance(operand, op_cls):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    return tuple(flat)


class _NaryExpr(BoolExpr):
    """Shared implementation for n-ary AND/OR nodes."""

    __slots__ = ("operands",)

    #: Identity element of the operator; overridden by subclasses.
    _identity: bool = True

    def __init__(self, *operands: BoolExpr) -> None:
        object.__setattr__(self, "operands", _flatten(type(self), operands))

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.operands == other.operands

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.operands))

    def variables(self) -> FrozenSet[Hashable]:
        names: set[Hashable] = set()
        for operand in self.operands:
            names |= operand.variables()
        return frozenset(names)

    def _is_positive(self, under_negation: bool) -> bool:
        return all(op._is_positive(under_negation) for op in self.operands)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} instances are immutable")


class And(_NaryExpr):
    """Conjunction of one or more expressions (empty conjunction is TRUE)."""

    __slots__ = ()

    _identity = True

    def evaluate(self, assignment: Mapping[Hashable, bool]) -> bool:
        return all(op.evaluate(assignment) for op in self.operands)

    def substitute(self, variable: Hashable, value: bool) -> BoolExpr:
        parts: list[BoolExpr] = []
        for operand in self.operands:
            sub = operand.substitute(variable, value)
            if isinstance(sub, Const):
                if not sub.value:
                    return FALSE
                continue
            parts.append(sub)
        if not parts:
            return TRUE
        if len(parts) == 1:
            return parts[0]
        return And(*parts)

    def __repr__(self) -> str:
        return "And(" + ", ".join(repr(op) for op in self.operands) + ")"


class Or(_NaryExpr):
    """Disjunction of one or more expressions (empty disjunction is FALSE)."""

    __slots__ = ()

    _identity = False

    def evaluate(self, assignment: Mapping[Hashable, bool]) -> bool:
        return any(op.evaluate(assignment) for op in self.operands)

    def substitute(self, variable: Hashable, value: bool) -> BoolExpr:
        parts: list[BoolExpr] = []
        for operand in self.operands:
            sub = operand.substitute(variable, value)
            if isinstance(sub, Const):
                if sub.value:
                    return TRUE
                continue
            parts.append(sub)
        if not parts:
            return FALSE
        if len(parts) == 1:
            return parts[0]
        return Or(*parts)

    def __repr__(self) -> str:
        return "Or(" + ", ".join(repr(op) for op in self.operands) + ")"


def expr_model_count(expr: BoolExpr, domain: Iterable[Hashable] | None = None) -> int:
    """Count models of ``expr`` over ``domain`` by exhaustive enumeration.

    The domain defaults to the variables occurring in ``expr``.  Intended for
    small functions (tests and worked examples); the library's scalable model
    counting lives in the d-tree and iDNF machinery.
    """
    variables = sorted(expr.variables() if domain is None else set(domain), key=repr)
    count = 0
    total = 1 << len(variables)
    for mask in range(total):
        assignment = {
            variables[i]: bool(mask >> i & 1) for i in range(len(variables))
        }
        if expr.evaluate(assignment):
            count += 1
    return count


def expr_banzhaf(expr: BoolExpr, variable: Hashable,
                 domain: Iterable[Hashable] | None = None) -> int:
    """Definitional Banzhaf value of ``variable`` in ``expr`` (Definition 1).

    Computed as ``#phi[x:=1] - #phi[x:=0]`` over the domain excluding ``x``
    (Proposition 3).  Exhaustive; intended for tests and worked examples.
    """
    variables = set(expr.variables() if domain is None else set(domain))
    variables.discard(variable)
    positive = expr_model_count(expr.substitute(variable, True), variables)
    negative = expr_model_count(expr.substitute(variable, False), variables)
    return positive - negative
