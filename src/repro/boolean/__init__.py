"""Boolean function substrate.

This package provides the Boolean-function machinery the paper's algorithms
operate on:

* :mod:`repro.boolean.functions` -- a small expression tree (variables,
  constants, conjunction, disjunction, negation) mirroring the recursive
  definition of Boolean functions in Section 2 of the paper.
* :mod:`repro.boolean.dnf` -- the positive-DNF representation that query
  lineage is expressed in, with an explicit variable domain so that model
  counts after cofactoring remain correct.
* :mod:`repro.boolean.assignments` -- assignments, evaluation, model
  enumeration and (brute-force) model counting.
* :mod:`repro.boolean.operations` -- cofactors, simplification, independence
  partitioning and mutual-exclusion tests.
* :mod:`repro.boolean.idnf` -- the iDNF class (read-once positive DNF) with
  linear-time model counting, and the ``L``/``U`` synthesis procedures.
* :mod:`repro.boolean.cnf` -- CNF conversion used by the Sig22 baseline and
  the CNF-proxy heuristic.
* :mod:`repro.boolean.pp2dnf` -- PP2DNF functions, bipartite graphs, #BIS and
  #NSat used by the dichotomy constructions.
"""

from repro.boolean.assignments import (
    Assignment,
    count_models,
    enumerate_models,
    evaluate_dnf,
)
from repro.boolean.dnf import DNF, Clause
from repro.boolean.functions import (
    And,
    BoolExpr,
    Const,
    FALSE,
    Not,
    Or,
    TRUE,
    Var,
)
from repro.boolean.idnf import IDNF, is_idnf, lower_idnf, upper_idnf
from repro.boolean.operations import (
    cofactor,
    condition,
    independent_components,
    is_independent,
    is_mutually_exclusive,
)

__all__ = [
    "Assignment",
    "And",
    "BoolExpr",
    "Clause",
    "Const",
    "DNF",
    "FALSE",
    "IDNF",
    "Not",
    "Or",
    "TRUE",
    "Var",
    "cofactor",
    "condition",
    "count_models",
    "enumerate_models",
    "evaluate_dnf",
    "independent_components",
    "is_idnf",
    "is_independent",
    "is_mutually_exclusive",
    "lower_idnf",
    "upper_idnf",
]
