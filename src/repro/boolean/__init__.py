"""Boolean function substrate.

This package provides the Boolean-function machinery the paper's algorithms
operate on:

* :mod:`repro.boolean.functions` -- a small expression tree (variables,
  constants, conjunction, disjunction, negation) mirroring the recursive
  definition of Boolean functions in Section 2 of the paper.
* :mod:`repro.boolean.dnf` -- the positive-DNF representation that query
  lineage is expressed in, with an explicit variable domain so that model
  counts after cofactoring remain correct.
* :mod:`repro.boolean.assignments` -- assignments, evaluation, model
  enumeration and (brute-force) model counting.
* :mod:`repro.boolean.operations` -- cofactors, simplification, independence
  partitioning and mutual-exclusion tests.
* :mod:`repro.boolean.idnf` -- the iDNF class (read-once positive DNF) with
  linear-time model counting, and the ``L``/``U`` synthesis procedures.
* :mod:`repro.boolean.cnf` -- CNF conversion used by the Sig22 baseline and
  the CNF-proxy heuristic.
* :mod:`repro.boolean.pp2dnf` -- PP2DNF functions, bipartite graphs, #BIS and
  #NSat used by the dichotomy constructions.
* :mod:`repro.boolean.bitset` -- the bitset kernel: dense bitmask form of a
  DNF plus the mask algebra the hot operations are lowered onto.  The
  original frozenset implementations stay reachable through
  :func:`repro.boolean.dnf.set_kernel_enabled` /
  :func:`repro.boolean.dnf.frozenset_reference` for differential testing
  and benchmarking.
"""

from repro.boolean.assignments import (
    Assignment,
    count_models,
    enumerate_models,
    evaluate_dnf,
)
from repro.boolean.bitset import BitsetKernel
from repro.boolean.dnf import (
    DNF,
    Clause,
    frozenset_reference,
    kernel_enabled,
    set_kernel_enabled,
)
from repro.boolean.functions import (
    And,
    BoolExpr,
    Const,
    FALSE,
    Not,
    Or,
    TRUE,
    Var,
)
from repro.boolean.idnf import IDNF, is_idnf, lower_idnf, upper_idnf
from repro.boolean.operations import (
    cofactor,
    condition,
    independent_components,
    is_independent,
    is_mutually_exclusive,
)

__all__ = [
    "Assignment",
    "And",
    "BitsetKernel",
    "BoolExpr",
    "Clause",
    "Const",
    "DNF",
    "FALSE",
    "IDNF",
    "Not",
    "Or",
    "TRUE",
    "Var",
    "cofactor",
    "condition",
    "count_models",
    "enumerate_models",
    "evaluate_dnf",
    "frozenset_reference",
    "independent_components",
    "is_idnf",
    "kernel_enabled",
    "is_independent",
    "is_mutually_exclusive",
    "lower_idnf",
    "set_kernel_enabled",
    "upper_idnf",
]
