"""Positive DNF functions with an explicit variable domain.

Query lineage (Section 2 of the paper) is always a *positive* Boolean function
in disjunctive normal form: a disjunction of clauses, each clause a
conjunction of (positive) variables.  The algorithms of the paper --- ExaBan,
AdaBan, the ``bounds`` procedure and the L/U iDNF synthesis --- all operate on
this representation.

Two representation choices matter for correctness:

* **Explicit variable domain.**  Model counts depend on the set of variables
  the function is considered *over*, not just the variables that occur in its
  clauses.  Example 13 of the paper stresses this: ``phi[x := 0] = u`` but the
  function is over three variables, so it has four models, not one.  A
  :class:`DNF` therefore carries a ``domain`` that is a superset of the
  variables occurring in its clauses.
* **Canonical clause set.**  Clauses are frozensets of variable ids, the
  clause set is a frozenset, and absorbed clauses (supersets of other clauses)
  can be removed with :meth:`DNF.absorb`.  Equality of :class:`DNF` objects is
  therefore syntactic on the minimized clause set plus the domain.

Variables are plain integers.  The database layer assigns consecutive integer
ids to endogenous facts.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, Iterator, Sequence, Tuple

Clause = FrozenSet[int]


def make_clause(variables: Iterable[int]) -> Clause:
    """Build a clause (conjunction of positive variables) from an iterable."""
    clause = frozenset(int(v) for v in variables)
    if not clause:
        raise ValueError("a DNF clause must contain at least one variable")
    return clause


class DNF:
    """An immutable positive DNF function over an explicit variable domain.

    Parameters
    ----------
    clauses:
        Iterable of clauses; each clause is an iterable of variable ids.  The
        empty clause is not allowed (a clause with no variables would be the
        constant ``True``; represent that situation with ``is_true()`` helpers
        at the d-tree level instead).  An empty *set of clauses* represents
        the constant ``False`` over the given domain.
    domain:
        Optional iterable of variable ids the function is defined over.  Must
        be a superset of the variables occurring in the clauses; defaults to
        exactly those variables.
    """

    __slots__ = ("_clauses", "_domain", "_hash")

    def __init__(self, clauses: Iterable[Iterable[int]],
                 domain: Iterable[int] | None = None) -> None:
        clause_set = frozenset(make_clause(c) for c in clauses)
        occurring: set[int] = set()
        for clause in clause_set:
            occurring |= clause
        if domain is None:
            dom = frozenset(occurring)
        else:
            dom = frozenset(int(v) for v in domain)
            if not occurring <= dom:
                missing = sorted(occurring - dom)
                raise ValueError(
                    f"domain must cover all clause variables; missing {missing}"
                )
        self._clauses = clause_set
        self._domain = dom
        self._hash: int | None = None

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def clauses(self) -> FrozenSet[Clause]:
        """The set of clauses (each a frozenset of variable ids)."""
        return self._clauses

    @property
    def domain(self) -> FrozenSet[int]:
        """The set of variables the function is defined over."""
        return self._domain

    @property
    def variables(self) -> FrozenSet[int]:
        """Variables that actually occur in some clause."""
        occurring: set[int] = set()
        for clause in self._clauses:
            occurring |= clause
        return frozenset(occurring)

    def num_variables(self) -> int:
        """Number of variables in the domain (``n`` in the paper's formulas)."""
        return len(self._domain)

    def num_clauses(self) -> int:
        """Number of clauses."""
        return len(self._clauses)

    def size(self) -> int:
        """Total number of literal occurrences (the ``|phi|`` of the paper)."""
        return sum(len(clause) for clause in self._clauses)

    def is_false(self) -> bool:
        """``True`` iff the function is the constant 0 (no clauses)."""
        return not self._clauses

    def is_single_literal(self) -> bool:
        """``True`` iff the function is a single one-variable clause."""
        return len(self._clauses) == 1 and len(next(iter(self._clauses))) == 1

    def single_literal(self) -> int:
        """Return the variable of a single-literal function."""
        if not self.is_single_literal():
            raise ValueError("function is not a single literal")
        return next(iter(next(iter(self._clauses))))

    def contains_variable(self, variable: int) -> bool:
        """``True`` iff ``variable`` occurs in some clause."""
        return any(variable in clause for clause in self._clauses)

    # ------------------------------------------------------------------ #
    # Equality / hashing / display
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DNF):
            return NotImplemented
        return self._clauses == other._clauses and self._domain == other._domain

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._clauses, self._domain))
        return self._hash

    def __repr__(self) -> str:
        clause_strs = sorted(
            "(" + " & ".join(f"x{v}" for v in sorted(clause)) + ")"
            for clause in self._clauses
        )
        body = " | ".join(clause_strs) if clause_strs else "FALSE"
        extra = self._domain - self.variables
        if extra:
            body += f" [over +{len(extra)} silent vars]"
        return f"DNF<{body}>"

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def false(domain: Iterable[int] = ()) -> "DNF":
        """The constant-0 function over ``domain``."""
        return DNF([], domain=domain)

    @staticmethod
    def literal(variable: int, domain: Iterable[int] | None = None) -> "DNF":
        """A single positive literal, optionally over a larger domain."""
        dom = {variable} if domain is None else set(domain) | {variable}
        return DNF([[variable]], domain=dom)

    def with_domain(self, domain: Iterable[int]) -> "DNF":
        """Return the same function over a (super)domain."""
        return DNF(self._clauses, domain=domain)

    def restricted_domain(self) -> "DNF":
        """Return the same function over exactly its occurring variables."""
        return DNF(self._clauses, domain=self.variables)

    def absorb(self) -> "DNF":
        """Remove absorbed clauses (clauses that are supersets of others).

        Absorption preserves the function and never increases its size; the
        compiler applies it before independence partitioning so that, e.g.,
        ``(x) | (x & y)`` is recognized as the single literal ``x``.
        """
        clauses = sorted(self._clauses, key=len)
        kept: list[Clause] = []
        for clause in clauses:
            if not any(other <= clause for other in kept):
                kept.append(clause)
        if len(kept) == len(self._clauses):
            return self
        return DNF(kept, domain=self._domain)

    def union(self, other: "DNF") -> "DNF":
        """Disjunction of two DNFs, over the union of their domains."""
        return DNF(self._clauses | other._clauses,
                   domain=self._domain | other._domain)

    def conjoin(self, other: "DNF") -> "DNF":
        """Conjunction of two DNFs (clause-wise product), over the union domain.

        Used by the lineage builder when combining sub-lineages of a
        conjunctive query; for lineages the product stays small because each
        side has one clause per grounding.
        """
        if self.is_false() or other.is_false():
            return DNF.false(self._domain | other._domain)
        clauses = [c1 | c2 for c1 in self._clauses for c2 in other._clauses]
        return DNF(clauses, domain=self._domain | other._domain)

    # ------------------------------------------------------------------ #
    # Semantics
    # ------------------------------------------------------------------ #

    def evaluate(self, true_variables: AbstractSet[int]) -> bool:
        """Evaluate under the assignment that sets exactly ``true_variables``."""
        return any(clause <= true_variables for clause in self._clauses)

    def cofactor(self, variable: int, value: bool) -> "DNF":
        """Return ``phi[variable := value]`` with standard simplifications.

        The resulting function is over ``domain - {variable}``:

        * setting the variable to 1 removes it from every clause it occurs in
          (a clause reduced to the empty set means the function became the
          constant 1; we signal that by raising ``ConstantTrue`` -- callers at
          the d-tree level handle the constant explicitly);
        * setting it to 0 deletes every clause containing it.
        """
        new_domain = self._domain - {variable}
        if value:
            new_clauses = []
            for clause in self._clauses:
                reduced = clause - {variable}
                if not reduced:
                    raise ConstantTrue(new_domain)
                new_clauses.append(reduced)
            return DNF(new_clauses, domain=new_domain)
        new_clauses = [c for c in self._clauses if variable not in c]
        return DNF(new_clauses, domain=new_domain)

    def variable_frequencies(self) -> dict[int, int]:
        """Map each occurring variable to the number of clauses containing it."""
        freq: dict[int, int] = {}
        for clause in self._clauses:
            for variable in clause:
                freq[variable] = freq.get(variable, 0) + 1
        return freq

    def common_variables(self) -> FrozenSet[int]:
        """Variables occurring in *every* clause (factor-out candidates)."""
        if not self._clauses:
            return frozenset()
        clauses = iter(self._clauses)
        common = set(next(clauses))
        for clause in clauses:
            common &= clause
            if not common:
                break
        return frozenset(common)

    def sorted_clauses(self) -> Sequence[Tuple[int, ...]]:
        """Deterministically ordered clause list (for reproducible output)."""
        return tuple(sorted(tuple(sorted(c)) for c in self._clauses))


class ConstantTrue(Exception):
    """Raised by :meth:`DNF.cofactor` when the cofactor is the constant 1.

    Carries the residual variable domain so callers can account for the
    ``2^n`` models of the constant-1 function over that domain.
    """

    def __init__(self, domain: FrozenSet[int]) -> None:
        super().__init__("cofactor is the constant TRUE")
        self.domain = domain
