"""Positive DNF functions with an explicit variable domain.

Query lineage (Section 2 of the paper) is always a *positive* Boolean function
in disjunctive normal form: a disjunction of clauses, each clause a
conjunction of (positive) variables.  The algorithms of the paper --- ExaBan,
AdaBan, the ``bounds`` procedure and the L/U iDNF synthesis --- all operate on
this representation.

Two representation choices matter for correctness:

* **Explicit variable domain.**  Model counts depend on the set of variables
  the function is considered *over*, not just the variables that occur in its
  clauses.  Example 13 of the paper stresses this: ``phi[x := 0] = u`` but the
  function is over three variables, so it has four models, not one.  A
  :class:`DNF` therefore carries a ``domain`` that is a superset of the
  variables occurring in its clauses.
* **Canonical clause set.**  Clauses are frozensets of variable ids, the
  clause set is a frozenset, and absorbed clauses (supersets of other clauses)
  can be removed with :meth:`DNF.absorb`.  Equality of :class:`DNF` objects is
  therefore syntactic on the minimized clause set plus the domain.

Variables are plain integers.  The database layer assigns consecutive integer
ids to endogenous facts.

Representation
--------------
The *logical* representation above is unchanged, but the hot operations run
on a **bitset kernel** (:mod:`repro.boolean.bitset`): the domain is sorted
into a dense variable order, every clause becomes one Python ``int``
bitmask over that order, and absorption / cofactoring / factoring /
independence checks become single-word mask operations.  Both views are
built lazily and cached -- a DNF produced by a kernel operation only
materializes its frozenset clauses when something asks for them, and a DNF
built from clauses only builds masks when a kernel operation runs.  The
public API -- ``clauses``, iteration, equality, ordering of
``sorted_clauses`` -- is byte-for-byte the thin frozenset view it always
was.

The original frozenset implementations are kept alive behind
:func:`set_kernel_enabled` / :func:`frozenset_reference` as the *reference
kernel*: the Hypothesis differential suite and ``benchmarks/bench_kernel.py``
run every operation both ways and require identical results.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Optional,
    Sequence,
    Tuple,
)

from repro.boolean.bitset import (
    BitsetKernel,
    absorb_masks,
    iter_bits,
    popcount,
    project_mask,
    projection_table,
)

Clause = FrozenSet[int]

#: Process-wide switch between the bitset kernel (default) and the original
#: frozenset reference implementations of the hot DNF operations.
_KERNEL_ENABLED = True


def kernel_enabled() -> bool:
    """``True`` while the bitset kernel serves the hot DNF operations."""
    return _KERNEL_ENABLED


def set_kernel_enabled(enabled: bool) -> bool:
    """Switch the bitset kernel on/off; returns the previous setting.

    With the kernel off every operation takes the original frozenset code
    path (the *reference* implementation).  Results are identical either
    way -- the differential test suite asserts exactly that -- so the
    switch exists for benchmarking and differential testing, not for
    correctness workarounds.
    """
    global _KERNEL_ENABLED
    previous = _KERNEL_ENABLED
    _KERNEL_ENABLED = bool(enabled)
    return previous


@contextmanager
def frozenset_reference() -> Iterator[None]:
    """Run a block against the frozenset reference implementation."""
    previous = set_kernel_enabled(False)
    try:
        yield
    finally:
        set_kernel_enabled(previous)


def make_clause(variables: Iterable[int]) -> Clause:
    """Build a clause (conjunction of positive variables) from an iterable."""
    clause = frozenset(int(v) for v in variables)
    if not clause:
        raise ValueError("a DNF clause must contain at least one variable")
    return clause


class DNF:
    """An immutable positive DNF function over an explicit variable domain.

    Parameters
    ----------
    clauses:
        Iterable of clauses; each clause is an iterable of variable ids.  The
        empty clause is not allowed (a clause with no variables would be the
        constant ``True``; represent that situation with ``is_true()`` helpers
        at the d-tree level instead).  An empty *set of clauses* represents
        the constant ``False`` over the given domain.
    domain:
        Optional iterable of variable ids the function is defined over.  Must
        be a superset of the variables occurring in the clauses; defaults to
        exactly those variables.
    """

    __slots__ = ("_clauses", "_domain", "_hash", "_kernel", "_variables",
                 "_frequencies")

    def __init__(self, clauses: Iterable[Iterable[int]],
                 domain: Iterable[int] | None = None) -> None:
        clause_set = frozenset(make_clause(c) for c in clauses)
        occurring: set[int] = set()
        for clause in clause_set:
            occurring |= clause
        if domain is None:
            dom = frozenset(occurring)
        else:
            dom = frozenset(int(v) for v in domain)
            if not occurring <= dom:
                missing = sorted(occurring - dom)
                raise ValueError(
                    f"domain must cover all clause variables; missing {missing}"
                )
        self._clauses: Optional[FrozenSet[Clause]] = clause_set
        self._domain = dom
        self._hash: int | None = None
        self._kernel: Optional[BitsetKernel] = None
        self._variables: Optional[FrozenSet[int]] = None
        self._frequencies: Optional[Dict[int, int]] = None

    @classmethod
    def _from_kernel(cls, masks: Iterable[int], order: Tuple[int, ...],
                     normalized: bool = False,
                     support: Optional[int] = None,
                     domain: Optional[FrozenSet[int]] = None) -> "DNF":
        """Internal fast constructor from clause masks over a sorted order.

        Callers guarantee the invariants: ``order`` is strictly ascending,
        every mask is non-zero and inside ``(1 << len(order)) - 1``.  With
        ``normalized=True`` the caller additionally guarantees the masks
        are already distinct and ascending (true for order-preserving
        surgeries: filtering, dropping a bit every mask has clear,
        projecting away shared bits).  ``domain`` may hand over an already
        materialized frozenset equal to ``set(order)``; otherwise both the
        frozenset views (clauses *and* domain) stay lazy -- a short-lived
        intermediate (e.g. a component that becomes a literal leaf) never
        builds them at all.
        """
        self = cls.__new__(cls)
        self._clauses = None
        self._domain = domain
        self._hash = None
        if not normalized:
            masks = sorted(set(masks))
        self._kernel = BitsetKernel(tuple(order), tuple(masks),
                                    support=support)
        self._variables = None
        self._frequencies = None
        return self

    def _bitset(self) -> BitsetKernel:
        """The (lazily built, cached) bitset kernel of this function."""
        kernel = self._kernel
        if kernel is None:
            order = tuple(sorted(self._domain))
            kernel = BitsetKernel.from_clauses(self._clauses, order)
            self._kernel = kernel
        return kernel

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def clauses(self) -> FrozenSet[Clause]:
        """The set of clauses (each a frozenset of variable ids)."""
        clauses = self._clauses
        if clauses is None:
            kernel = self._kernel
            order = kernel.order
            clauses = frozenset(
                frozenset(order[position] for position in iter_bits(mask))
                for mask in kernel.masks
            )
            self._clauses = clauses
        return clauses

    @property
    def domain(self) -> FrozenSet[int]:
        """The set of variables the function is defined over."""
        domain = self._domain
        if domain is None:
            domain = frozenset(self._kernel.order)
            self._domain = domain
        return domain

    @property
    def variables(self) -> FrozenSet[int]:
        """Variables that actually occur in some clause (cached)."""
        if not _KERNEL_ENABLED:
            occurring: set[int] = set()
            for clause in self.clauses:
                occurring |= clause
            return frozenset(occurring)
        cached = self._variables
        if cached is None:
            cached = self._bitset().variables()
            self._variables = cached
        return cached

    def silent_variables(self) -> FrozenSet[int]:
        """Domain variables occurring in no clause (``domain - variables``).

        The kernel answers the common no-silent case with one integer
        comparison (full mask vs support) instead of building and
        subtracting two frozensets -- the d-tree compilers ask this at
        every decomposition step.
        """
        if not _KERNEL_ENABLED:
            return self.domain - self.variables
        kernel = self._bitset()
        full = (1 << len(kernel.order)) - 1
        if kernel.support == full:
            return frozenset()
        return kernel.variables_of_mask(full ^ kernel.support)

    def num_variables(self) -> int:
        """Number of variables in the domain (``n`` in the paper's formulas)."""
        domain = self._domain
        if domain is not None:
            return len(domain)
        return len(self._kernel.order)

    def num_clauses(self) -> int:
        """Number of clauses."""
        clauses = self._clauses
        if clauses is not None:
            return len(clauses)
        return len(self._kernel.masks)

    def size(self) -> int:
        """Total number of literal occurrences (the ``|phi|`` of the paper)."""
        clauses = self._clauses
        if clauses is not None:
            return sum(len(clause) for clause in clauses)
        return sum(popcount(mask) for mask in self._kernel.masks)

    def is_false(self) -> bool:
        """``True`` iff the function is the constant 0 (no clauses)."""
        return self.num_clauses() == 0

    def is_single_literal(self) -> bool:
        """``True`` iff the function is a single one-variable clause."""
        clauses = self._clauses
        if clauses is not None:
            return len(clauses) == 1 and len(next(iter(clauses))) == 1
        masks = self._kernel.masks
        return len(masks) == 1 and popcount(masks[0]) == 1

    def single_literal(self) -> int:
        """Return the variable of a single-literal function."""
        if not self.is_single_literal():
            raise ValueError("function is not a single literal")
        clauses = self._clauses
        if clauses is not None:
            return next(iter(next(iter(clauses))))
        kernel = self._kernel
        return kernel.order[kernel.masks[0].bit_length() - 1]

    def contains_variable(self, variable: int) -> bool:
        """``True`` iff ``variable`` occurs in some clause.

        Served off the kernel's support mask in O(1) instead of rescanning
        every clause -- the bounds machinery and the heuristics probe the
        same function for many variables.
        """
        if not _KERNEL_ENABLED:
            return any(variable in clause for clause in self.clauses)
        kernel = self._bitset()
        position = kernel.position_of(variable)
        return position >= 0 and bool(kernel.support >> position & 1)

    # ------------------------------------------------------------------ #
    # Equality / hashing / display
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DNF):
            return NotImplemented
        mine, theirs = self._kernel, other._kernel
        if mine is not None and theirs is not None:
            # Equal domains share the sorted order, so comparing the order
            # tuples and sorted mask tuples is exactly clause-set-plus-
            # domain equality, without materializing either frozenset.
            return mine.order == theirs.order and mine.masks == theirs.masks
        if self.domain != other.domain:
            return False
        return self.clauses == other.clauses

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.clauses, self.domain))
        return self._hash

    def __repr__(self) -> str:
        clause_strs = sorted(
            "(" + " & ".join(f"x{v}" for v in sorted(clause)) + ")"
            for clause in self.clauses
        )
        body = " | ".join(clause_strs) if clause_strs else "FALSE"
        extra = self.domain - self.variables
        if extra:
            body += f" [over +{len(extra)} silent vars]"
        return f"DNF<{body}>"

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return self.num_clauses()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def false(domain: Iterable[int] = ()) -> "DNF":
        """The constant-0 function over ``domain``."""
        return DNF([], domain=domain)

    @staticmethod
    def literal(variable: int, domain: Iterable[int] | None = None) -> "DNF":
        """A single positive literal, optionally over a larger domain."""
        dom = {variable} if domain is None else set(domain) | {variable}
        return DNF([[variable]], domain=dom)

    def with_domain(self, domain: Iterable[int]) -> "DNF":
        """Return the same function over a (super)domain."""
        return DNF(self.clauses, domain=domain)

    def restricted_domain(self) -> "DNF":
        """Return the same function over exactly its occurring variables."""
        if not _KERNEL_ENABLED:
            return DNF(self.clauses, domain=self.variables)
        kernel = self._bitset()
        full = (1 << len(kernel.order)) - 1
        if kernel.support == full:
            return self
        table = projection_table(kernel.support, len(kernel.order))
        order = tuple(kernel.order[position]
                      for position in iter_bits(kernel.support))
        return DNF._from_kernel(
            [project_mask(mask, table) for mask in kernel.masks], order,
            normalized=True, support=(1 << len(order)) - 1)

    def absorb(self) -> "DNF":
        """Remove absorbed clauses (clauses that are supersets of others).

        Absorption preserves the function and never increases its size; the
        compiler applies it before independence partitioning so that, e.g.,
        ``(x) | (x & y)`` is recognized as the single literal ``x``.
        """
        if not _KERNEL_ENABLED:
            clauses = sorted(self.clauses, key=len)
            kept: list[Clause] = []
            for clause in clauses:
                if not any(other <= clause for other in kept):
                    kept.append(clause)
            if len(kept) == len(clauses):
                return self
            return DNF(kept, domain=self.domain)
        kernel = self._bitset()
        kept_masks = absorb_masks(kernel.masks)
        if kept_masks is None:
            return self
        return DNF._from_kernel(kept_masks, kernel.order)

    def union(self, other: "DNF") -> "DNF":
        """Disjunction of two DNFs, over the union of their domains."""
        return DNF(self.clauses | other.clauses,
                   domain=self.domain | other.domain)

    def conjoin(self, other: "DNF") -> "DNF":
        """Conjunction of two DNFs (clause-wise product), over the union domain.

        Used by the lineage builder when combining sub-lineages of a
        conjunctive query; for lineages the product stays small because each
        side has one clause per grounding.
        """
        if self.is_false() or other.is_false():
            return DNF.false(self.domain | other.domain)
        clauses = [c1 | c2 for c1 in self.clauses for c2 in other.clauses]
        return DNF(clauses, domain=self.domain | other.domain)

    # ------------------------------------------------------------------ #
    # Semantics
    # ------------------------------------------------------------------ #

    def evaluate(self, true_variables: AbstractSet[int]) -> bool:
        """Evaluate under the assignment that sets exactly ``true_variables``."""
        return any(clause <= true_variables for clause in self.clauses)

    def cofactor(self, variable: int, value: bool) -> "DNF":
        """Return ``phi[variable := value]`` with standard simplifications.

        The resulting function is over ``domain - {variable}``:

        * setting the variable to 1 removes it from every clause it occurs in
          (a clause reduced to the empty set means the function became the
          constant 1; we signal that by raising ``ConstantTrue`` -- callers at
          the d-tree level handle the constant explicitly);
        * setting it to 0 deletes every clause containing it.
        """
        if not _KERNEL_ENABLED:
            new_domain = self.domain - {variable}
            if value:
                new_clauses = []
                for clause in self.clauses:
                    reduced = clause - {variable}
                    if not reduced:
                        raise ConstantTrue(new_domain)
                    new_clauses.append(reduced)
                return DNF(new_clauses, domain=new_domain)
            new_clauses = [c for c in self.clauses if variable not in c]
            return DNF(new_clauses, domain=new_domain)
        kernel = self._bitset()
        position = kernel.position_of(variable)
        if position < 0:
            return self
        bit = 1 << position
        low = bit - 1
        high = ~low
        order = kernel.order
        new_order = order[:position] + order[position + 1:]
        if value:
            new_masks = []
            for mask in kernel.masks:
                if mask & bit:
                    mask ^= bit
                    if not mask:
                        raise ConstantTrue(frozenset(new_order))
                new_masks.append((mask & low) | ((mask >> 1) & high))
            return DNF._from_kernel(new_masks, new_order)
        new_masks = [(mask & low) | ((mask >> 1) & high)
                     for mask in kernel.masks if not mask & bit]
        return DNF._from_kernel(new_masks, new_order, normalized=True)

    def variable_frequencies(self) -> Dict[int, int]:
        """Map each occurring variable to the number of clauses containing it.

        Served off the kernel's cached occurrence index (popcounts of the
        per-variable clause masks); a fresh dict is returned either way, so
        callers may reorder or consume it freely.
        """
        if not _KERNEL_ENABLED:
            freq: Dict[int, int] = {}
            for clause in self.clauses:
                for variable in clause:
                    freq[variable] = freq.get(variable, 0) + 1
            return freq
        cached = self._frequencies
        if cached is None:
            cached = self._bitset().frequencies()
            self._frequencies = cached
        return dict(cached)

    def common_variables(self) -> FrozenSet[int]:
        """Variables occurring in *every* clause (factor-out candidates)."""
        if not _KERNEL_ENABLED:
            if not self.clauses:
                return frozenset()
            clauses = iter(self.clauses)
            common = set(next(clauses))
            for clause in clauses:
                common &= clause
                if not common:
                    break
            return frozenset(common)
        kernel = self._bitset()
        return kernel.variables_of_mask(kernel.common_mask())

    def sorted_clauses(self) -> Sequence[Tuple[int, ...]]:
        """Deterministically ordered clause list (for reproducible output)."""
        if self._clauses is None or _KERNEL_ENABLED:
            return self._bitset().clause_tuples()
        return tuple(sorted(tuple(sorted(c)) for c in self.clauses))


class ConstantTrue(Exception):
    """Raised by :meth:`DNF.cofactor` when the cofactor is the constant 1.

    Carries the residual variable domain so callers can account for the
    ``2^n`` models of the constant-1 function over that domain.
    """

    def __init__(self, domain: FrozenSet[int]) -> None:
        super().__init__("cofactor is the constant TRUE")
        self.domain = domain
