"""The bitset kernel: positive-DNF set algebra on machine-word bitmasks.

Every hot operation of the compiler bottoms out in set algebra over small
integer sets (clauses).  Frozensets pay per-element hashing and allocation
for each test; Python ``int`` bitmasks do the same work with single
arbitrary-precision word operations -- the classic knowledge-compilation
lowering used by compiled-circuit engines.  This module holds the pure
mask algebra; :class:`repro.boolean.dnf.DNF` attaches a lazily built
:class:`BitsetKernel` per function and routes its hot methods through it
(unless the frozenset reference implementation is re-enabled for
differential testing -- see :func:`repro.boolean.dnf.set_kernel_enabled`).

Representation invariants (shared with :mod:`repro.boolean.dnf`):

* a kernel's ``order`` is the function's domain sorted ascending, so bit
  ``i`` of every mask is variable ``order[i]`` -- two DNFs over the same
  domain therefore agree on bit positions by construction;
* ``masks`` is a sorted tuple of distinct non-zero clause masks (the
  empty clause is the constant 1 and never representable, mirroring
  :func:`repro.boolean.dnf.make_clause`);
* ``support`` is the OR of all masks (the occurring variables);
* the per-variable occurrence index maps each occurring bit *position* to
  the mask of clause indices containing it, and is built once on demand.

The loops below favor inlined bit-twiddling (``mask & -mask`` extraction)
over helper generators: these functions run once per d-tree node, so
per-call overhead is the budget that matters.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

try:  # Python >= 3.10
    _POPCOUNT = int.bit_count  # type: ignore[attr-defined]
except AttributeError:  # pragma: no cover - exercised on 3.9 only
    def _POPCOUNT(mask: int) -> int:  # type: ignore[misc]
        return bin(mask).count("1")


def popcount(mask: int) -> int:
    """Number of set bits (clause width / support size)."""
    return _POPCOUNT(mask)


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit *positions* of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def projection_table(keep_mask: int, width: int) -> List[int]:
    """Position-indexed table re-packing the kept bits densely.

    ``table[p]`` is the single-bit value of old position ``p`` in the new
    order (0 for dropped positions); bits of ``keep_mask`` are renumbered
    ``0, 1, ...`` ascending.  ``width`` is the old order's length.
    """
    table = [0] * width
    new_bit = 1
    remaining = keep_mask
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        table[low.bit_length() - 1] = new_bit
        new_bit <<= 1
    return table


def project_mask(mask: int, table: List[int]) -> int:
    """Re-pack ``mask`` through a :func:`projection_table`.

    Every set bit of ``mask`` must be a kept position of the table
    (callers project masks whose support is inside the kept positions).
    """
    projected = 0
    while mask:
        low = mask & -mask
        mask ^= low
        projected |= table[low.bit_length() - 1]
    return projected


def absorb_masks(masks: Sequence[int]) -> Optional[List[int]]:
    """Remove absorbed clauses (supersets of other clauses) from ``masks``.

    Returns the kept masks, or ``None`` when nothing was absorbed (so the
    caller can keep the original object).  Two observations carry the
    weight: a clause can only be absorbed by a *strictly smaller* clause
    (equal-width distinct masks are never subsets), so a uniform-width
    clause set -- the typical join lineage -- is absorption-free after one
    O(c) width scan; and within the width-sorted order each clause only
    needs submask tests against the kept strictly-smaller prefix.
    """
    if len(masks) < 2:
        return None
    first_width = _POPCOUNT(masks[0])
    for mask in masks:
        if _POPCOUNT(mask) != first_width:
            break
    else:
        # Uniform width (the typical join lineage): nothing can absorb.
        return None
    widths = [_POPCOUNT(mask) for mask in masks]
    by_size = sorted(zip(widths, masks))
    kept: List[int] = []
    boundary = 0  # kept[:boundary] have strictly smaller width
    current_width = by_size[0][0]
    absorbed_any = False
    for width, mask in by_size:
        if width > current_width:
            boundary = len(kept)
            current_width = width
        absorbed = False
        for index in range(boundary):
            other = kept[index]
            if other & mask == other:
                absorbed = True
                break
        if absorbed:
            absorbed_any = True
        else:
            kept.append(mask)
    if not absorbed_any:
        return None
    return kept


def component_groups(masks: Sequence[int]) -> List[List[int]]:
    """Partition ascending clause masks into variable-connected components.

    Support-merge scan: each component carries the OR of its clauses, so
    the membership test per clause is one AND per live component.  The
    clause count times the (typically tiny) component count beats a
    per-bit union-find because every step is a single machine-word
    operation.  Components come back in first-clause order, mirroring
    :func:`repro.boolean.operations.clause_components`.

    ``masks`` must be ascending (the kernel invariant); every returned
    group is ascending too, so callers may hand groups to
    ``DNF._from_kernel(..., normalized=True)``.  A clause that bridges
    two earlier components folds the later one into the earlier, which
    interleaves mask values -- those (rare) groups are re-sorted before
    returning.
    """
    if len(masks) <= 1:
        return [list(masks)] if masks else []
    supports: List[int] = []
    groups: List[List[int]] = []
    merged: set = set()
    for mask in masks:
        hit = -1
        for index in range(len(supports)):
            support = supports[index]
            if support & mask:
                if hit < 0:
                    supports[index] = support | mask
                    groups[index].append(mask)
                    hit = index
                else:
                    # The clause bridges two components: fold the later
                    # one into the earlier (first-clause order wins).
                    supports[hit] |= support
                    groups[hit].extend(groups[index])
                    supports[index] = 0
                    groups[index] = []
                    merged.add(hit)
        if hit < 0:
            supports.append(mask)
            groups.append([mask])
    if merged:
        for index in merged:
            groups[index].sort()
    return [group for group in groups if group]


def count_components(masks: Sequence[int]) -> int:
    """Number of variable-connected components (heuristics fast path)."""
    if len(masks) <= 1:
        return len(masks)
    supports: List[int] = []
    for mask in masks:
        hit = -1
        for index in range(len(supports)):
            support = supports[index]
            if support & mask:
                if hit < 0:
                    supports[index] = support | mask
                    hit = index
                else:
                    supports[hit] |= support
                    supports[index] = 0
        if hit < 0:
            supports.append(mask)
    return sum(1 for support in supports if support)


class BitsetKernel:
    """Dense bitmask form of one positive DNF (see the module docstring)."""

    __slots__ = ("order", "masks", "support", "_occurrence", "_index")

    def __init__(self, order: Tuple[int, ...], masks: Tuple[int, ...],
                 support: Optional[int] = None) -> None:
        self.order = order
        self.masks = masks
        if support is None:
            support = 0
            for mask in masks:
                support |= mask
        self.support = support
        self._occurrence: Optional[Dict[int, int]] = None
        self._index: Optional[Dict[int, int]] = None

    @classmethod
    def from_clauses(cls, clauses, order: Tuple[int, ...]) -> "BitsetKernel":
        """Build a kernel from frozenset clauses over the sorted domain."""
        index = {variable: position for position, variable in enumerate(order)}
        masks = set()
        for clause in clauses:
            mask = 0
            for variable in clause:
                mask |= 1 << index[variable]
            masks.add(mask)
        return cls(order, tuple(sorted(masks)))

    # ------------------------------------------------------------------ #
    # Derived structure
    # ------------------------------------------------------------------ #

    def index(self) -> Dict[int, int]:
        """Variable -> bit position map (built once on demand)."""
        index = self._index
        if index is None:
            index = {variable: position
                     for position, variable in enumerate(self.order)}
            self._index = index
        return index

    def position_of(self, variable: int) -> int:
        """Bit position of ``variable``, or -1 when not in the order.

        Binary search on the sorted order: no per-kernel dict to build
        for the one-shot lookups of the cofactor path.
        """
        order = self.order
        lo, hi = 0, len(order)
        while lo < hi:
            mid = (lo + hi) // 2
            if order[mid] < variable:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(order) and order[lo] == variable:
            return lo
        return -1

    def occurrence(self) -> Dict[int, int]:
        """Per-variable occurrence index: bit position -> clause-index mask.

        Built once and cached on the kernel; powers popcount-based
        frequency counting without rescanning every clause per query.
        """
        occurrence = self._occurrence
        if occurrence is None:
            occurrence = {}
            index_bit = 1
            for mask in self.masks:
                while mask:
                    low = mask & -mask
                    mask ^= low
                    position = low.bit_length() - 1
                    occurrence[position] = occurrence.get(position,
                                                          0) | index_bit
                index_bit <<= 1
            self._occurrence = occurrence
        return occurrence

    def variables(self) -> frozenset:
        """Occurring variables (the support mapped back to variable ids)."""
        order = self.order
        found = []
        support = self.support
        while support:
            low = support & -support
            support ^= low
            found.append(order[low.bit_length() - 1])
        return frozenset(found)

    def frequencies(self) -> Dict[int, int]:
        """Map each occurring variable to its clause count (occurrence popcounts)."""
        order = self.order
        return {
            order[position]: _POPCOUNT(indices)
            for position, indices in self.occurrence().items()
        }

    def clause_tuples(self) -> Tuple[Tuple[int, ...], ...]:
        """Deterministic clause list: sorted tuples of sorted variable ids."""
        order = self.order
        out = []
        for mask in self.masks:
            clause = []
            while mask:
                low = mask & -mask
                mask ^= low
                clause.append(order[low.bit_length() - 1])
            out.append(tuple(clause))
        return tuple(sorted(out))

    def common_mask(self) -> int:
        """AND of all clause masks (variables occurring in every clause)."""
        masks = self.masks
        if not masks:
            return 0
        common = masks[0]
        for mask in masks[1:]:
            common &= mask
            if not common:
                break
        return common

    def variables_of_mask(self, mask: int) -> frozenset:
        """Map a position mask back to variable ids."""
        order = self.order
        found = []
        while mask:
            low = mask & -mask
            mask ^= low
            found.append(order[low.bit_length() - 1])
        return frozenset(found)


__all__ = [
    "BitsetKernel",
    "absorb_masks",
    "component_groups",
    "count_components",
    "iter_bits",
    "popcount",
    "project_mask",
    "projection_table",
]
