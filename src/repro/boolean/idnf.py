"""iDNF functions and the L/U bound synthesis (Section 3.2.1).

An *iDNF* (independent DNF, also called read-once DNF) is a positive DNF in
which every variable occurs in at most one clause.  iDNF functions admit
linear-time model counting because the clauses are pairwise independent:

    #phi = 2^n - prod_over_clauses (2^{n_c} ... ) -- more precisely, the
    probability that no clause is satisfied factorizes over clauses.

The paper's approximation machinery (Proposition 12) relies on two synthesis
procedures:

* ``L(phi)``: keep a maximal subset of clauses that pairwise share no
  variables (a greedy matching).  Every model of ``L(phi)`` extends to a model
  of ``phi``, so ``#L(phi) <= #phi``.
* ``U(phi)``: keep one occurrence of each variable and drop repeated
  occurrences from later clauses.  Every model of ``phi`` is a model of
  ``U(phi)``, so ``#phi <= #U(phi)``.

Both are computable in time linear in ``|phi|`` and both produce iDNFs over
the *same domain* as ``phi`` (crucial for comparable model counts).

These syntheses run once per bound evaluation per undecomposed d-tree leaf,
which makes them an AdaBan hot path: like the structural operations they
have a bitset-kernel implementation (disjointness is one AND, the greedy
scans work on masks) and keep the frozenset reference alive behind
:func:`repro.boolean.dnf.kernel_enabled` for differential testing.  The
deterministic shortest-first clause order is identical in both paths:
clause masks over the sorted domain order compare exactly like the sorted
variable tuples they encode.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.boolean.bitset import popcount
from repro.boolean.dnf import Clause, DNF, kernel_enabled


class IDNF:
    """A positive DNF in which every variable occurs at most once.

    Wraps a :class:`DNF` and provides exact linear-time model counting.
    """

    __slots__ = ("_dnf",)

    def __init__(self, function: DNF) -> None:
        if not is_idnf(function):
            raise ValueError("function is not an iDNF (some variable repeats)")
        self._dnf = function

    @property
    def dnf(self) -> DNF:
        """The underlying DNF."""
        return self._dnf

    def model_count(self) -> int:
        """Exact model count over the function's domain, in linear time.

        An assignment fails to satisfy the function iff it fails every
        clause.  Clauses are variable-disjoint, so the number of
        non-satisfying assignments over the occurring variables factorizes as
        the product over clauses of ``2^{|c|} - 1``.  Silent domain variables
        contribute a free factor of 2 each.
        """
        return idnf_model_count(self._dnf)


def is_idnf(function: DNF) -> bool:
    """``True`` iff no variable occurs in more than one clause."""
    if not kernel_enabled():
        seen: set[int] = set()
        for clause in function.clauses:
            for variable in clause:
                if variable in seen:
                    return False
            seen |= clause
        return True
    seen_mask = 0
    for mask in function._bitset().masks:
        if mask & seen_mask:
            return False
        seen_mask |= mask
    return True


def idnf_model_count(function: DNF) -> int:
    """Exact model count of an iDNF over its domain (linear time).

    Raises ``ValueError`` if the function is not an iDNF.
    """
    total_vars = function.num_variables()
    occurring = 0
    non_models_occurring = 1
    if kernel_enabled():
        seen_mask = 0
        for mask in function._bitset().masks:
            if mask & seen_mask:
                raise ValueError("idnf_model_count requires an iDNF")
            seen_mask |= mask
            width = popcount(mask)
            occurring += width
            non_models_occurring *= (1 << width) - 1
    else:
        if not is_idnf(function):
            raise ValueError("idnf_model_count requires an iDNF")
        for clause in function.clauses:
            occurring += len(clause)
            non_models_occurring *= (1 << len(clause)) - 1
    silent = total_vars - occurring
    # Non-models over the full domain: every clause unsatisfied, silent vars free.
    non_models = non_models_occurring << silent
    return (1 << total_vars) - non_models


def _masks_shortest_first(function: DNF) -> List[int]:
    """Clause masks in the syntheses' deterministic shortest-first order.

    Bit positions follow the sorted domain order, so comparing position
    tuples is exactly the sorted-variable-tuple comparison the frozenset
    reference uses.
    """
    keyed = []
    for mask in function._bitset().masks:
        positions = []
        remaining = mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            positions.append(low.bit_length() - 1)
        keyed.append((len(positions), tuple(positions), mask))
    keyed.sort()
    return [mask for _, _, mask in keyed]


def lower_idnf(function: DNF) -> DNF:
    """The ``L`` synthesis: a variable-disjoint subset of the clauses.

    Greedily keeps clauses (shortest first, deterministically ordered) whose
    variables are disjoint from all previously kept clauses.  Shorter clauses
    are preferred because they exclude fewer assignments, which empirically
    yields larger (tighter) lower bounds.  The result is over the same domain
    as ``function``.
    """
    if not kernel_enabled():
        kept: List[Clause] = []
        used: set[int] = set()
        for clause_tuple in sorted(function.sorted_clauses(),
                                   key=lambda c: (len(c), c)):
            clause = frozenset(clause_tuple)
            if not (clause & used):
                kept.append(clause)
                used |= clause
        return DNF(kept, domain=function.domain)
    kept_masks: List[int] = []
    used_mask = 0
    for mask in _masks_shortest_first(function):
        if not mask & used_mask:
            kept_masks.append(mask)
            used_mask |= mask
    return DNF._from_kernel(kept_masks, function._bitset().order)


def upper_idnf(function: DNF) -> DNF:
    """The ``U`` synthesis: keep one occurrence of each variable.

    Clauses are visited in a deterministic shortest-first order; within each
    clause only the variables not yet seen in earlier kept clauses are
    retained.  The upper-bound property (Proposition 12) needs ``U(phi)`` to
    contain, for every clause ``C`` of ``phi``, some clause that is a subset
    of ``C``.  When a clause contributes no fresh variable at all, an
    already-kept clause sharing a variable with it is weakened to that single
    shared variable, which is a subset of both clauses and keeps the result
    an iDNF.  The result is over the same domain as ``function``.
    """
    if not kernel_enabled():
        kept: List[Clause] = []
        seen: set[int] = set()
        for clause_tuple in sorted(function.sorted_clauses(),
                                   key=lambda c: (len(c), c)):
            clause = frozenset(clause_tuple)
            fresh = clause - seen
            if fresh:
                kept.append(frozenset(fresh))
                seen |= fresh
            else:
                shared = min(clause)
                for index, existing in enumerate(kept):
                    if shared in existing:
                        kept[index] = frozenset({shared})
                        break
        return DNF(kept, domain=function.domain).absorb()
    kept_masks: List[int] = []
    seen_mask = 0
    for mask in _masks_shortest_first(function):
        fresh = mask & ~seen_mask
        if fresh:
            kept_masks.append(fresh)
            seen_mask |= fresh
        else:
            shared_bit = mask & -mask
            for index, existing in enumerate(kept_masks):
                if existing & shared_bit:
                    kept_masks[index] = shared_bit
                    break
    return DNF._from_kernel(
        kept_masks, function._bitset().order).absorb()
