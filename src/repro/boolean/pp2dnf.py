"""PP2DNF functions, bipartite graphs, #BIS and #NSat (Section 4.2, Appendix C).

The hardness side of the paper's dichotomy reduces counting independent sets
in bipartite graphs (#BIS) to counting non-satisfying assignments of PP2DNF
functions (#NSat), and then shows that a polynomial-time ranking oracle for a
non-hierarchical query would give an FPTAS for #NSat.  This module provides
the concrete constructions so the reduction can be exercised end to end:

* :class:`BipartiteGraph` and brute-force #BIS;
* :class:`PP2DNF` (positive partitioned 2-DNF) functions and brute-force #NSat;
* the parsimonious translation of Lemma 22 (graph -> PP2DNF);
* the gadget of Lemma 24: ``xi = (x ^& phi) | (y ^& psi_m)`` where ``^&`` is
  the "hat-and" operator that conjoins a fresh variable with every variable of
  the second operand's right-hand side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from repro.boolean.dnf import DNF


@dataclass(frozen=True)
class BipartiteGraph:
    """An undirected bipartite graph with parts ``left`` and ``right``."""

    left: FrozenSet[int]
    right: FrozenSet[int]
    edges: FrozenSet[Tuple[int, int]] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.left & self.right:
            raise ValueError("bipartition parts must be disjoint")
        for u, w in self.edges:
            if u not in self.left or w not in self.right:
                raise ValueError(f"edge ({u}, {w}) does not go left -> right")

    @staticmethod
    def from_edges(edges: Iterable[Tuple[int, int]],
                   left: Iterable[int] = (),
                   right: Iterable[int] = ()) -> "BipartiteGraph":
        """Build a graph from an edge list plus optional isolated nodes."""
        edge_set = frozenset((int(u), int(w)) for u, w in edges)
        left_nodes = set(int(v) for v in left) | {u for u, _ in edge_set}
        right_nodes = set(int(v) for v in right) | {w for _, w in edge_set}
        return BipartiteGraph(frozenset(left_nodes), frozenset(right_nodes),
                              edge_set)

    def nodes(self) -> FrozenSet[int]:
        """All nodes of the graph."""
        return self.left | self.right

    def count_independent_sets(self) -> int:
        """Brute-force #BIS: the number of independent subsets of the nodes.

        Exponential in the number of nodes; intended for small instances in
        tests and for validating the parsimonious reduction.  Enumeration
        runs on bitmasks (one submask test per edge) rather than per-node
        set membership.
        """
        nodes = sorted(self.nodes())
        index = {node: position for position, node in enumerate(nodes)}
        edge_masks = [(1 << index[u]) | (1 << index[w])
                      for u, w in self.edges]
        count = 0
        for chosen in range(1 << len(nodes)):
            for edge_mask in edge_masks:
                if chosen & edge_mask == edge_mask:
                    break
            else:
                count += 1
        return count


class PP2DNF:
    """A positive partitioned 2-DNF function.

    The variables are split into two disjoint parts; every clause is the
    conjunction of one variable from each part.  This is exactly the class of
    lineages of the basic non-hierarchical query
    ``Q_nh = exists X, Y. R(X), S(X, Y), T(Y)`` when the ``S`` facts are
    exogenous.
    """

    __slots__ = ("_left", "_right", "_clauses")

    def __init__(self, left: Iterable[int], right: Iterable[int],
                 clauses: Iterable[Tuple[int, int]]) -> None:
        self._left = frozenset(int(v) for v in left)
        self._right = frozenset(int(v) for v in right)
        if self._left & self._right:
            raise ValueError("the two variable parts must be disjoint")
        clause_set = frozenset((int(a), int(b)) for a, b in clauses)
        for a, b in clause_set:
            if a not in self._left or b not in self._right:
                raise ValueError(f"clause ({a}, {b}) does not span the parts")
        self._clauses = clause_set

    @property
    def left(self) -> FrozenSet[int]:
        """Variables of the first part."""
        return self._left

    @property
    def right(self) -> FrozenSet[int]:
        """Variables of the second part."""
        return self._right

    @property
    def clauses(self) -> FrozenSet[Tuple[int, int]]:
        """Clauses as (left variable, right variable) pairs."""
        return self._clauses

    def domain(self) -> FrozenSet[int]:
        """All variables of the function."""
        return self._left | self._right

    def to_dnf(self) -> DNF:
        """The function as a general :class:`DNF` over its full domain."""
        return DNF([[a, b] for a, b in self._clauses], domain=self.domain())

    def count_non_satisfying(self) -> int:
        """Brute-force #NSat over the full domain (for small instances).

        Assignments and clauses are bitmasks over the sorted domain, so the
        inner test is one submask comparison per clause.
        """
        variables = sorted(self.domain())
        index = {variable: position
                 for position, variable in enumerate(variables)}
        clause_masks = [(1 << index[a]) | (1 << index[b])
                        for a, b in self._clauses]
        non_sat = 0
        for assignment in range(1 << len(variables)):
            for clause_mask in clause_masks:
                if assignment & clause_mask == clause_mask:
                    break
            else:
                non_sat += 1
        return non_sat

    def __repr__(self) -> str:
        return (f"PP2DNF(|left|={len(self._left)}, |right|={len(self._right)}, "
                f"|clauses|={len(self._clauses)})")


def graph_to_pp2dnf(graph: BipartiteGraph) -> PP2DNF:
    """The parsimonious reduction of Lemma 22: #BIS(G) = #NSat(phi_G).

    Each node becomes a variable; each edge ``(u, w)`` becomes the clause
    ``x_u & x_w``.  A node subset is independent iff the corresponding
    assignment does not satisfy the function.
    """
    return PP2DNF(graph.left, graph.right, graph.edges)


def hat_and(fresh: int, function: PP2DNF) -> PP2DNF:
    """The ``z ^& psi`` operator of Lemma 24.

    Adds the fresh left-part variable ``z`` and the clauses ``z & y`` for
    every right-part variable ``y`` of ``function``.
    """
    if fresh in function.domain():
        raise ValueError("the hat-and variable must be fresh")
    clauses = set(function.clauses)
    clauses |= {(fresh, y) for y in function.right}
    return PP2DNF(function.left | {fresh}, function.right, clauses)


def matching_function(pairs: Sequence[Tuple[int, int]]) -> PP2DNF:
    """The function ``psi_m = (z^1_1 & z^2_1) | ... | (z^1_m & z^2_m)``.

    ``pairs`` lists the (left, right) variable ids of the ``m`` disjoint
    clauses.  Used by the Lemma 24 gadget; its non-satisfying-assignment
    counts are ``3^m`` (without the hat variable) and ``3^m + 2^m`` with it.
    """
    left = [a for a, _ in pairs]
    right = [b for _, b in pairs]
    if len(set(left)) != len(left) or len(set(right)) != len(right):
        raise ValueError("matching variables must be distinct")
    return PP2DNF(left, right, pairs)


def lemma24_gadget(phi: PP2DNF, psi: PP2DNF, x_var: int, y_var: int) -> PP2DNF:
    """Build the Lemma 24 function ``xi = (x ^& phi) | (y ^& psi)``.

    ``phi`` and ``psi`` must be over disjoint variables; ``x_var`` and
    ``y_var`` must be fresh and distinct.  The Banzhaf values of the facts
    associated with ``x_var`` and ``y_var`` in the lineage of ``Q_nh`` over
    the Lemma 23 database of ``xi`` encode ``#NSat(phi)`` (Appendix C).
    """
    if phi.domain() & psi.domain():
        raise ValueError("phi and psi must be over disjoint variables")
    if x_var == y_var or {x_var, y_var} & (phi.domain() | psi.domain()):
        raise ValueError("x_var and y_var must be fresh and distinct")
    left_phi = hat_and(x_var, phi)
    right_psi = hat_and(y_var, psi)
    return PP2DNF(left_phi.left | right_psi.left,
                  left_phi.right | right_psi.right,
                  left_phi.clauses | right_psi.clauses)


def count_independent_sets_nx(graph: BipartiteGraph) -> int:
    """#BIS via transfer-matrix style dynamic programming on small graphs.

    Provided as a second implementation to cross-check the brute force in
    property tests.  Enumerates subsets of the smaller part and counts, for
    each, the free nodes of the other part.
    """
    small, large = (graph.left, graph.right)
    if len(small) > len(large):
        small, large = large, small
    small_nodes = sorted(small)
    neighbours = {node: set() for node in small_nodes}
    for u, w in graph.edges:
        if u in neighbours:
            neighbours[u].add(w)
        elif w in neighbours:
            neighbours[w].add(u)
    total = 0
    for mask in range(1 << len(small_nodes)):
        chosen = [small_nodes[i] for i in range(len(small_nodes)) if mask >> i & 1]
        blocked: set[int] = set()
        for node in chosen:
            blocked |= neighbours[node]
        total += 1 << (len(large) - len(blocked))
    return total
