"""Structural operations on positive DNF functions.

The d-tree compiler needs three structural primitives (Section 3.1):

* *independence partitioning*: split a DNF into connected components that
  share no variables (a disjunction of independent functions);
* *factoring out* variables common to all clauses (a conjunction of a literal
  product with the residual function);
* *Shannon expansion* on a chosen variable, yielding two mutually exclusive
  functions over the same variables.

All functions here are pure: they return new :class:`~repro.boolean.dnf.DNF`
objects and never mutate their inputs.

Each primitive has two implementations selected by
:func:`repro.boolean.dnf.kernel_enabled`: the bitset-kernel fast path
(mask-union union-find for components, single AND-reduction for factoring,
mask surgery for conditioning) and the original frozenset reference kept
for differential testing.  Both produce identical DNFs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.boolean.bitset import (
    component_groups,
    iter_bits,
    project_mask,
    projection_table,
)
from repro.boolean.dnf import Clause, ConstantTrue, DNF, kernel_enabled


def cofactor(function: DNF, variable: int, value: bool) -> DNF:
    """Alias for :meth:`DNF.cofactor`; may raise :class:`ConstantTrue`."""
    return function.cofactor(variable, value)


def condition(function: DNF, trues: Sequence[int], falses: Sequence[int]) -> DNF:
    """Cofactor on several variables at once.

    Raises :class:`ConstantTrue` if the function collapses to the constant 1.
    """
    result = function
    for variable in falses:
        if variable in result.domain:
            result = result.cofactor(variable, False)
    for variable in trues:
        if variable in result.domain:
            result = result.cofactor(variable, True)
    return result


def is_independent(left: DNF, right: DNF) -> bool:
    """``True`` iff the two functions share no occurring variables."""
    return not (left.variables & right.variables)


def is_mutually_exclusive(left: DNF, right: DNF) -> bool:
    """``True`` iff the two functions have no common model (brute force).

    Exhaustive over the union of the domains; used in tests and assertions,
    never on large functions.
    """
    domain = left.domain | right.domain
    wide_left = left.with_domain(domain)
    wide_right = right.with_domain(domain)
    variables = sorted(domain)
    for mask in range(1 << len(variables)):
        assignment = frozenset(
            variables[i] for i in range(len(variables)) if mask >> i & 1
        )
        if wide_left.evaluate(assignment) and wide_right.evaluate(assignment):
            return False
    return True


def clause_components(clauses: Sequence[Clause]) -> List[List[Clause]]:
    """Group clauses into connected components of the variable-sharing graph.

    Two clauses are connected if they share a variable.  Uses a union-find
    over variables so the running time is near-linear in the function size.
    """
    parent: Dict[int, int] = {}

    def find(item: int) -> int:
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    for clause in clauses:
        first = None
        for variable in clause:
            if variable not in parent:
                parent[variable] = variable
            if first is None:
                first = variable
            else:
                union(first, variable)

    groups: Dict[int, List[Clause]] = {}
    for clause in clauses:
        representative = find(next(iter(clause)))
        groups.setdefault(representative, []).append(clause)
    return list(groups.values())


def independent_components(function: DNF) -> List[DNF]:
    """Split a DNF into independent sub-functions (disjunction decomposition).

    The clauses are partitioned into connected components; each component
    becomes a DNF over exactly its own variables.  Domain variables that occur
    in no clause ("silent" variables) are returned as part of the *last*
    component's domain only if there is at least one component; if the
    function is constant false the single false component keeps the whole
    domain.  Callers that need precise bookkeeping of silent variables (the
    d-tree compiler) handle them explicitly before calling this function.
    """
    if function.is_false():
        return [function]
    if not kernel_enabled():
        components = clause_components(list(function.clauses))
        return [DNF(component) for component in components]
    kernel = function._bitset()
    groups = component_groups(kernel.masks)
    if len(groups) == 1:
        return [function.restricted_domain()]
    order = kernel.order
    width = len(order)
    result: List[DNF] = []
    for group in groups:
        support = 0
        for mask in group:
            support |= mask
        if len(group) == 1:
            # Single-clause component: its projection is the full mask
            # over its own variables -- no table needed.
            component_order = []
            remaining = support
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                component_order.append(order[low.bit_length() - 1])
            count = len(component_order)
            result.append(DNF._from_kernel(
                [(1 << count) - 1], tuple(component_order),
                normalized=True, support=(1 << count) - 1))
            continue
        table = projection_table(support, width)
        component_order = []
        remaining = support
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            component_order.append(order[low.bit_length() - 1])
        result.append(DNF._from_kernel(
            [project_mask(mask, table) for mask in group],
            tuple(component_order), normalized=True,
            support=(1 << len(component_order)) - 1))
    return result


def factor_common_variables(function: DNF) -> Tuple[FrozenSet[int], DNF]:
    """Factor out variables occurring in every clause.

    Returns ``(common, residual)`` such that the function equals the
    conjunction of all variables in ``common`` with ``residual``, and
    ``residual`` is over ``domain - common``.  If a clause consists solely of
    common variables the residual is the constant 1; this is signalled with
    :class:`ConstantTrue` carrying the residual domain.
    """
    if not kernel_enabled():
        common = function.common_variables()
        if not common:
            return frozenset(), function
        residual_domain = function.domain - common
        residual_clauses = []
        for clause in function.clauses:
            reduced = clause - common
            if not reduced:
                raise ConstantTrue(frozenset(residual_domain))
            residual_clauses.append(reduced)
        return common, DNF(residual_clauses, domain=residual_domain)
    kernel = function._bitset()
    common_mask = kernel.common_mask()
    if not common_mask:
        return frozenset(), function
    order = kernel.order
    keep_mask = ((1 << len(order)) - 1) ^ common_mask
    residual_order = []
    remaining = keep_mask
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        residual_order.append(order[low.bit_length() - 1])
    residual_order = tuple(residual_order)
    table = projection_table(keep_mask, len(order))
    residual_masks = []
    for mask in kernel.masks:
        reduced = mask & keep_mask
        if not reduced:
            raise ConstantTrue(frozenset(residual_order))
        residual_masks.append(project_mask(reduced, table))
    common = kernel.variables_of_mask(common_mask)
    # Every mask carried the full common set, so projecting it away is
    # order- and distinctness-preserving.
    return common, DNF._from_kernel(
        residual_masks, residual_order, normalized=True,
        support=project_mask(kernel.support & keep_mask, table))


def shannon_expansion(function: DNF, variable: int) -> Tuple[DNF, DNF]:
    """Shannon expansion ``phi = (x & phi[x:=1]) | (~x & phi[x:=0])``.

    Returns the pair ``(phi[x:=1], phi[x:=0])``, both over the domain minus
    ``x``.  The positive cofactor may be the constant 1, in which case
    :class:`ConstantTrue` propagates to the caller (the d-tree compiler turns
    it into a constant leaf).
    """
    if variable not in function.domain:
        raise ValueError(f"variable {variable} not in the function's domain")
    negative = function.cofactor(variable, False)
    positive = function.cofactor(variable, True)
    return positive, negative
