"""Assignments, evaluation and brute-force model counting for DNFs.

These are the definitional semantics used as ground truth throughout the test
suite: the scalable model counting paths live in the d-tree and iDNF modules.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, Iterator

from repro.boolean.dnf import DNF

#: An assignment is identified with the set of variables it maps to 1
#: (the paper's set notation for assignments).
Assignment = FrozenSet[int]


def evaluate_dnf(function: DNF, assignment: Iterable[int]) -> bool:
    """Evaluate ``function`` under the assignment given as a set of true vars."""
    return function.evaluate(frozenset(assignment))


def enumerate_assignments(domain: Iterable[int]) -> Iterator[Assignment]:
    """Yield all ``2^n`` assignments over ``domain`` as frozensets."""
    variables = sorted(set(domain))
    for size in range(len(variables) + 1):
        for subset in combinations(variables, size):
            yield frozenset(subset)


def enumerate_models(function: DNF) -> Iterator[Assignment]:
    """Yield all satisfying assignments of ``function`` over its domain."""
    for assignment in enumerate_assignments(function.domain):
        if function.evaluate(assignment):
            yield assignment


def count_models(function: DNF) -> int:
    """Brute-force model count ``#phi`` over the function's domain.

    Exponential in the number of domain variables; use only on small
    functions (tests, worked examples, ground truth for property tests).
    """
    return sum(1 for _ in enumerate_models(function))


def count_non_models(function: DNF) -> int:
    """Brute-force count of non-satisfying assignments over the domain."""
    return (1 << function.num_variables()) - count_models(function)


def banzhaf_brute_force(function: DNF, variable: int) -> int:
    """Definitional Banzhaf value (Definition 1 / Proposition 3), brute force.

    ``Banzhaf(phi, x) = #phi[x:=1] - #phi[x:=0]`` where both counts are over
    the domain without ``x``.  For positive functions the value is always
    non-negative.
    """
    if variable not in function.domain:
        raise ValueError(f"variable {variable} not in the function's domain")
    rest = function.domain - {variable}
    positive = 0
    negative = 0
    for assignment in enumerate_assignments(rest):
        if function.evaluate(assignment | {variable}):
            positive += 1
        if function.evaluate(assignment):
            negative += 1
    return positive - negative


def critical_set_counts(function: DNF, variable: int) -> list[int]:
    """Number of critical sets of each size for ``variable`` (Appendix D).

    Entry ``k`` of the returned list is ``#kC``: the number of assignments
    ``Y`` of size ``k`` over the domain minus ``x`` with ``phi[Y] = 0`` and
    ``phi[Y + x] = 1``.  The Banzhaf value is the sum of all entries; the
    Shapley value weights entry ``k`` by ``k! (n-k-1)! / n!``.
    """
    if variable not in function.domain:
        raise ValueError(f"variable {variable} not in the function's domain")
    rest = sorted(function.domain - {variable})
    counts = [0] * (len(rest) + 1)
    for size in range(len(rest) + 1):
        for subset in combinations(rest, size):
            chosen = frozenset(subset)
            if not function.evaluate(chosen) and function.evaluate(chosen | {variable}):
                counts[size] += 1
    return counts
