"""CNF representation and DNF -> CNF conversion.

The Sig22 baseline of the paper [17] feeds the query lineage to an
off-the-shelf knowledge compiler that expects CNF input, so the lineage (a
positive DNF) is first converted to CNF.  The paper attributes part of
Sig22's slowness to exactly this detour: the CNF can be much larger and its
structure hides the independence that the DNF exposes.  We reproduce the same
pipeline: this module performs the distributive DNF->CNF conversion (with
subsumption removal and a safety cap), and :mod:`repro.baselines.sig22`
compiles the CNF.

A CNF here is positive as well (lineage has no negation): a conjunction of
clauses, each clause a disjunction of variables.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List

from repro.boolean.dnf import DNF

CNFClause = FrozenSet[int]


class CNF:
    """A positive CNF: conjunction of disjunctive clauses over a domain."""

    __slots__ = ("_clauses", "_domain")

    def __init__(self, clauses: Iterable[Iterable[int]],
                 domain: Iterable[int] | None = None) -> None:
        clause_set = frozenset(frozenset(int(v) for v in c) for c in clauses)
        if any(not c for c in clause_set):
            raise ValueError("empty CNF clause (constant FALSE) is not allowed")
        occurring: set[int] = set()
        for clause in clause_set:
            occurring |= clause
        dom = frozenset(occurring if domain is None else
                        (int(v) for v in domain))
        if not occurring <= dom:
            raise ValueError("domain must cover all clause variables")
        self._clauses = clause_set
        self._domain = dom

    @property
    def clauses(self) -> FrozenSet[CNFClause]:
        """The set of disjunctive clauses."""
        return self._clauses

    @property
    def domain(self) -> FrozenSet[int]:
        """The variable domain."""
        return self._domain

    def num_clauses(self) -> int:
        """Number of clauses."""
        return len(self._clauses)

    def size(self) -> int:
        """Total number of literal occurrences."""
        return sum(len(c) for c in self._clauses)

    def evaluate(self, true_variables: Iterable[int]) -> bool:
        """Evaluate under the assignment given as the set of true variables."""
        trues = frozenset(true_variables)
        return all(clause & trues for clause in self._clauses)

    def __repr__(self) -> str:
        parts = sorted(
            "(" + " | ".join(f"x{v}" for v in sorted(c)) + ")"
            for c in self._clauses
        )
        return "CNF<" + " & ".join(parts) + ">"


class CNFTooLarge(Exception):
    """Raised when the DNF -> CNF conversion exceeds the clause cap.

    The Sig22 baseline treats this as a failed instance, mirroring the
    timeouts/failures of the original system on large lineages.
    """


def dnf_to_cnf(function: DNF, max_clauses: int = 20_000) -> CNF:
    """Convert a positive DNF to an equivalent positive CNF by distribution.

    The conversion multiplies out the clauses: the CNF is the conjunction,
    over all ways of picking one variable from each DNF clause, of the
    disjunction of the picked variables.  Subsumed CNF clauses are pruned as
    we go.  The intermediate clause set is checked against ``max_clauses``
    *before* the (quadratic) subsumption pass, so the cap also bounds the
    conversion time; exceeding it raises :class:`CNFTooLarge`.
    """
    if function.is_false():
        raise ValueError("cannot convert the constant FALSE to a positive CNF")
    cnf_clauses: List[FrozenSet[int]] = [frozenset()]
    for dnf_clause in sorted(function.sorted_clauses(), key=len):
        variables = list(dnf_clause)
        new_clauses: List[FrozenSet[int]] = []
        for existing in cnf_clauses:
            if existing & set(variables):
                # The existing clause already contains a variable of this DNF
                # clause, so distributing over it adds nothing new.
                new_clauses.append(existing)
                continue
            for variable in variables:
                new_clauses.append(existing | {variable})
            if len(new_clauses) > max_clauses:
                raise CNFTooLarge(
                    f"CNF conversion exceeded {max_clauses} clauses"
                )
        cnf_clauses = _remove_subsumed(new_clauses)
        if len(cnf_clauses) > max_clauses:
            raise CNFTooLarge(
                f"CNF conversion exceeded {max_clauses} clauses"
            )
    return CNF(cnf_clauses, domain=function.domain)


def _remove_subsumed(clauses: List[FrozenSet[int]]) -> List[FrozenSet[int]]:
    """Remove CNF clauses that are supersets of other clauses."""
    ordered = sorted(set(clauses), key=len)
    kept: List[FrozenSet[int]] = []
    for clause in ordered:
        if not any(other <= clause for other in kept):
            kept.append(clause)
    return kept


def cnf_to_dnf(cnf: CNF, max_clauses: int = 200_000) -> DNF:
    """Convert a positive CNF back to DNF by distribution (testing helper)."""
    dnf_clauses: List[FrozenSet[int]] = [frozenset()]
    for cnf_clause in sorted(cnf.clauses, key=len):
        new_clauses: List[FrozenSet[int]] = []
        for existing in dnf_clauses:
            if existing & cnf_clause:
                new_clauses.append(existing)
                continue
            for variable in cnf_clause:
                new_clauses.append(existing | {variable})
        # Keep minimal clauses only (absorption).
        new_clauses = _remove_subsumed(new_clauses)
        if len(new_clauses) > max_clauses:
            raise CNFTooLarge(f"DNF conversion exceeded {max_clauses} clauses")
        dnf_clauses = new_clauses
    return DNF([c for c in dnf_clauses if c], domain=cnf.domain)
