"""Deterministic fault injection behind named sites.

Production code plants *sites* -- ``faults.check("store.flush")`` -- at
the points where real failures happen (store I/O, pool tasks, compile
steps, batch serving).  A :class:`FaultPlan` is a seeded list of
:class:`FaultRule` entries that decide, per site and per call count,
whether to raise, delay, or kill the process.  With no plan installed
``check`` is a single global load and a ``None`` test, so the hooks are
free in production; with a plan installed the behaviour is a pure
function of the plan (seed, rule order, per-site call counts), so a
chaos schedule replays bit-identically.

Rules
-----
A rule fires on calls to its ``site`` once the site's call count exceeds
``after``, at most ``times`` times, each time with ``probability``
(drawn from a per-rule ``random.Random`` seeded from the plan seed, so
one rule's draws never perturb another's).  ``once_path`` gates a rule
on atomic creation of a sentinel file (``O_CREAT | O_EXCL``), which
makes "exactly one worker process dies" expressible across forked pool
workers that would otherwise each inherit a private counter.

Actions
-------
``raise``
    Raise an *injected* exception: a dynamic subclass of the requested
    real type (``OSError``, ``TimeoutError``, ...) mixed with
    :class:`~repro.reliability.errors.FaultInjected`, so ordinary
    handlers catch it while tests can assert provenance.  ``errno``
    accepts numbers or names (``"ENOSPC"``).
``delay``
    Sleep ``delay_seconds`` (default 50 ms).
``kill``
    ``os._exit(1)`` -- the hard death of a pool worker, not an
    exception anything can catch.

Installation
------------
``install(plan)`` / ``clear()`` manage the ambient plan;
``installed(plan)`` is the context-manager form tests use.  Engines
install their ``EngineConfig(fault_plan=...)`` on construction.  For
subprocesses that do not inherit interpreter state, ``check`` lazily
loads a plan from the ``REPRO_FAULT_PLAN`` environment variable (a JSON
spec) on its first call.
"""

from __future__ import annotations

import errno as _errno_module
import json
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .errors import CircuitOpenError, FaultInjected, TransientStoreError

#: Injection sites planted in the engine; kept here so plans can be
#: validated against typos instead of silently never firing.
KNOWN_SITES = (
    "store.flush",
    "store.read",
    "pool.task",
    "compile.step",
    "serve.batch",
    "serve.request",
)

_ERROR_CLASSES = {
    "OSError": OSError,
    "IOError": OSError,
    "TimeoutError": TimeoutError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
    "ConnectionError": ConnectionError,
    "TransientStoreError": TransientStoreError,
    "CircuitOpenError": CircuitOpenError,
}

_injected_class_cache: Dict[type, type] = {}


def _error_class(name: str) -> type:
    if name in _ERROR_CLASSES:
        return _ERROR_CLASSES[name]
    if name == "StoreLockedError":
        # Imported lazily: logstore plants fault sites, so importing it
        # at module load would be circular.
        from repro.engine.logstore import StoreLockedError

        return StoreLockedError
    raise ValueError(
        f"unknown fault error class {name!r}; known: "
        f"{sorted(_ERROR_CLASSES) + ['StoreLockedError']}"
    )


def injected_error(
    base: type,
    message: str,
    *,
    error_number: Optional[int] = None,
) -> BaseException:
    """Build an instance of ``base`` that also carries :class:`FaultInjected`."""
    cls = _injected_class_cache.get(base)
    if cls is None:
        cls = type(f"Injected{base.__name__}", (base, FaultInjected), {})
        _injected_class_cache[base] = cls
    if error_number is not None and issubclass(base, OSError):
        return cls(error_number, message)
    return cls(message)


def _resolve_errno(value: Union[int, str, None]) -> Optional[int]:
    if value is None or isinstance(value, int):
        return value
    number = getattr(_errno_module, value, None)
    if not isinstance(number, int):
        raise ValueError(f"unknown errno name {value!r}")
    return number


@dataclass(frozen=True)
class FaultRule:
    """One deterministic rule of a :class:`FaultPlan`.

    Attributes:
        site: Injection site the rule listens on (see ``KNOWN_SITES``).
        action: ``"raise"``, ``"delay"``, or ``"kill"``.
        error: Exception class name for ``"raise"`` (default ``OSError``).
        errno: Optional errno number or name (``"ENOSPC"``) set on
            injected ``OSError`` instances.
        after: Skip the first ``after`` calls to the site.
        times: Fire at most this many times (``None`` = unbounded).
        probability: Chance of firing once eligible, drawn from a
            per-rule seeded RNG.
        delay_seconds: Sleep length for ``"delay"``.
        message: Text of the injected exception.
        once_path: Sentinel file path; the rule fires only for the one
            process/call that atomically creates it.
    """

    site: str
    action: str = "raise"
    error: str = "OSError"
    errno: Union[int, str, None] = None
    after: int = 0
    times: Optional[int] = None
    probability: float = 1.0
    delay_seconds: float = 0.05
    message: str = ""
    once_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: {KNOWN_SITES}"
            )
        if self.action not in ("raise", "delay", "kill"):
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.action == "raise":
            _error_class(self.error)  # validate eagerly
        _resolve_errno(self.errno)
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 when given")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")

    def to_spec(self) -> Dict[str, object]:
        spec: Dict[str, object] = {"site": self.site, "action": self.action}
        if self.action == "raise":
            spec["error"] = self.error
            if self.errno is not None:
                spec["errno"] = self.errno
        if self.after:
            spec["after"] = self.after
        if self.times is not None:
            spec["times"] = self.times
        if self.probability != 1.0:
            spec["probability"] = self.probability
        if self.action == "delay":
            spec["delay_seconds"] = self.delay_seconds
        if self.message:
            spec["message"] = self.message
        if self.once_path is not None:
            spec["once_path"] = self.once_path
        return spec


class _RuleState:
    """Mutable per-rule firing state (kept outside the frozen rule)."""

    __slots__ = ("fired", "rng")

    def __init__(self, seed_material: str) -> None:
        self.fired = 0
        self.rng = random.Random(seed_material)


class FaultPlan:
    """A seeded, deterministic schedule of faults over named sites.

    Thread-safe: per-site call counters and per-rule state advance under
    one lock, and each rule draws from its own RNG so concurrent sites
    cannot perturb each other's schedules.
    """

    def __init__(self, rules: Sequence[FaultRule] = (), *, seed: int = 0) -> None:
        self.seed = int(seed)
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self._lock = threading.Lock()
        self._calls: Dict[str, int] = {}
        self._states = [
            _RuleState(f"{self.seed}:{index}:{rule.site}")
            for index, rule in enumerate(self.rules)
        ]
        self.fired: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # construction / serialization

    @classmethod
    def from_spec(cls, spec: Union[str, Dict[str, object], List[object], None]) -> Optional["FaultPlan"]:
        """Build a plan from a JSON string, a dict spec, or a rule list."""
        if spec is None:
            return None
        if isinstance(spec, FaultPlan):
            return spec
        if isinstance(spec, str):
            text = spec.strip()
            if not text:
                return None
            spec = json.loads(text)
        if isinstance(spec, list):
            spec = {"rules": spec}
        if not isinstance(spec, dict):
            raise ValueError(f"fault plan spec must be JSON object/list, got {type(spec).__name__}")
        raw_rules = spec.get("rules", [])
        rules = []
        for raw in raw_rules:
            if isinstance(raw, FaultRule):
                rules.append(raw)
            else:
                rules.append(FaultRule(**raw))
        return cls(rules, seed=int(spec.get("seed", 0)))

    def to_spec(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "rules": [rule.to_spec() for rule in self.rules],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_spec(), sort_keys=True)

    # ------------------------------------------------------------------
    # firing

    def calls(self, site: str) -> int:
        with self._lock:
            return self._calls.get(site, 0)

    def _claim_once(self, path: str) -> bool:
        try:
            handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(handle)
        return True

    def fire(self, site: str) -> None:
        """Advance the site counter and execute the first matching rule."""
        action: Optional[Tuple[FaultRule, str]] = None
        with self._lock:
            count = self._calls.get(site, 0) + 1
            self._calls[site] = count
            for rule, state in zip(self.rules, self._states):
                if rule.site != site:
                    continue
                if count <= rule.after:
                    continue
                if rule.times is not None and state.fired >= rule.times:
                    continue
                if rule.probability < 1.0 and state.rng.random() >= rule.probability:
                    continue
                if rule.once_path is not None and not self._claim_once(rule.once_path):
                    continue
                state.fired += 1
                self.fired[site] = self.fired.get(site, 0) + 1
                action = (rule, rule.action)
                break
        if action is None:
            return
        rule, kind = action
        if kind == "delay":
            time.sleep(rule.delay_seconds)
            return
        if kind == "kill":
            os._exit(1)
        message = rule.message or f"injected {rule.error} at {site} (call {self._calls[site]})"
        raise injected_error(
            _error_class(rule.error),
            message,
            error_number=_resolve_errno(rule.errno),
        )


# ----------------------------------------------------------------------
# ambient plan

ENV_VAR = "REPRO_FAULT_PLAN"

_ACTIVE: Optional[FaultPlan] = None
_env_checked = False
_install_lock = threading.Lock()


def check(site: str) -> None:
    """Fault hook: free when no plan is installed.

    The fast path is one global load and a ``None`` test; the
    environment variable is consulted exactly once per process so
    subprocess tests (pool workers, CLI invocations) pick up plans
    without code changes.
    """
    global _env_checked, _ACTIVE
    plan = _ACTIVE
    if plan is None:
        if _env_checked:
            return
        with _install_lock:
            if not _env_checked:
                _env_checked = True
                spec = os.environ.get(ENV_VAR)
                if spec:
                    _ACTIVE = FaultPlan.from_spec(spec)
        plan = _ACTIVE
        if plan is None:
            return
    plan.fire(site)


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` as the ambient plan (idempotent; ``None`` is a no-op)."""
    global _ACTIVE
    if plan is None:
        return _ACTIVE
    with _install_lock:
        _ACTIVE = plan
    return plan


def clear() -> None:
    """Remove the ambient plan (and forget any env-derived plan)."""
    global _ACTIVE, _env_checked
    with _install_lock:
        _ACTIVE = None
        _env_checked = True


def active() -> Optional[FaultPlan]:
    return _ACTIVE


class installed:
    """Context manager: install a plan for the dynamic extent of a test."""

    def __init__(self, plan: Union[FaultPlan, str, dict, list, None]) -> None:
        self.plan = FaultPlan.from_spec(plan) if not isinstance(plan, FaultPlan) else plan

    def __enter__(self) -> Optional[FaultPlan]:
        install(self.plan)
        return self.plan

    def __exit__(self, *exc_info: object) -> None:
        clear()


def resolve_fault_plan(
    spec: Union[FaultPlan, str, dict, list, None],
) -> Optional[FaultPlan]:
    """Coerce an ``EngineConfig.fault_plan`` value into a :class:`FaultPlan`."""
    if spec is None or isinstance(spec, FaultPlan):
        return spec
    return FaultPlan.from_spec(spec)


__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "KNOWN_SITES",
    "active",
    "check",
    "clear",
    "injected_error",
    "install",
    "installed",
    "resolve_fault_plan",
]
