"""Reliability subsystem: fault injection, supervision, store resilience.

Four cooperating pieces (each in its own module):

* :mod:`~repro.reliability.faults` -- deterministic, seeded fault
  injection behind named sites (``faults.check("store.flush")``), off by
  default and free when disabled;
* :mod:`~repro.reliability.supervisor` -- :class:`SupervisedPool`,
  which survives process-pool worker crashes by rebuilding the executor
  and resubmitting only unfinished work under a bounded restart budget;
* :mod:`~repro.reliability.retry` / :mod:`~repro.reliability.breaker` /
  :mod:`~repro.reliability.resilient` -- bounded backoff, a circuit
  breaker, and the :class:`ResilientStore` wrapper that degrades the
  engine to memory-only caching while the persistent tier is down;
* :mod:`~repro.reliability.errors` -- the failure taxonomy tying it
  together.
"""

from .breaker import CircuitBreaker
from .errors import (
    CircuitOpenError,
    FaultInjected,
    ReliabilityError,
    RetryBudgetExceeded,
    TransientStoreError,
    WorkerCrash,
)
from .faults import FaultPlan, FaultRule, injected_error, resolve_fault_plan
from .resilient import ResilientStore, wrap_store
from .retry import RetryPolicy
from .supervisor import SupervisedPool

from . import faults

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "ReliabilityError",
    "ResilientStore",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "SupervisedPool",
    "TransientStoreError",
    "WorkerCrash",
    "faults",
    "injected_error",
    "resolve_fault_plan",
    "wrap_store",
]
