"""Bounded exponential backoff with jitter.

:class:`RetryPolicy` is a frozen value object describing *how* to retry
(attempt count, delay schedule, which exceptions are transient), with
the side effects -- sleeping and the callable itself -- injected so
tests can pin the schedule without wall-clock time.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from .errors import RetryBudgetExceeded, TransientStoreError

T = TypeVar("T")

#: Exceptions retried by default: raw I/O failures and the engine's own
#: transient-store wrapper.  Deliberately excludes ``StoreLockedError``
#: (a ``RuntimeError``): losing the writer lock is permanent, not
#: transient.
DEFAULT_RETRY_ON: Tuple[Type[BaseException], ...] = (OSError, TransientStoreError)


@dataclass(frozen=True)
class RetryPolicy:
    """Retry ``attempts`` times total with exponential backoff + jitter.

    Attributes:
        attempts: Total tries, including the first (``1`` = no retry).
        base_delay: Sleep before the first retry, in seconds.
        multiplier: Backoff factor between consecutive retries.
        max_delay: Cap on any single sleep.
        jitter: Fractional jitter: each sleep is scaled by a uniform
            draw from ``[1 - jitter, 1 + jitter]``.
        retry_on: Exception types considered transient; anything else
            propagates immediately.
    """

    attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.1
    retry_on: Tuple[Type[BaseException], ...] = DEFAULT_RETRY_ON

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, retry_index: int, *, rng: Optional[random.Random] = None) -> float:
        """Sleep length before retry ``retry_index`` (0-based)."""
        raw = min(self.max_delay, self.base_delay * (self.multiplier ** retry_index))
        if self.jitter:
            draw = (rng.random() if rng is not None else random.random())
            raw *= 1.0 + self.jitter * (2.0 * draw - 1.0)
        return raw

    def call(
        self,
        func: Callable[[], T],
        *,
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        rng: Optional[random.Random] = None,
        wrap_terminal: bool = False,
    ) -> T:
        """Run ``func`` under this policy.

        ``on_retry(retry_index, error)`` fires before each sleep (stats
        hooks live there).  The terminal failure re-raises unchanged so
        existing handlers keep matching, unless ``wrap_terminal`` asks
        for a :class:`RetryBudgetExceeded` with the cause attached.
        """
        last: Optional[BaseException] = None
        for attempt in range(self.attempts):
            try:
                return func()
            except self.retry_on as error:  # type: ignore[misc]
                last = error
                if attempt + 1 >= self.attempts:
                    break
                if on_retry is not None:
                    on_retry(attempt, error)
                sleep(self.delay(attempt, rng=rng))
        assert last is not None
        if wrap_terminal:
            raise RetryBudgetExceeded(
                f"{self.attempts} attempt(s) failed; last: {last!r}"
            ) from last
        raise last


__all__ = ["DEFAULT_RETRY_ON", "RetryPolicy"]
