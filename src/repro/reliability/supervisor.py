"""Supervised process-pool execution.

``ProcessPoolExecutor`` has a brutal failure mode: one worker dying
(OOM kill, segfault in a native extension, ``os._exit``) breaks the
*whole* pool -- every outstanding future raises ``BrokenProcessPool``
and the work is lost.  :class:`SupervisedPool` wraps the executor with
the supervision policy the engine wants instead:

* results stream back as they complete (unordered, tagged with the
  payload index);
* on a broken pool the executor is rebuilt and only the *unfinished*
  payloads are resubmitted -- completed results are never recomputed,
  so side effects (stats, yields) stay exactly-once;
* a per-task wall-clock watchdog treats "no completion within
  ``task_timeout`` seconds" as a hang and restarts the pool the same
  way;
* both are bounded by ``max_restarts``; past the budget
  :class:`~repro.reliability.errors.WorkerCrash` is raised and the
  caller picks its terminal degradation (the engine falls back to the
  serial path and counts it).

Exceptions *raised by the task itself* are not supervision events: they
propagate to the caller unchanged, exactly as with a bare executor.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterator, Optional, Sequence, Tuple

from .errors import WorkerCrash


class _WatchdogTimeout(Exception):
    """Internal: no task completed within the watchdog window."""


def _shutdown(executor: ProcessPoolExecutor) -> None:
    try:
        executor.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # Python < 3.9 signature
        executor.shutdown(wait=False)


class SupervisedPool:
    """Run payloads through a worker function under supervision.

    Attributes:
        crashes: Worker-death events observed (``BrokenProcessPool``).
        hangs: Watchdog expirations observed.
        restarts: Executor rebuilds performed (``crashes + hangs``).
    """

    def __init__(
        self,
        worker: Callable[[Any], Any],
        *,
        max_workers: int,
        max_restarts: int = 2,
        task_timeout: Optional[float] = None,
        on_crash: Optional[Callable[[str], None]] = None,
        executor_factory: Callable[..., ProcessPoolExecutor] = ProcessPoolExecutor,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive when given")
        self._worker = worker
        self._max_workers = max_workers
        self._max_restarts = max_restarts
        self._task_timeout = task_timeout
        self._on_crash = on_crash
        self._factory = executor_factory
        self.crashes = 0
        self.hangs = 0
        self.restarts = 0

    def run(self, payloads: Sequence[Any]) -> Iterator[Tuple[int, Any]]:
        """Yield ``(index, result)`` pairs, unordered, exactly once each.

        Raises :class:`WorkerCrash` once crashes/hangs exceed
        ``max_restarts``; task-level exceptions propagate unchanged.
        """
        pending = dict(enumerate(payloads))
        while pending:
            executor = self._factory(
                max_workers=min(self._max_workers, len(pending))
            )
            kind: Optional[str] = None
            try:
                try:
                    futures = {
                        executor.submit(self._worker, payload): index
                        for index, payload in pending.items()
                    }
                    not_done = set(futures)
                    while not_done:
                        done, not_done = wait(
                            not_done,
                            timeout=self._task_timeout,
                            return_when=FIRST_COMPLETED,
                        )
                        if not done:
                            raise _WatchdogTimeout()
                        for future in done:
                            index = futures[future]
                            result = future.result()
                            del pending[index]
                            yield index, result
                    return
                except BrokenProcessPool:
                    kind = "crash"
                    self.crashes += 1
                except _WatchdogTimeout:
                    kind = "hang"
                    self.hangs += 1
            finally:
                _shutdown(executor)
            self.restarts += 1
            if self._on_crash is not None:
                self._on_crash(kind or "crash")
            if self.restarts > self._max_restarts:
                raise WorkerCrash(
                    f"pool exceeded restart budget ({self._max_restarts}) "
                    f"after {self.crashes} crash(es) and {self.hangs} hang(s); "
                    f"{len(pending)} task(s) unfinished"
                )


__all__ = ["SupervisedPool"]
