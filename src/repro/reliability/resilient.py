"""Retry + circuit-breaker wrapper around any ``CacheStore``.

The persistent tier is an *optimization*: every entry it holds can be
recomputed, so a failing backend should degrade the engine to
memory-only caching, never kill requests.  :class:`ResilientStore`
encodes that policy around any object satisfying the ``CacheStore``
protocol:

* reads (``get`` / ``get_artifact``) are retried under a
  :class:`~repro.reliability.retry.RetryPolicy`; a terminal failure is
  reported as a cache *miss* (``None``), which is always safe;
* ``flush`` is retried the same way; a terminal failure is swallowed
  (pending writes stay buffered in the inner store, so the next
  successful flush persists them -- the ack point simply moves later);
* every terminal failure feeds a
  :class:`~repro.reliability.breaker.CircuitBreaker`; once it trips,
  store I/O is skipped outright (no timeouts piling up on a dead disk)
  until the reset timeout offers a half-open probe, whose success
  re-attaches the store;
* writes (``put`` / ``put_artifact``) are in-memory buffering in both
  backends and are forwarded even while open, so recovery flushes the
  accumulated entries.

Counters flow out through an injected ``on_counter(**deltas)`` hook
(the engine binds it to ``EngineStats.bump``): ``store_retries`` per
retry sleep, ``store_degraded`` per breaker trip.  Everything outside
the ``CacheStore`` protocol (``close``, ``compact``, ``refresh``,
``items``, ...) delegates to the inner store untouched, so the wrapper
is transparent to the CLI and the warm-start path.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from .breaker import CircuitBreaker
from .retry import RetryPolicy

_MISS = None


class ResilientStore:
    """Wrap ``inner`` with retry + breaker degradation (see module docs)."""

    def __init__(
        self,
        inner: Any,
        *,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        on_counter: Optional[Callable[..., None]] = None,
    ) -> None:
        self.inner = inner
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._on_counter = on_counter

    # ------------------------------------------------------------------
    # internals

    def _bump(self, **deltas: int) -> None:
        if self._on_counter is not None:
            self._on_counter(**deltas)

    def _count_retry(self, _attempt: int, _error: BaseException) -> None:
        self._bump(store_retries=1)

    def _guarded(self, operation: Callable[[], Any], *, miss: Any = _MISS) -> Any:
        """Run a store operation under breaker + retry; degrade to ``miss``."""
        if not self.breaker.allow():
            return miss
        try:
            result = self.retry.call(operation, on_retry=self._count_retry)
        except self.retry.retry_on:
            if self.breaker.record_failure():
                self._bump(store_degraded=1)
            return miss
        self.breaker.record_success()
        return result

    # ------------------------------------------------------------------
    # CacheStore protocol

    def get(self, key: Any) -> Any:
        return self._guarded(lambda: self.inner.get(key))

    def put(self, key: Any, value: Any) -> None:
        try:
            self.inner.put(key, value)
        except self.retry.retry_on:
            if self.breaker.record_failure():
                self._bump(store_degraded=1)

    def flush(self) -> None:
        self._guarded(self.inner.flush)

    def stats(self) -> Dict[str, Any]:
        stats = dict(self.inner.stats())
        stats["reliability"] = self.breaker.snapshot()
        return stats

    # ------------------------------------------------------------------
    # everything else (artifact tier, maintenance verbs) delegates;
    # artifact get/put pick up the same degradation policy.

    def __getattr__(self, name: str) -> Any:
        attribute = getattr(self.inner, name)
        if name == "get_artifact":
            return lambda key: self._guarded(lambda: attribute(key))
        if name == "put_artifact":
            return lambda key, value: self._put_quiet(attribute, key, value)
        return attribute

    def _put_quiet(self, put: Callable[[Any, Any], None], key: Any, value: Any) -> None:
        try:
            put(key, value)
        except self.retry.retry_on:
            if self.breaker.record_failure():
                self._bump(store_degraded=1)

    def __len__(self) -> int:
        return len(self.inner)

    def __repr__(self) -> str:
        return f"ResilientStore({self.inner!r}, state={self.breaker.state})"


def wrap_store(
    store: Any,
    *,
    retries: int = 2,
    breaker_threshold: int = 5,
    retry: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
    on_counter: Optional[Callable[..., None]] = None,
) -> Any:
    """Wrap ``store`` in a :class:`ResilientStore` (idempotent).

    ``retries`` is the number of *extra* attempts after the first
    failure; with both ``retries`` and ``breaker_threshold`` at 0 (and
    no explicit policy objects) the store is returned unwrapped, which
    is the zero-overhead escape hatch benchmarks compare against.
    """
    if store is None or isinstance(store, ResilientStore):
        return store
    if retries < 0 or breaker_threshold < 0:
        raise ValueError("retries and breaker_threshold must be >= 0")
    if retry is None and breaker is None and retries == 0 and breaker_threshold == 0:
        return store
    if retry is None:
        retry = RetryPolicy(attempts=retries + 1)
    if breaker is None:
        breaker = CircuitBreaker(failure_threshold=breaker_threshold)
    return ResilientStore(store, retry=retry, breaker=breaker, on_counter=on_counter)


__all__ = ["ResilientStore", "wrap_store"]
