"""Failure taxonomy of the reliability subsystem.

Retry sites, circuit breakers and supervisors need to catch *precisely*
what they mean to: a transient I/O hiccup is retryable, a worker crash
is a supervision event, a tripped breaker is a degradation signal, and a
malformed request is none of those.  This module gives each failure
shape its own class so the handling code reads as policy, not as
``except Exception`` guesswork.

The classes compose with the standard hierarchy on purpose:

* :class:`TransientStoreError` -- a store operation failed in a way a
  retry may fix (ENOSPC cleared, NFS blip, a torn append that was
  truncated back to the last ack point).  Raised by the hardened
  :meth:`~repro.engine.logstore.LogStore.flush` and by
  :class:`~repro.reliability.resilient.ResilientStore` when it
  re-raises.
* :class:`WorkerCrash` -- a process-pool worker died (or hung past the
  watchdog) and the :class:`~repro.reliability.supervisor.SupervisedPool`
  exhausted its restart budget.  The engine's terminal degradation
  (serial fallback) catches exactly this.
* :class:`CircuitOpenError` -- an operation was refused because the
  breaker guarding a persistently failing backend is open.
* :class:`FaultInjected` -- a *mixin* marker: every exception raised by
  the fault-injection layer (:mod:`repro.reliability.faults`) is a
  dynamic subclass of both the requested real type (``OSError``,
  ``TimeoutError``, ...) and this marker, so production code catches it
  exactly as it would catch the real failure while tests can still
  assert provenance with ``isinstance(error, FaultInjected)``.
"""

from __future__ import annotations


class ReliabilityError(RuntimeError):
    """Base class of the reliability subsystem's own failures."""


class TransientStoreError(ReliabilityError):
    """A store I/O operation failed in a way a retry may fix.

    Carries the original failure as ``__cause__`` (``raise ... from``).
    :class:`~repro.reliability.retry.RetryPolicy`'s default ``retry_on``
    includes it alongside plain ``OSError``.
    """


class WorkerCrash(ReliabilityError):
    """A supervised pool exhausted its restart budget.

    Raised by :class:`~repro.reliability.supervisor.SupervisedPool` when
    worker processes keep dying (or keep tripping the per-task watchdog)
    past ``max_restarts``; the engine treats it like a broken pool and
    degrades to the serial path.
    """


class RetryBudgetExceeded(ReliabilityError):
    """Every retry attempt of a :class:`RetryPolicy` call failed.

    Only used when the caller asks the policy to *wrap* the terminal
    failure; by default the last underlying exception propagates
    unchanged so existing handlers keep matching.
    """


class CircuitOpenError(ReliabilityError):
    """The circuit breaker guarding this backend is open.

    The serving layer surfaces it as a structured
    ``{"ok": false, "degraded": true}`` response instead of a traceback.
    """


class FaultInjected(Exception):
    """Mixin marker carried by every injected exception.

    Never raised directly: :func:`repro.reliability.faults.injected_error`
    builds ``type("Injected<Base>", (Base, FaultInjected), {})`` so the
    injected failure is caught by the same handlers as the real one
    while remaining distinguishable in assertions and logs.
    """


__all__ = [
    "CircuitOpenError",
    "FaultInjected",
    "ReliabilityError",
    "RetryBudgetExceeded",
    "TransientStoreError",
    "WorkerCrash",
]
