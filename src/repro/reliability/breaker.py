"""Circuit breaker for a persistently failing backend.

Classic three-state machine:

::

                 failure_threshold consecutive failures
        CLOSED ----------------------------------------> OPEN
          ^                                               |
          | probe succeeds                                | reset_timeout
          |                                               v
        HALF_OPEN <-------------------------------------- (time passes)
          |
          | probe fails --> OPEN (timer re-armed)

While CLOSED every operation is allowed and consecutive failures are
counted (any success resets the count).  On the threshold the breaker
trips OPEN: operations are refused without touching the backend until
``reset_timeout`` has elapsed, at which point exactly one caller wins
the HALF_OPEN probe slot; its success closes the breaker (the store
"re-attaches"), its failure re-opens with a fresh timer.

The clock is injected (defaults to ``time.monotonic``) so the state
machine is testable without sleeping, and all transitions happen under
one lock so concurrent serving threads agree on the state.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trip after ``failure_threshold`` consecutive failures.

    Attributes:
        failure_threshold: Consecutive failures that trip the breaker;
            ``0`` disables it (always closed).
        reset_timeout: Seconds OPEN before a HALF_OPEN probe is offered.
        trips: Total CLOSED/HALF_OPEN -> OPEN transitions.
        reattaches: Total successful probes (HALF_OPEN -> CLOSED).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 5.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 0:
            raise ValueError("failure_threshold must be >= 0")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_out = False
        self.trips = 0
        self.reattaches = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._refresh_locked()

    def _refresh_locked(self) -> str:
        if self._state == OPEN and self._clock() - self._opened_at >= self.reset_timeout:
            self._state = HALF_OPEN
            self._probe_out = False
        return self._state

    def allow(self) -> bool:
        """May the caller attempt the operation right now?

        In HALF_OPEN exactly one caller is granted the probe; everyone
        else is refused until the probe's verdict arrives via
        :meth:`record_success` / :meth:`record_failure`.
        """
        if self.failure_threshold == 0:
            return True
        with self._lock:
            state = self._refresh_locked()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probe_out:
                self._probe_out = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self.reattaches += 1
            self._state = CLOSED
            self._failures = 0
            self._probe_out = False

    def record_failure(self) -> bool:
        """Record a failure; return True when this call trips the breaker."""
        if self.failure_threshold == 0:
            return False
        with self._lock:
            state = self._refresh_locked()
            if state == HALF_OPEN:
                self._state = OPEN
                self._opened_at = self._clock()
                self._probe_out = False
                self.trips += 1
                return True
            if state == OPEN:
                return False
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = self._clock()
                self.trips += 1
                return True
            return False

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._refresh_locked(),
                "failures": self._failures,
                "trips": self.trips,
                "reattaches": self.reattaches,
            }


__all__ = ["CLOSED", "HALF_OPEN", "OPEN", "CircuitBreaker"]
