"""Brute-force Banzhaf computation by exhaustive enumeration.

Used as the ground truth oracle in unit and property-based tests; exponential
in the number of variables, so only suitable for small functions.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.boolean.assignments import banzhaf_brute_force
from repro.boolean.dnf import DNF


def banzhaf_all_brute_force(function: DNF,
                            variables: Optional[Iterable[int]] = None
                            ) -> Dict[int, int]:
    """Banzhaf values of the given variables (default: all domain variables).

    Enumerates all assignments once per variable; fine for the <= 20-variable
    functions used in tests.
    """
    if variables is None:
        variables = sorted(function.domain)
    return {v: banzhaf_brute_force(function, v) for v in variables}
