"""The CNF Proxy ranking heuristic.

The paper's third competitor (from Deutch et al., SIGMOD 2022) does not
attempt to compute attribution values at all: it ranks facts by a cheap
*proxy* score computed on the CNF representation of the lineage.  The proxy
often produces a ranking close to the value-based ranking even though the
scores themselves are unrelated to the true values, and it comes with no
guarantees -- which is exactly the behaviour Table 8 contrasts with IchiBan.

Substitution note (documented in DESIGN.md): the original proxy is tied to
the specifics of the authors' CNF encoding.  We use the standard criticality
proxy on the same CNF: a variable scores the sum over the CNF clauses that
contain it of ``1 / 2^(|clause| - 1)`` -- the probability that the clause
makes the variable pivotal under uniform assignments if clauses were
independent.  Like the original it is linear-time in the CNF, guarantee-free,
and correlates well (but not perfectly) with the true ranking.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.sig22 import Sig22Failure
from repro.boolean.cnf import CNFTooLarge, dnf_to_cnf
from repro.boolean.dnf import DNF


def cnf_proxy_scores(function: DNF,
                     max_cnf_clauses: int = 100_000) -> Dict[int, Fraction]:
    """Proxy scores of all occurring variables.

    Raises :class:`Sig22Failure` if the CNF conversion blows up (the proxy
    needs the same CNF the Sig22 pipeline builds).
    """
    try:
        cnf = dnf_to_cnf(function, max_clauses=max_cnf_clauses)
    except CNFTooLarge as error:
        raise Sig22Failure(str(error)) from error
    scores: Dict[int, Fraction] = {v: Fraction(0) for v in function.variables}
    for clause in cnf.clauses:
        weight = Fraction(1, 1 << max(0, len(clause) - 1))
        for variable in clause:
            scores[variable] += weight
    return scores


def cnf_proxy_ranking(function: DNF,
                      variables: Optional[Sequence[int]] = None,
                      max_cnf_clauses: int = 100_000) -> List[Tuple[int, Fraction]]:
    """Variables ordered by decreasing proxy score (ties by variable id)."""
    scores = cnf_proxy_scores(function, max_cnf_clauses=max_cnf_clauses)
    if variables is not None:
        scores = {v: scores.get(v, Fraction(0)) for v in variables}
    return sorted(scores.items(), key=lambda item: (-item[1], item[0]))


def cnf_proxy_topk(function: DNF, k: int,
                   max_cnf_clauses: int = 100_000) -> List[int]:
    """The ``k`` variables with the highest proxy scores."""
    if k <= 0:
        raise ValueError("k must be positive")
    return [v for v, _ in cnf_proxy_ranking(
        function, max_cnf_clauses=max_cnf_clauses)[:k]]
