"""The Sig22 baseline: knowledge compilation via a CNF detour.

The exact-computation baseline of the paper ("Sig22", Deutch et al., SIGMOD
2022, adapted from Shapley to Banzhaf values) feeds the query lineage to an
off-the-shelf knowledge compiler.  Those compilers expect CNF input, so the
lineage -- naturally a positive DNF -- is first converted to CNF and then
compiled; Banzhaf values are obtained from model counts of the compiled
representation conditioned on each variable.

We reproduce the same pipeline in Python:

1. DNF -> CNF conversion by distribution (with subsumption pruning and a
   size cap; exceeding the cap is a failure, mirroring timeouts of the
   original tool on large lineages);
2. a CNF model counter based on connected-component decomposition and
   Shannon expansion with memoization;
3. ``Banzhaf(phi, x) = #phi[x:=1] - #phi[x:=0]`` evaluated with two counter
   calls per variable (the counter cache is shared across variables).

The essential behaviour the paper exploits -- the CNF detour can blow up and
the circuit hides the independence structure the DNF exposes -- is preserved,
which is why ExaBan beats this baseline on the same instances.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.boolean.cnf import CNF, CNFTooLarge, dnf_to_cnf
from repro.boolean.dnf import DNF

_CNFKey = Tuple[FrozenSet[FrozenSet[int]], int]


class Sig22Failure(Exception):
    """Raised when the baseline exceeds its size or time budget."""


class _CNFCounter:
    """Model counter for positive CNFs with memoization and a time budget."""

    def __init__(self, timeout_seconds: Optional[float] = None,
                 max_cache_entries: int = 2_000_000) -> None:
        self._memo: Dict[_CNFKey, int] = {}
        self._deadline = (time.monotonic() + timeout_seconds
                          if timeout_seconds is not None else None)
        self._max_cache_entries = max_cache_entries

    def _check_budget(self) -> None:
        if self._deadline is not None and time.monotonic() > self._deadline:
            raise Sig22Failure("Sig22 baseline exceeded its time budget")
        if len(self._memo) > self._max_cache_entries:
            raise Sig22Failure("Sig22 baseline exceeded its memory budget")

    def count(self, clauses: FrozenSet[FrozenSet[int]], num_variables: int) -> int:
        """Number of models of the conjunction of ``clauses`` over ``num_variables``."""
        self._check_budget()
        if not clauses:
            return 1 << num_variables
        if any(not clause for clause in clauses):
            return 0
        key = (clauses, num_variables)
        cached = self._memo.get(key)
        if cached is not None:
            return cached

        occurring: set[int] = set()
        for clause in clauses:
            occurring |= clause
        silent = num_variables - len(occurring)

        components = self._components(clauses)
        if len(components) > 1:
            result = 1
            for component in components:
                component_vars: set[int] = set()
                for clause in component:
                    component_vars |= clause
                result *= self.count(frozenset(component), len(component_vars))
            result <<= silent
        else:
            variable = self._most_frequent(clauses)
            positive = frozenset(c for c in clauses if variable not in c)
            negative = frozenset(
                (c - {variable}) if variable in c else c for c in clauses
            )
            result = (self.count(positive, len(occurring) - 1)
                      + self.count(negative, len(occurring) - 1))
            result <<= silent

        self._memo[key] = result
        return result

    @staticmethod
    def _components(clauses: FrozenSet[FrozenSet[int]]
                    ) -> List[List[FrozenSet[int]]]:
        parent: Dict[int, int] = {}

        def find(item: int) -> int:
            root = item
            while parent[root] != root:
                root = parent[root]
            while parent[item] != root:
                parent[item], item = root, parent[item]
            return root

        for clause in clauses:
            first = None
            for variable in clause:
                if variable not in parent:
                    parent[variable] = variable
                if first is None:
                    first = variable
                else:
                    ra, rb = find(first), find(variable)
                    if ra != rb:
                        parent[rb] = ra
        groups: Dict[int, List[FrozenSet[int]]] = {}
        for clause in clauses:
            representative = find(next(iter(clause)))
            groups.setdefault(representative, []).append(clause)
        return list(groups.values())

    @staticmethod
    def _most_frequent(clauses: FrozenSet[FrozenSet[int]]) -> int:
        frequency: Dict[int, int] = {}
        for clause in clauses:
            for variable in clause:
                frequency[variable] = frequency.get(variable, 0) + 1
        return min(frequency, key=lambda v: (-frequency[v], v))


def _condition(cnf_clauses: FrozenSet[FrozenSet[int]], variable: int,
               value: bool) -> FrozenSet[FrozenSet[int]]:
    """Condition a positive CNF on ``variable := value``."""
    if value:
        return frozenset(c for c in cnf_clauses if variable not in c)
    return frozenset(
        (c - {variable}) if variable in c else c for c in cnf_clauses
    )


def sig22_banzhaf_all(function: DNF,
                      variables: Optional[Iterable[int]] = None,
                      timeout_seconds: Optional[float] = None,
                      max_cnf_clauses: int = 100_000) -> Dict[int, int]:
    """Banzhaf values of the given variables via the CNF pipeline.

    Raises :class:`Sig22Failure` when the CNF conversion or the counting
    exceeds its budget.
    """
    if function.is_false():
        return {v: 0 for v in (variables or function.domain)}
    try:
        cnf = dnf_to_cnf(function, max_clauses=max_cnf_clauses)
    except CNFTooLarge as error:
        raise Sig22Failure(str(error)) from error
    counter = _CNFCounter(timeout_seconds=timeout_seconds)
    if variables is None:
        variables = sorted(function.variables)
    total_variables = function.num_variables()
    results: Dict[int, int] = {}
    for variable in variables:
        if not function.contains_variable(variable):
            results[variable] = 0
            continue
        positive = _condition(cnf.clauses, variable, True)
        negative = _condition(cnf.clauses, variable, False)
        count_positive = counter.count(positive, total_variables - 1)
        count_negative = counter.count(negative, total_variables - 1)
        results[variable] = count_positive - count_negative
    return results


def sig22_banzhaf(function: DNF, variable: int,
                  timeout_seconds: Optional[float] = None,
                  max_cnf_clauses: int = 100_000) -> int:
    """Banzhaf value of a single variable via the CNF pipeline."""
    return sig22_banzhaf_all(function, [variable],
                             timeout_seconds=timeout_seconds,
                             max_cnf_clauses=max_cnf_clauses)[variable]


def sig22_model_count(function: DNF,
                      timeout_seconds: Optional[float] = None,
                      max_cnf_clauses: int = 100_000) -> int:
    """Model count of the lineage via the CNF pipeline (testing helper)."""
    if function.is_false():
        return 0
    try:
        cnf = dnf_to_cnf(function, max_clauses=max_cnf_clauses)
    except CNFTooLarge as error:
        raise Sig22Failure(str(error)) from error
    counter = _CNFCounter(timeout_seconds=timeout_seconds)
    return counter.count(cnf.clauses, function.num_variables())
