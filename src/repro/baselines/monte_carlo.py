"""Monte Carlo randomized approximation of Banzhaf values (the MC baseline).

Prior work [Livshits et al.] gives a polynomial-time randomized approximation
scheme with *absolute* error guarantees for Shapley values, based on sampling
permutations; the analogous estimator for the Banzhaf value samples uniform
subsets:

    Banzhaf(phi, x) = 2^(n-1) * Pr_Y [ phi(Y + x) = 1 and phi(Y) = 0 ]

where ``Y`` is a uniformly random subset of the variables without ``x``.  The
estimator averages the indicator over ``m`` samples and scales by
``2^(n-1)``.  The paper runs this baseline with ``m = 50 * #variables``
("MC50#vars"); its limitations (probabilistic error only, no incremental
refinement guarantee, blindness to the function structure) are what AdaBan
improves on.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Sequence


from repro.boolean.dnf import DNF


@dataclass(frozen=True)
class MonteCarloEstimate:
    """A Monte Carlo estimate of one Banzhaf value."""

    variable: int
    estimate: Fraction
    samples: int
    successes: int

    def as_float(self) -> float:
        """The estimate as a float (for reporting)."""
        return float(self.estimate)


def default_sample_count(function: DNF, factor: int = 50) -> int:
    """The paper's sample budget ``factor * #variables`` (at least one)."""
    return max(1, factor * max(1, len(function.variables)))


def monte_carlo_banzhaf(function: DNF, variable: int,
                        num_samples: Optional[int] = None,
                        rng: Optional[random.Random] = None
                        ) -> MonteCarloEstimate:
    """Estimate the Banzhaf value of one variable by uniform subset sampling."""
    if variable not in function.domain:
        raise ValueError(f"variable {variable} not in the function's domain")
    if rng is None:
        rng = random.Random(0)
    if num_samples is None:
        num_samples = default_sample_count(function)
    others = sorted(function.domain - {variable})
    successes = 0
    for _ in range(num_samples):
        chosen = frozenset(v for v in others if rng.random() < 0.5)
        if function.evaluate(chosen | {variable}) and not function.evaluate(chosen):
            successes += 1
    scale = 1 << max(0, function.num_variables() - 1)
    estimate = Fraction(successes, num_samples) * scale
    return MonteCarloEstimate(variable=variable, estimate=estimate,
                              samples=num_samples, successes=successes)


def monte_carlo_banzhaf_all(function: DNF,
                            num_samples: Optional[int] = None,
                            variables: Optional[Sequence[int]] = None,
                            rng: Optional[random.Random] = None,
                            timeout_seconds: Optional[float] = None
                            ) -> Dict[int, MonteCarloEstimate]:
    """Estimate the Banzhaf values of several variables.

    Each sample is shared across all variables: one random subset is drawn
    and, for every variable, the critical-set indicator is evaluated on it.
    This matches how the baseline is run in the paper's experiments (one
    sampling budget per lineage, all facts estimated from it).
    """
    if rng is None:
        rng = random.Random(0)
    if variables is None:
        variables = sorted(function.variables)
    if num_samples is None:
        num_samples = default_sample_count(function)
    deadline = (time.monotonic() + timeout_seconds
                if timeout_seconds is not None else None)
    domain = sorted(function.domain)
    successes = {v: 0 for v in variables}
    for sample_index in range(num_samples):
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutError(
                f"MC exceeded its time budget after {sample_index} samples"
            )
        chosen = frozenset(v for v in domain if rng.random() < 0.5)
        satisfied_with = function.evaluate(chosen)
        for variable in variables:
            without = chosen - {variable}
            with_variable = chosen | {variable}
            if variable in chosen:
                value_with = satisfied_with
                value_without = function.evaluate(without)
            else:
                value_with = function.evaluate(with_variable)
                value_without = satisfied_with
            if value_with and not value_without:
                successes[variable] += 1
    scale = 1 << max(0, function.num_variables() - 1)
    return {
        variable: MonteCarloEstimate(
            variable=variable,
            estimate=Fraction(successes[variable], num_samples) * scale,
            samples=num_samples,
            successes=successes[variable],
        )
        for variable in variables
    }


def monte_carlo_trace(function: DNF, variable: int,
                      num_samples: int,
                      rng: Optional[random.Random] = None,
                      report_every: int = 10
                      ) -> Iterator[tuple[float, Fraction]]:
    """Yield ``(elapsed_seconds, running_estimate)`` while sampling.

    Used by the Figure 5 convergence experiment to show the erratic
    convergence of MC next to the monotone convergence of AdaBan.
    """
    if rng is None:
        rng = random.Random(0)
    others = sorted(function.domain - {variable})
    scale = 1 << max(0, function.num_variables() - 1)
    successes = 0
    started = time.monotonic()
    for index in range(1, num_samples + 1):
        chosen = frozenset(v for v in others if rng.random() < 0.5)
        if function.evaluate(chosen | {variable}) and not function.evaluate(chosen):
            successes += 1
        if index % report_every == 0 or index == num_samples:
            yield (time.monotonic() - started,
                   Fraction(successes, index) * scale)
