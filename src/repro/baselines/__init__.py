"""Baselines from prior work, adapted to Banzhaf values as in the paper.

* :mod:`repro.baselines.brute_force` -- exhaustive enumeration (ground truth
  for tests);
* :mod:`repro.baselines.sig22` -- the knowledge-compilation pipeline of
  Deutch et al. (SIGMOD 2022): lineage -> CNF -> compiled circuit -> values;
* :mod:`repro.baselines.monte_carlo` -- the Monte Carlo randomized
  approximation of Livshits et al., adapted from Shapley to Banzhaf sampling;
* :mod:`repro.baselines.cnf_proxy` -- the CNF-proxy ranking heuristic of
  Deutch et al.
"""

from repro.baselines.brute_force import banzhaf_all_brute_force
from repro.baselines.cnf_proxy import cnf_proxy_ranking, cnf_proxy_scores
from repro.baselines.monte_carlo import (
    MonteCarloEstimate,
    monte_carlo_banzhaf,
    monte_carlo_banzhaf_all,
)
from repro.baselines.sig22 import Sig22Failure, sig22_banzhaf, sig22_banzhaf_all

__all__ = [
    "MonteCarloEstimate",
    "Sig22Failure",
    "banzhaf_all_brute_force",
    "cnf_proxy_ranking",
    "cnf_proxy_scores",
    "monte_carlo_banzhaf",
    "monte_carlo_banzhaf_all",
    "sig22_banzhaf",
    "sig22_banzhaf_all",
]
