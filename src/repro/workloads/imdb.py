"""Synthetic IMDB workload (stand-in for the paper's IMDB dataset).

Movies, people, cast membership, directing credits and genres.  Genre and
Person act as dimension-style relations and are exogenous; Movie, Cast and
Directs are endogenous.  The query mix includes hierarchical star queries
("who contributed to answers about a movie"), the classic non-hierarchical
actor-director join, selections on years, and a union.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.db.database import Database
from repro.db.datalog import parse_query
from repro.db.lineage import lineage_of_answers
from repro.db.query import Query
from repro.workloads.generators import LineageInstance

DATASET_NAME = "imdb"

_GENRES = ("drama", "comedy", "thriller", "documentary", "animation")


def generate_database(seed: int = 11, scale: float = 1.0) -> Database:
    """Generate a synthetic IMDB-like database."""
    rng = random.Random(seed)
    database = Database()
    num_movies = max(8, int(26 * scale))
    num_people = max(10, int(30 * scale))

    for person in range(num_people):
        database.add_fact("Person", (f"per{person}", f"Person {person}"),
                          endogenous=False)

    for movie in range(num_movies):
        year = rng.randint(1980, 2023)
        database.add_fact("Movie", (f"m{movie}", f"Movie {movie}", year),
                          endogenous=True)
        database.add_fact("Genre", (f"m{movie}", rng.choice(_GENRES)),
                          endogenous=False)
        cast_size = rng.randint(2, 5)
        for person in rng.sample(range(num_people), cast_size):
            database.add_fact("Cast", (f"per{person}", f"m{movie}"),
                              endogenous=True)
        for person in rng.sample(range(num_people), rng.randint(1, 2)):
            database.add_fact("Directs", (f"per{person}", f"m{movie}"),
                              endogenous=True)
    return database


def queries() -> List[Tuple[str, Query]]:
    """The IMDB query workload (name, query) pairs."""
    texts = [
        ("movies_of_genre",
         "Q(M) :- Movie(M, T, Y), Genre(M, G), Cast(P, M)"),
        ("actors_in_recent_movies",
         "Q(P) :- Cast(P, M), Movie(M, T, Y), Y >= 2010"),
        ("actor_director_pairs",
         "Q(P1, P2) :- Cast(P1, M), Directs(P2, M), Movie(M, T, Y)"),
        ("directors_of_dramas",
         "Q(P) :- Directs(P, M), Movie(M, T, Y), Genre(M, 'drama')"),
        ("people_working_together",
         "Q(P1, P2) :- Cast(P1, M), Cast(P2, M), Movie(M, T, Y)"),
        ("prolific_people_union",
         "Q(P) :- Cast(P, M), Movie(M, T, Y) ; Q(P) :- Directs(P, M), Movie(M, T, Y)"),
        ("boolean_old_movie_cast",
         "Q() :- Cast(P, M), Movie(M, T, Y), Y <= 1995"),
        ("movie_with_director_and_cast",
         "Q(M) :- Movie(M, T, Y), Cast(P1, M), Directs(P2, M)"),
    ]
    return [(name, parse_query(text)) for name, text in texts]


def workload(seed: int = 11, scale: float = 1.0,
             max_answers_per_query: int = 6) -> List[LineageInstance]:
    """Build the IMDB benchmark instances."""
    database = generate_database(seed=seed, scale=scale)
    instances: List[LineageInstance] = []
    for name, query in queries():
        answers = lineage_of_answers(query, database)
        answers.sort(key=lambda a: (-a.lineage.num_clauses(),
                                    tuple(map(repr, a.values))))
        for answer in answers[:max_answers_per_query]:
            instances.append(LineageInstance(
                dataset=DATASET_NAME,
                query=name,
                answer=answer.values,
                lineage=answer.lineage,
                tags=("db",),
            ))
    return instances
