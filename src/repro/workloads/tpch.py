"""Synthetic TPC-H workload (stand-in for the paper's TPC-H SF1 dataset).

A down-scaled star schema: customers place orders, orders contain line items
supplied by suppliers, suppliers and customers live in nations.  Nation and
Region are exogenous dimension tables; Customer, Orders, Lineitem, Supplier
and Part are endogenous.  The queries correspond to SPJU versions of the
TPC-H queries used in the paper (aggregates removed), which produce the
largest and most symmetric lineages of the three workloads -- the property
responsible for the many Banzhaf ties the paper observes for TPC-H.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.db.database import Database
from repro.db.datalog import parse_query
from repro.db.lineage import lineage_of_answers
from repro.db.query import Query
from repro.workloads.generators import LineageInstance

DATASET_NAME = "tpch"

_REGIONS = ("europe", "asia", "america")
_NATIONS = ("fr", "de", "jp", "cn", "us", "br")
_SEGMENTS = ("building", "machinery", "household")


def generate_database(seed: int = 3, scale: float = 1.0) -> Database:
    """Generate a synthetic TPC-H-like database."""
    rng = random.Random(seed)
    database = Database()
    num_customers = max(6, int(14 * scale))
    num_suppliers = max(4, int(8 * scale))
    num_parts = max(6, int(12 * scale))
    num_orders = max(10, int(24 * scale))

    for index, nation in enumerate(_NATIONS):
        region = _REGIONS[index % len(_REGIONS)]
        database.add_fact("Nation", (nation, region), endogenous=False)
        database.add_fact("Region", (region,), endogenous=False)

    for customer in range(num_customers):
        database.add_fact(
            "Customer",
            (f"c{customer}", rng.choice(_NATIONS), rng.choice(_SEGMENTS)),
            endogenous=True,
        )
    for supplier in range(num_suppliers):
        database.add_fact("Supplier", (f"s{supplier}", rng.choice(_NATIONS)),
                          endogenous=True)
    for part in range(num_parts):
        database.add_fact("Part", (f"p{part}", rng.choice(["brass", "steel", "tin"])),
                          endogenous=True)

    for order in range(num_orders):
        customer = rng.randrange(num_customers)
        year = rng.randint(1992, 1998)
        database.add_fact("Orders", (f"o{order}", f"c{customer}", year),
                          endogenous=True)
        for _ in range(rng.randint(1, 4)):
            part = rng.randrange(num_parts)
            supplier = rng.randrange(num_suppliers)
            database.add_fact(
                "Lineitem",
                (f"o{order}", f"p{part}", f"s{supplier}"),
                endogenous=True,
            )
    return database


def queries() -> List[Tuple[str, Query]]:
    """The TPC-H-style SPJU query workload (name, query) pairs."""
    texts = [
        ("customer_orders_by_segment",
         "Q(C) :- Customer(C, N, 'building'), Orders(O, C, Y)"),
        ("parts_shipped_to_nation",
         "Q(P) :- Lineitem(O, P, S), Orders(O, C, Y), Customer(C, 'fr', Seg)"),
        ("supplier_customer_same_nation",
         "Q(S, C) :- Supplier(S, N), Customer(C, N, Seg), Orders(O, C, Y), "
         "Lineitem(O, P, S)"),
        ("recent_order_parts",
         "Q(P) :- Lineitem(O, P, S), Orders(O, C, Y), Y >= 1996"),
        ("brass_part_suppliers",
         "Q(S) :- Supplier(S, N), Lineitem(O, P, S), Part(P, 'brass')"),
        ("customers_with_any_order_union",
         "Q(C) :- Customer(C, N, Seg), Orders(O, C, Y), Y <= 1994 ; "
         "Q(C) :- Customer(C, N, Seg), Orders(O, C, Y), Y >= 1997"),
        ("boolean_european_supply_chain",
         "Q() :- Supplier(S, N), Nation(N, 'europe'), Lineitem(O, P, S), "
         "Orders(O, C, Y)"),
        ("order_part_supplier_triples",
         "Q(O) :- Orders(O, C, Y), Lineitem(O, P, S), Supplier(S, N), Part(P, T)"),
    ]
    return [(name, parse_query(text)) for name, text in texts]


def workload(seed: int = 3, scale: float = 1.0,
             max_answers_per_query: int = 5) -> List[LineageInstance]:
    """Build the TPC-H benchmark instances."""
    database = generate_database(seed=seed, scale=scale)
    instances: List[LineageInstance] = []
    for name, query in queries():
        answers = lineage_of_answers(query, database)
        answers.sort(key=lambda a: (-a.lineage.num_clauses(),
                                    tuple(map(repr, a.values))))
        for answer in answers[:max_answers_per_query]:
            instances.append(LineageInstance(
                dataset=DATASET_NAME,
                query=name,
                answer=answer.values,
                lineage=answer.lineage,
                tags=("db",),
            ))
    return instances
