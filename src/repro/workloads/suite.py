"""Assembled benchmark workloads.

A :class:`Workload` bundles the instances of one dataset (database-derived
lineages plus a few structurally hard synthetic lineages, the way the paper's
per-dataset instance pools mix easy and hard cases).  ``default_workloads``
returns the three datasets used throughout the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.workloads import academic, imdb, tpch
from repro.workloads.generators import (
    LineageInstance,
    mixed_hard_instances,
    size_profile,
)


@dataclass(frozen=True)
class Workload:
    """A named collection of benchmark instances."""

    name: str
    instances: tuple[LineageInstance, ...]

    def statistics(self) -> Dict[str, float]:
        """Table 1-style statistics of the workload."""
        return size_profile(self.instances)

    def hard(self) -> List[LineageInstance]:
        """The instances tagged as hard."""
        return [i for i in self.instances if "hard" in i.tags]

    def __len__(self) -> int:
        return len(self.instances)


_BUILDERS = {
    "academic": academic.workload,
    "imdb": imdb.workload,
    "tpch": tpch.workload,
}

_HARD_SEEDS = {"academic": 101, "imdb": 202, "tpch": 303}
_HARD_COUNTS = {"academic": 4, "imdb": 5, "tpch": 6}


def build_workload(name: str, scale: float = 1.0,
                   include_hard: bool = True) -> Workload:
    """Build one of the named workloads (``academic``, ``imdb``, ``tpch``)."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; expected one of {sorted(_BUILDERS)}"
        ) from None
    instances = list(builder(scale=scale))
    if include_hard:
        hard = mixed_hard_instances(seed=_HARD_SEEDS[name],
                                    count=_HARD_COUNTS[name],
                                    dataset=name)
        instances.extend(hard)
    return Workload(name=name, instances=tuple(instances))


def default_workloads(scale: float = 1.0,
                      include_hard: bool = True) -> List[Workload]:
    """The three benchmark workloads in the paper's order."""
    return [build_workload(name, scale=scale, include_hard=include_hard)
            for name in ("academic", "imdb", "tpch")]


def hard_instances(workloads: Sequence[Workload]) -> List[LineageInstance]:
    """All hard-tagged instances across workloads (Figure 5 / Table 6 pools)."""
    result: List[LineageInstance] = []
    for workload in workloads:
        result.extend(workload.hard())
    return result
