"""Direct lineage generators.

These produce positive DNF functions with controlled size and structure,
bypassing the database layer.  They are used for stress tests, property
tests, and the "hard instance" portions of the benchmark workloads, where the
paper draws lineages whose structure makes exact computation expensive.

Structures provided:

* ``random_positive_dnf`` -- clauses drawn uniformly from a variable pool;
* ``star_join_lineage`` -- the lineage shape of hierarchical star queries
  (every clause contains a hub variable plus private satellite variables);
* ``chain_lineage`` -- the lineage shape of chain joins (consecutive clauses
  overlap in one variable);
* ``bipartite_lineage`` -- PP2DNF-shaped lineage (the non-hierarchical
  worst case of the dichotomy: clauses pair a left and a right variable).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.boolean.dnf import DNF


@dataclass(frozen=True)
class LineageInstance:
    """One benchmark instance: a lineage plus metadata for reporting."""

    dataset: str
    query: str
    answer: Tuple[object, ...]
    lineage: DNF
    tags: Tuple[str, ...] = field(default=())

    @property
    def num_variables(self) -> int:
        """Number of variables occurring in the lineage."""
        return len(self.lineage.variables)

    @property
    def num_clauses(self) -> int:
        """Number of clauses of the lineage."""
        return self.lineage.num_clauses()

    def label(self) -> str:
        """Short human-readable identifier."""
        return f"{self.dataset}/{self.query}/{'_'.join(map(str, self.answer))}"


def random_positive_dnf(rng: random.Random, num_variables: int,
                        num_clauses: int,
                        clause_width: Tuple[int, int] = (2, 4)) -> DNF:
    """A random positive DNF over ``num_variables`` variables.

    Every variable is guaranteed to occur in at least one clause (so the
    occurring-variable count equals ``num_variables``).
    """
    if num_variables <= 0 or num_clauses <= 0:
        raise ValueError("need at least one variable and one clause")
    low, high = clause_width
    low = max(1, min(low, num_variables))
    high = max(low, min(high, num_variables))
    variables = list(range(num_variables))
    clauses: List[Tuple[int, ...]] = []
    unused = set(variables)
    for _ in range(num_clauses):
        width = rng.randint(low, high)
        clause = rng.sample(variables, width)
        clauses.append(tuple(clause))
        unused -= set(clause)
    # Ensure every variable occurs somewhere.
    for variable in sorted(unused):
        index = rng.randrange(len(clauses))
        clauses[index] = tuple(set(clauses[index]) | {variable})
    return DNF(clauses, domain=variables)


def star_join_lineage(rng: random.Random, num_hubs: int, satellites_per_hub: int,
                      satellite_relations: int = 2) -> DNF:
    """Lineage of a hierarchical star query over a synthetic database.

    Each hub variable (e.g. an ``R(a)`` fact) is combined with the cartesian
    product of its satellites from ``satellite_relations`` relations; the
    resulting lineage decomposes fully with independence steps, so ExaBan
    handles it in polynomial time.
    """
    if num_hubs <= 0 or satellites_per_hub <= 0:
        raise ValueError("need at least one hub and one satellite per hub")
    clauses: List[Tuple[int, ...]] = []
    next_variable = 0
    for _ in range(num_hubs):
        hub = next_variable
        next_variable += 1
        groups: List[List[int]] = []
        for _ in range(satellite_relations):
            count = max(1, satellites_per_hub + rng.randint(-1, 1))
            group = list(range(next_variable, next_variable + count))
            next_variable += count
            groups.append(group)
        combos: List[Tuple[int, ...]] = [(hub,)]
        for group in groups:
            combos = [combo + (member,) for combo in combos for member in group]
        clauses.extend(combos)
    return DNF(clauses)


def chain_lineage(rng: random.Random, length: int, width: int = 2) -> DNF:
    """Lineage shaped like a chain join: consecutive clauses share a variable."""
    if length <= 0:
        raise ValueError("length must be positive")
    clauses: List[Tuple[int, ...]] = []
    previous_link = 0
    next_variable = 1
    for _ in range(length):
        body = list(range(next_variable, next_variable + max(1, width - 1)))
        next_variable += len(body)
        clauses.append(tuple([previous_link] + body))
        previous_link = body[-1]
    rng.shuffle(clauses)
    return DNF(clauses)


def bipartite_lineage(rng: random.Random, left: int, right: int,
                      density: float = 0.3) -> DNF:
    """PP2DNF-shaped lineage: each clause pairs a left and a right variable.

    This is the lineage of the basic non-hierarchical query and the hardest
    structure for exact computation; density controls how many of the
    ``left * right`` pairs appear.
    """
    if left <= 0 or right <= 0:
        raise ValueError("both parts must be non-empty")
    left_variables = list(range(left))
    right_variables = list(range(left, left + right))
    clauses: List[Tuple[int, int]] = []
    for a in left_variables:
        for b in right_variables:
            if rng.random() < density:
                clauses.append((a, b))
    if not clauses:
        clauses.append((left_variables[0], right_variables[0]))
    return DNF(clauses, domain=left_variables + right_variables)


def mixed_hard_instances(seed: int, count: int = 6,
                         dataset: str = "synthetic") -> List[LineageInstance]:
    """A batch of structurally hard lineages (used for Figure 5 and Table 6).

    Four structures rotate: bipartite (non-hierarchical worst case, where the
    CNF detour of the Sig22 baseline blows up), narrow random DNFs, chain
    joins, and wide random DNFs (hard for every exact method within a short
    per-instance budget, so they populate the failure rows of Table 2).
    """
    rng = random.Random(seed)
    instances: List[LineageInstance] = []
    for index in range(count):
        kind = index % 4
        if kind == 0:
            lineage = bipartite_lineage(rng, left=9 + index, right=9 + index,
                                        density=0.35)
            name = "bipartite"
        elif kind == 1:
            lineage = random_positive_dnf(rng, num_variables=22 + 2 * index,
                                          num_clauses=30 + 2 * index,
                                          clause_width=(2, 3))
            name = "random"
        elif kind == 2:
            lineage = chain_lineage(rng, length=min(14, 10 + index), width=3)
            name = "chain"
        else:
            lineage = random_positive_dnf(rng, num_variables=40 + 4 * index,
                                          num_clauses=64 + 4 * index,
                                          clause_width=(4, 7))
            name = "wide"
        instances.append(LineageInstance(
            dataset=dataset,
            query=f"hard_{name}_{index}",
            answer=(index,),
            lineage=lineage,
            tags=("hard", name),
        ))
    return instances


def size_profile(instances: Sequence[LineageInstance]) -> Dict[str, float]:
    """Aggregate statistics of a batch of instances (Table 1 shape)."""
    if not instances:
        return {"count": 0, "avg_vars": 0.0, "max_vars": 0,
                "avg_clauses": 0.0, "max_clauses": 0}
    vars_counts = [i.num_variables for i in instances]
    clause_counts = [i.num_clauses for i in instances]
    return {
        "count": len(instances),
        "avg_vars": sum(vars_counts) / len(vars_counts),
        "max_vars": max(vars_counts),
        "avg_clauses": sum(clause_counts) / len(clause_counts),
        "max_clauses": max(clause_counts),
    }
