"""Synthetic Academic workload (stand-in for the paper's Academic dataset).

The schema mirrors a small bibliographic database: authors write papers,
papers appear at venues and cite other papers.  Dimension-style relations
(``Venue``) are exogenous; the relations a user would want attribution for
(``Author``, ``Paper``, ``Writes``, ``Cites``) are endogenous.  Queries cover
hierarchical star joins, non-hierarchical author-venue joins, selections on
years, and one union query -- the mix the paper's Academic query log
exhibits.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.db.database import Database
from repro.db.datalog import parse_query
from repro.db.lineage import lineage_of_answers
from repro.db.query import Query
from repro.workloads.generators import LineageInstance

DATASET_NAME = "academic"


def generate_database(seed: int = 7, scale: float = 1.0) -> Database:
    """Generate a synthetic Academic database.

    ``scale`` multiplies the base table sizes; the default sizes keep the
    whole workload (evaluation + all algorithms) within seconds.
    """
    rng = random.Random(seed)
    database = Database()
    num_authors = max(4, int(18 * scale))
    num_papers = max(6, int(30 * scale))
    num_venues = max(3, int(5 * scale))

    venues = [f"venue{v}" for v in range(num_venues)]
    for venue in venues:
        database.add_fact("Venue", (venue, rng.choice(["conf", "journal"])),
                          endogenous=False)

    for author in range(num_authors):
        database.add_fact("Author", (f"a{author}", f"Author {author}"),
                          endogenous=True)

    for paper in range(num_papers):
        venue = rng.choice(venues)
        year = rng.randint(1995, 2023)
        database.add_fact("Paper", (f"p{paper}", venue, year), endogenous=True)
        # Between one and four authors per paper.
        for author in rng.sample(range(num_authors),
                                 rng.randint(1, min(4, num_authors))):
            database.add_fact("Writes", (f"a{author}", f"p{paper}"),
                              endogenous=True)

    for paper in range(num_papers):
        for cited in rng.sample(range(num_papers),
                                rng.randint(0, min(5, num_papers - 1))):
            if cited != paper:
                database.add_fact("Cites", (f"p{paper}", f"p{cited}"),
                                  endogenous=True)
    return database


def queries() -> List[Tuple[str, Query]]:
    """The Academic query workload (name, query) pairs."""
    texts = [
        ("authors_of_venue",
         "Q(A) :- Author(A, N), Writes(A, P), Paper(P, V, Y), Venue(V, T)"),
        ("recent_authors",
         "Q(A) :- Author(A, N), Writes(A, P), Paper(P, V, Y), Y >= 2015"),
        ("venue_activity",
         "Q(V) :- Paper(P, V, Y), Writes(A, P), Author(A, N)"),
        ("cited_papers",
         "Q(P2) :- Cites(P1, P2), Paper(P1, V, Y), Paper(P2, V2, Y2)"),
        ("coauthor_pairs",
         "Q(A1, A2) :- Writes(A1, P), Writes(A2, P), Author(A1, N1), Author(A2, N2)"),
        ("influential_authors",
         "Q(A) :- Author(A, N), Writes(A, P), Cites(P2, P)"),
        ("boolean_recent_citation",
         "Q() :- Cites(P1, P2), Paper(P1, V, Y), Y >= 2018"),
        ("venue_or_citation_union",
         "Q(P) :- Paper(P, V, Y), Cites(P, P2) ; Q(P) :- Paper(P, V, Y), Cites(P2, P)"),
    ]
    return [(name, parse_query(text)) for name, text in texts]


def workload(seed: int = 7, scale: float = 1.0,
             max_answers_per_query: int = 6) -> List[LineageInstance]:
    """Build the Academic benchmark instances (lineages with metadata)."""
    database = generate_database(seed=seed, scale=scale)
    instances: List[LineageInstance] = []
    for name, query in queries():
        answers = lineage_of_answers(query, database)
        # Keep the largest lineages per query: those are the interesting ones.
        answers.sort(key=lambda a: (-a.lineage.num_clauses(),
                                    tuple(map(repr, a.values))))
        for answer in answers[:max_answers_per_query]:
            instances.append(LineageInstance(
                dataset=DATASET_NAME,
                query=name,
                answer=answer.values,
                lineage=answer.lineage,
                tags=("db",),
            ))
    return instances
