"""Synthetic workloads standing in for the paper's Academic, IMDB and TPC-H data.

The paper evaluates on ~1M lineages produced by ProvSQL from three real
datasets.  Without those datasets (and without a one-hour-per-instance
budget) we generate synthetic databases and SPJU queries of the same *shape*
-- star and chain joins, hierarchical and non-hierarchical structures,
selections, unions -- scaled so that the full pipeline (evaluation, lineage
construction, all algorithms) runs in seconds.  The relative behaviour of the
algorithms is governed by the size and structure of the lineages, which the
generators control explicitly.

* :mod:`repro.workloads.generators` -- direct random-lineage generators
  (independent of the database layer) for stress tests and hard instances;
* :mod:`repro.workloads.academic`, :mod:`repro.workloads.imdb`,
  :mod:`repro.workloads.tpch` -- per-dataset database + query generators;
* :mod:`repro.workloads.suite` -- the assembled benchmark workloads.
"""

from repro.workloads.generators import (
    LineageInstance,
    bipartite_lineage,
    chain_lineage,
    random_positive_dnf,
    star_join_lineage,
)
from repro.workloads.suite import (
    Workload,
    build_workload,
    default_workloads,
    hard_instances,
)

__all__ = [
    "LineageInstance",
    "Workload",
    "bipartite_lineage",
    "build_workload",
    "chain_lineage",
    "default_workloads",
    "hard_instances",
    "random_positive_dnf",
    "star_join_lineage",
]
